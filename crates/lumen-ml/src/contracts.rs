//! Per-model **input-shape contracts** for static analysis.
//!
//! The experiment auditor (`lumen_core::audit`, DESIGN.md §4h) runs before
//! any data is loaded, so it cannot ask a trained model how many features it
//! expects. Instead each model kind declares, next to its implementation
//! crate, what it statically requires of its input table: a minimum feature
//! width and which hyper-parameters are *compressive* (only meaningful when
//! strictly below the input width). The auditor joins these contracts
//! against the abstract table shape it inferred for the `Train` node.
//!
//! Contracts are deliberately conservative: they only encode requirements
//! whose violation is a definite configuration bug (training on zero
//! features, a PCA wider than its input), never heuristics about what
//! "usually" works — a false audit error on a legitimate experiment would
//! be worse than a miss.

/// What a model kind statically requires of its input feature table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeContract {
    /// Model kind name as used in `Model` template nodes.
    pub kind: &'static str,
    /// Minimum number of feature columns for training to be meaningful.
    pub min_features: usize,
    /// Hyper-parameter keys whose value must stay strictly below the input
    /// feature width (bottlenecks / projections). An equal-or-wider value
    /// makes the layer an expensive identity, which is almost always a
    /// misconfiguration.
    pub compressive: &'static [&'static str],
    /// One-line rationale, surfaced in audit diagnostics.
    pub note: &'static str,
}

const fn contract(
    kind: &'static str,
    min_features: usize,
    compressive: &'static [&'static str],
    note: &'static str,
) -> ShapeContract {
    ShapeContract {
        kind,
        min_features,
        compressive,
        note,
    }
}

/// Contracts for every model kind the `Model` op can build, in the same
/// order as the op's kind registry.
pub const SHAPE_CONTRACTS: [ShapeContract; 14] = [
    contract("DecisionTree", 1, &[], "splits need at least one feature"),
    contract("RandomForest", 1, &[], "splits need at least one feature"),
    contract("GaussianNB", 1, &[], "needs per-feature likelihoods"),
    contract("KNN", 1, &[], "distances need at least one feature"),
    contract("LogisticRegression", 1, &[], "needs at least one coefficient"),
    contract("LinearSVM", 1, &[], "needs at least one coefficient"),
    contract("Committee", 1, &[], "members need at least one feature"),
    contract("AutoML", 1, &[], "candidates need at least one feature"),
    contract("OCSVM", 1, &[], "kernel needs at least one feature"),
    contract(
        "NystroemGMM",
        1,
        &[],
        "landmark kernel needs at least one feature",
    ),
    contract(
        "NystroemOCSVM",
        1,
        &[],
        "landmark kernel needs at least one feature",
    ),
    contract("GMM", 1, &[], "mixture needs at least one feature"),
    contract(
        "Autoencoder",
        1,
        &["hidden"],
        "a bottleneck at or above the input width reconstructs trivially",
    ),
    contract(
        "Kitsune",
        1,
        &[],
        "the feature map needs at least one feature",
    ),
];

/// Looks up the contract for a model kind, or `None` for unknown kinds
/// (the `Model` op itself reports those at build time).
pub fn shape_contract(kind: &str) -> Option<&'static ShapeContract> {
    SHAPE_CONTRACTS.iter().find(|c| c.kind == kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique() {
        let mut names: Vec<_> = SHAPE_CONTRACTS.iter().map(|c| c.kind).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SHAPE_CONTRACTS.len());
    }

    #[test]
    fn lookup_finds_known_and_rejects_unknown() {
        let ae = shape_contract("Autoencoder").expect("Autoencoder contract");
        assert_eq!(ae.compressive, &["hidden"]);
        assert!(shape_contract("Perceptron9000").is_none());
    }

    #[test]
    fn contracts_are_conservative() {
        // No contract may demand more than one feature: the auditor only
        // flags definite bugs (zero-width tables), not heuristics.
        for c in &SHAPE_CONTRACTS {
            assert!(c.min_features >= 1, "{}: vacuous contract", c.kind);
            assert!(c.min_features <= 1, "{}: speculative contract", c.kind);
            assert!(!c.note.is_empty());
        }
    }
}
