//! Labeled feature datasets, splits, and cross-validation folds.

use lumen_util::Rng;

use crate::matrix::Matrix;
use crate::{MlError, MlResult};

/// A feature matrix with parallel binary labels (0 = benign, 1 = malicious).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix, one row per instance.
    pub x: Matrix,
    /// Labels, one per row of `x`.
    pub y: Vec<u8>,
}

impl Dataset {
    /// Creates a dataset, checking shapes.
    pub fn new(x: Matrix, y: Vec<u8>) -> MlResult<Dataset> {
        if x.rows() != y.len() {
            return Err(MlError::DimensionMismatch {
                expected: x.rows(),
                got: y.len(),
            });
        }
        Ok(Dataset { x, y })
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when there are no instances.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of malicious instances.
    pub fn positives(&self) -> usize {
        self.y.iter().filter(|&&l| l == 1).count()
    }

    /// Rows with the given label.
    pub fn rows_with_label(&self, label: u8) -> Matrix {
        let idx: Vec<usize> = self
            .y
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == label)
            .map(|(i, _)| i)
            .collect();
        self.x.select_rows(&idx)
    }

    /// Selects instances by index (repeats allowed).
    pub fn select(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(idx),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Concatenates two datasets with equal feature width.
    pub fn concat(&self, other: &Dataset) -> MlResult<Dataset> {
        Ok(Dataset {
            x: self.x.vcat(&other.x)?,
            y: self.y.iter().chain(other.y.iter()).copied().collect(),
        })
    }
}

/// Stratified train/test split: each class is split at `train_frac`
/// independently, so rare attack classes appear in both halves.
pub fn train_test_split(data: &Dataset, train_frac: f64, rng: &mut Rng) -> (Dataset, Dataset) {
    let mut pos: Vec<usize> = Vec::new();
    let mut neg: Vec<usize> = Vec::new();
    for (i, &l) in data.y.iter().enumerate() {
        if l == 1 {
            pos.push(i);
        } else {
            neg.push(i);
        }
    }
    rng.shuffle(&mut pos);
    rng.shuffle(&mut neg);
    let cut = |v: &[usize]| ((v.len() as f64) * train_frac).round() as usize;
    let (pc, nc) = (cut(&pos), cut(&neg));
    let mut train_idx: Vec<usize> = pos[..pc].iter().chain(neg[..nc].iter()).copied().collect();
    let mut test_idx: Vec<usize> = pos[pc..].iter().chain(neg[nc..].iter()).copied().collect();
    rng.shuffle(&mut train_idx);
    rng.shuffle(&mut test_idx);
    (data.select(&train_idx), data.select(&test_idx))
}

/// K-fold indices: returns `k` (train, validation) index pairs covering the
/// dataset, shuffled.
pub fn kfold(n: usize, k: usize, rng: &mut Rng) -> Vec<(Vec<usize>, Vec<usize>)> {
    let k = k.max(2).min(n.max(2));
    let mut idx: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut idx);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let val: Vec<usize> = idx
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k == f)
            .map(|(_, &v)| v)
            .collect();
        let train: Vec<usize> = idx
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != f)
            .map(|(_, &v)| v)
            .collect();
        folds.push((train, val));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_pos: usize, n_neg: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..n_pos {
            rows.push(vec![i as f64, 1.0]);
            y.push(1);
        }
        for i in 0..n_neg {
            rows.push(vec![i as f64, 0.0]);
            y.push(0);
        }
        Dataset::new(Matrix::from_rows(rows).unwrap(), y).unwrap()
    }

    #[test]
    fn new_checks_shapes() {
        assert!(Dataset::new(Matrix::zeros(3, 2), vec![0, 1]).is_err());
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let data = toy(20, 80);
        let mut rng = Rng::new(1);
        let (train, test) = train_test_split(&data, 0.7, &mut rng);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        assert_eq!(train.positives(), 14);
        assert_eq!(test.positives(), 6);
    }

    #[test]
    fn split_partitions_instances() {
        let data = toy(5, 5);
        let mut rng = Rng::new(2);
        let (train, test) = train_test_split(&data, 0.5, &mut rng);
        assert_eq!(train.len() + test.len(), data.len());
    }

    #[test]
    fn rows_with_label_filters() {
        let data = toy(3, 7);
        assert_eq!(data.rows_with_label(1).rows(), 3);
        assert_eq!(data.rows_with_label(0).rows(), 7);
    }

    #[test]
    fn concat_appends() {
        let a = toy(1, 1);
        let b = toy(2, 2);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 6);
        assert_eq!(c.positives(), 3);
    }

    #[test]
    fn kfold_covers_everything_once() {
        let mut rng = Rng::new(3);
        let folds = kfold(20, 4, &mut rng);
        assert_eq!(folds.len(), 4);
        let mut seen = [0usize; 20];
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 20);
            for &i in val {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let data = toy(10, 10);
        let (a, _) = train_test_split(&data, 0.5, &mut Rng::new(9));
        let (b, _) = train_test_split(&data, 0.5, &mut Rng::new(9));
        assert_eq!(a.y, b.y);
        assert_eq!(a.x, b.x);
    }
}
