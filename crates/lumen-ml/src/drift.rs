//! Streaming concept-drift detection over per-slice score and feature
//! distributions.
//!
//! The serve scorer feeds a [`DriftMonitor`] one observation per time
//! slice: the slice's per-feature means and its mean anomaly score. The
//! monitor builds a reference distribution from a warmup window of
//! slices, then watches two complementary signals:
//!
//! * a **two-sided Page–Hinkley test** on the mean score — the classic
//!   sequential change-point statistic: cumulative deviation from the
//!   reference mean (less a tolerance `delta`), fired when it escapes its
//!   running minimum/maximum by more than `lambda`. This catches drift
//!   that the *model* sees: score distributions sliding up (new attacks
//!   scored benign-ish push the mean around) or down.
//! * **per-feature windowed mean monitors** — each feature's slice-mean is
//!   compared against the reference slice-mean distribution; a slice where
//!   at least `feature_quorum` features sit further than `z_threshold`
//!   reference standard deviations from their reference means is
//!   *shifted*, and `confirm_slices` consecutive shifted slices confirm
//!   drift. This catches drift the model is *blind* to (input shift with
//!   scores still calm), and the quorum keeps a single noisy feature from
//!   crying wolf.
//!
//! Both references are computed over **slice means**, not raw records, so
//! thresholds self-calibrate to however concentrated the slice statistics
//! are for the traffic at hand. After every detection the monitor re-arms
//! (drops its reference and re-enters warmup) so successive breakpoints
//! are each detected once; the serve daemon also calls [`DriftMonitor::reset`]
//! after a model swap so the new model's score scale builds a fresh
//! baseline. Everything is deterministic and clock-free: the monitor sees
//! only what it is fed.

/// Tuning for a [`DriftMonitor`]. The defaults are sized for serve's
/// sub-second slices over synthetic captures; all thresholds are in units
/// of the reference distribution, so they transfer across traffic scales.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Slices used to build the reference distribution before testing.
    pub warmup_slices: usize,
    /// Page–Hinkley tolerance: deviations smaller than this per slice are
    /// treated as noise and do not accumulate.
    pub ph_delta: f64,
    /// Page–Hinkley threshold on the accumulated deviation.
    pub ph_lambda: f64,
    /// How many reference standard deviations a feature's slice-mean must
    /// stray before the feature counts as shifted.
    pub z_threshold: f64,
    /// Features that must be shifted simultaneously for a slice to count.
    pub feature_quorum: usize,
    /// Consecutive shifted slices required to confirm feature drift.
    pub confirm_slices: usize,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            warmup_slices: 6,
            ph_delta: 0.02,
            ph_lambda: 0.35,
            z_threshold: 6.0,
            feature_quorum: 2,
            confirm_slices: 2,
        }
    }
}

/// Which signal confirmed the drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftTrigger {
    /// The Page–Hinkley statistic on the mean score escaped `ph_lambda`.
    Score {
        /// The accumulated deviation at detection time.
        deviation: f64,
    },
    /// `shifted` features strayed beyond `z_threshold` for
    /// `confirm_slices` consecutive slices.
    Features {
        /// Features shifted on the confirming slice.
        shifted: usize,
    },
}

impl DriftTrigger {
    /// Short label for journals and logs.
    pub fn name(&self) -> &'static str {
        match self {
            DriftTrigger::Score { .. } => "score",
            DriftTrigger::Features { .. } => "features",
        }
    }
}

/// One confirmed drift detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// The slice sequence number the caller passed to `observe`.
    pub slice: u64,
    /// Which test fired.
    pub trigger: DriftTrigger,
}

/// Per-feature reference statistics over warmup slice-means.
#[derive(Debug, Clone, Copy)]
struct RefStat {
    mean: f64,
    std: f64,
}

/// Floor on a reference std so a perfectly constant warmup feature does
/// not make every later slice look infinitely shifted.
const MIN_REF_STD: f64 = 1e-9;

#[derive(Debug, Clone)]
enum Phase {
    /// Collecting warmup slices: per-slice feature means + score means.
    Warmup {
        feature_rows: Vec<Vec<f64>>,
        score_means: Vec<f64>,
    },
    /// Armed: reference built, tests running.
    Armed {
        features: Vec<RefStat>,
        score: RefStat,
        /// Page–Hinkley rising accumulator `Σ(x − mean − δ)` and its
        /// running minimum (upward-shift test).
        ph_up: f64,
        ph_up_min: f64,
        /// Falling accumulator `Σ(x − mean + δ)` and its running maximum
        /// (downward-shift test).
        ph_dn: f64,
        ph_dn_max: f64,
        /// Consecutive slices with a feature quorum shifted.
        shifted_streak: usize,
    },
}

/// Streaming drift detector; see the module docs for the method.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    cfg: DriftConfig,
    /// Feature dimensionality, pinned by the first observed slice.
    dim: Option<usize>,
    phase: Phase,
    detections: u64,
}

impl DriftMonitor {
    /// A monitor with the given tuning.
    pub fn new(cfg: DriftConfig) -> DriftMonitor {
        DriftMonitor {
            cfg,
            dim: None,
            phase: Phase::empty(),
            detections: 0,
        }
    }

    /// A monitor with [`DriftConfig::default`] tuning.
    pub fn with_defaults() -> DriftMonitor {
        DriftMonitor::new(DriftConfig::default())
    }

    /// True once the warmup window has filled and the tests are running.
    pub fn is_armed(&self) -> bool {
        matches!(self.phase, Phase::Armed { .. })
    }

    /// Total confirmed detections over the monitor's lifetime (survives
    /// re-arming).
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Drops the reference and re-enters warmup. Called internally after
    /// every detection, and by the serve daemon after a model swap (the
    /// new model scores on a different scale, so the old score reference
    /// is meaningless).
    pub fn reset(&mut self) {
        self.phase = Phase::empty();
    }

    /// Feeds one slice: its per-feature means and its mean anomaly score.
    /// Returns a [`DriftEvent`] when either test confirms drift; the
    /// monitor re-arms itself afterwards. A change in feature
    /// dimensionality resets the monitor (a new extraction schema is a new
    /// world, not drift within the old one).
    pub fn observe(&mut self, slice: u64, feature_means: &[f64], score_mean: f64) -> Option<DriftEvent> {
        if self.dim != Some(feature_means.len()) {
            if self.dim.is_some() {
                self.reset();
            }
            self.dim = Some(feature_means.len());
        }
        match &mut self.phase {
            Phase::Warmup {
                feature_rows,
                score_means,
            } => {
                feature_rows.push(feature_means.to_vec());
                score_means.push(score_mean);
                if feature_rows.len() >= self.cfg.warmup_slices.max(2) {
                    let features = column_stats(feature_rows);
                    let score = scalar_stats(score_means);
                    self.phase = Phase::Armed {
                        features,
                        score,
                        ph_up: 0.0,
                        ph_up_min: 0.0,
                        ph_dn: 0.0,
                        ph_dn_max: 0.0,
                        shifted_streak: 0,
                    };
                }
                None
            }
            Phase::Armed {
                features,
                score,
                ph_up,
                ph_up_min,
                ph_dn,
                ph_dn_max,
                shifted_streak,
            } => {
                // Two-sided Page–Hinkley on the mean score: the tolerance
                // `delta` is subtracted (added) per observation, so
                // zero-mean noise walks the accumulators *away* from the
                // alarm instead of randomly into it.
                let dev = score_mean - score.mean;
                *ph_up += dev - self.cfg.ph_delta;
                *ph_up_min = ph_up_min.min(*ph_up);
                *ph_dn += dev + self.cfg.ph_delta;
                *ph_dn_max = ph_dn_max.max(*ph_dn);
                let rise = *ph_up - *ph_up_min;
                let fall = *ph_dn_max - *ph_dn;
                if rise > self.cfg.ph_lambda || fall > self.cfg.ph_lambda {
                    let deviation = if rise > fall { rise } else { fall };
                    self.detections += 1;
                    self.reset();
                    return Some(DriftEvent {
                        slice,
                        trigger: DriftTrigger::Score { deviation },
                    });
                }

                // Per-feature windowed mean monitors with a quorum.
                let shifted = features
                    .iter()
                    .zip(feature_means)
                    .filter(|(r, &m)| (m - r.mean).abs() > self.cfg.z_threshold * r.std.max(MIN_REF_STD))
                    .count();
                if shifted >= self.cfg.feature_quorum.max(1) {
                    *shifted_streak += 1;
                    if *shifted_streak >= self.cfg.confirm_slices.max(1) {
                        self.detections += 1;
                        self.reset();
                        return Some(DriftEvent {
                            slice,
                            trigger: DriftTrigger::Features { shifted },
                        });
                    }
                } else {
                    *shifted_streak = 0;
                }
                None
            }
        }
    }
}

impl Phase {
    fn empty() -> Phase {
        Phase::Warmup {
            feature_rows: Vec::new(),
            score_means: Vec::new(),
        }
    }
}

/// Mean/std per column over the warmup rows.
fn column_stats(rows: &[Vec<f64>]) -> Vec<RefStat> {
    let dim = rows.first().map_or(0, Vec::len);
    (0..dim)
        .map(|j| {
            let col: Vec<f64> = rows.iter().map(|r| r[j]).collect();
            scalar_stats(&col)
        })
        .collect()
}

fn scalar_stats(xs: &[f64]) -> RefStat {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    RefStat {
        mean,
        std: var.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_util::Rng;

    fn cfg() -> DriftConfig {
        DriftConfig::default()
    }

    /// Stationary noisy features + score: slice means wobble but never
    /// drift, and the monitor stays quiet for hundreds of slices.
    #[test]
    fn stationary_stream_never_fires() {
        let mut rng = Rng::new(42);
        let mut mon = DriftMonitor::new(cfg());
        for slice in 0..300 {
            let f: Vec<f64> = (0..4).map(|i| 10.0 * (i as f64) + (0.0 + 0.05 * rng.normal())).collect();
            let s = 0.3 + (0.0 + 0.01 * rng.normal());
            assert_eq!(mon.observe(slice, &f, s), None, "false alarm at slice {slice}");
        }
        assert!(mon.is_armed());
        assert_eq!(mon.detections(), 0);
    }

    /// A sustained score shift is caught by Page–Hinkley within a handful
    /// of slices, and the monitor re-arms to catch a second shift.
    #[test]
    fn score_shift_fires_page_hinkley_then_rearms() {
        let mut rng = Rng::new(7);
        let mut mon = DriftMonitor::new(cfg());
        let mut events = Vec::new();
        for slice in 0..200 {
            let f: Vec<f64> = (0..3).map(|_| (5.0 + 0.05 * rng.normal())).collect();
            let s = match slice {
                0..=49 => 0.25,
                50..=119 => 0.55, // breakpoint 1
                _ => 0.15,        // breakpoint 2 (downward: two-sided test)
            } + (0.0 + 0.01 * rng.normal());
            if let Some(e) = mon.observe(slice, &f, s) {
                events.push(e);
            }
        }
        assert!(events.len() >= 2, "both shifts detected, got {events:?}");
        let first = &events[0];
        assert!(
            (50..62).contains(&first.slice),
            "bounded detection latency, fired at {}",
            first.slice
        );
        assert!(matches!(first.trigger, DriftTrigger::Score { .. }));
        let second = events.iter().find(|e| e.slice >= 120).expect("downward shift detected");
        assert!(second.slice < 135, "bounded latency on the fall, fired at {}", second.slice);
        assert_eq!(mon.detections(), events.len() as u64);
    }

    /// Input drift the model cannot see: scores stay flat while a quorum
    /// of features shifts. One shifted feature is not enough.
    #[test]
    fn feature_quorum_gates_the_feature_path() {
        let mut rng = Rng::new(9);
        // One feature shifting: stays quiet.
        let mut mon = DriftMonitor::new(cfg());
        for slice in 0..80 {
            let bump = if slice >= 40 { 3.0 } else { 0.0 };
            let f = [1.0 + bump + (0.0 + 0.02 * rng.normal()), 2.0 + (0.0 + 0.02 * rng.normal()), 3.0 + (0.0 + 0.02 * rng.normal())];
            assert_eq!(mon.observe(slice, &f, 0.4 + (0.0 + 0.005 * rng.normal())), None);
        }
        // Two features shifting: fires shortly after the breakpoint.
        let mut mon = DriftMonitor::new(cfg());
        let mut fired = None;
        for slice in 0..80 {
            let bump = if slice >= 40 { 3.0 } else { 0.0 };
            let f = [1.0 + bump + (0.0 + 0.02 * rng.normal()), 2.0 + bump + (0.0 + 0.02 * rng.normal()), 3.0 + (0.0 + 0.02 * rng.normal())];
            if let Some(e) = mon.observe(slice, &f, 0.4 + (0.0 + 0.005 * rng.normal())) {
                fired = Some(e);
                break;
            }
        }
        let e = fired.expect("quorum shift must fire");
        assert!((40..46).contains(&e.slice), "fired at {}", e.slice);
        assert!(matches!(e.trigger, DriftTrigger::Features { shifted: 2 }));
    }

    /// A dimensionality change is a schema change, not drift: the monitor
    /// resets instead of firing.
    #[test]
    fn dimension_change_resets_instead_of_firing() {
        let mut mon = DriftMonitor::new(cfg());
        for slice in 0..20 {
            mon.observe(slice, &[1.0, 2.0, 3.0], 0.5);
        }
        assert!(mon.is_armed());
        assert_eq!(mon.observe(20, &[100.0, 200.0], 0.9), None);
        assert!(!mon.is_armed(), "new schema re-enters warmup");
        assert_eq!(mon.detections(), 0);
    }

    /// Explicit reset (post model swap) drops the score reference so the
    /// new model's different score scale is not read as drift.
    #[test]
    fn reset_after_swap_rebuilds_the_reference() {
        let mut mon = DriftMonitor::new(cfg());
        for slice in 0..20 {
            assert_eq!(mon.observe(slice, &[4.0], 0.2), None);
        }
        mon.reset();
        // A new, much higher score level: quiet, because the reference is
        // rebuilt around it during the fresh warmup.
        for slice in 20..60 {
            assert_eq!(mon.observe(slice, &[4.0], 0.8), None);
        }
        assert!(mon.is_armed());
    }
}
