//! Majority-vote ensembles of heterogeneous classifiers (ML-DDoS, A00, uses
//! an RF + DT + KNN + SVM committee).

use crate::dataset::Dataset;
use crate::model::Classifier;
use crate::{MlError, MlResult};

/// Majority vote over boxed member classifiers; the continuous score is the
/// mean of member scores.
pub struct VotingEnsemble {
    members: Vec<Box<dyn Classifier>>,
}

impl VotingEnsemble {
    /// Creates an ensemble from member classifiers.
    pub fn new(members: Vec<Box<dyn Classifier>>) -> VotingEnsemble {
        VotingEnsemble { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Classifier for VotingEnsemble {
    fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        if self.members.is_empty() {
            return Err(MlError::BadConfig("ensemble has no members".into()));
        }
        for m in &mut self.members {
            m.fit(data)?;
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> u8 {
        let votes: usize = self
            .members
            .iter()
            .map(|m| usize::from(m.predict_row(row)))
            .sum();
        u8::from(votes * 2 > self.members.len())
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        self.members.iter().map(|m| m.score_row(row)).sum::<f64>() / self.members.len() as f64
    }

    fn name(&self) -> &'static str {
        "voting-ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// A stub classifier with a fixed answer.
    struct Fixed(u8);
    impl Classifier for Fixed {
        fn fit(&mut self, _data: &Dataset) -> MlResult<()> {
            Ok(())
        }
        fn predict_row(&self, _row: &[f64]) -> u8 {
            self.0
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    fn dummy_data() -> Dataset {
        Dataset::new(Matrix::from_rows(vec![vec![0.0]]).unwrap(), vec![0]).unwrap()
    }

    #[test]
    fn majority_wins() {
        let mut e = VotingEnsemble::new(vec![
            Box::new(Fixed(1)),
            Box::new(Fixed(1)),
            Box::new(Fixed(0)),
        ]);
        e.fit(&dummy_data()).unwrap();
        assert_eq!(e.predict_row(&[0.0]), 1);
    }

    #[test]
    fn tie_breaks_to_benign() {
        let mut e = VotingEnsemble::new(vec![Box::new(Fixed(1)), Box::new(Fixed(0))]);
        e.fit(&dummy_data()).unwrap();
        assert_eq!(e.predict_row(&[0.0]), 0);
    }

    #[test]
    fn score_is_mean_of_members() {
        let e = VotingEnsemble::new(vec![
            Box::new(Fixed(1)),
            Box::new(Fixed(0)),
            Box::new(Fixed(0)),
            Box::new(Fixed(1)),
        ]);
        assert!((e.score_row(&[0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_ensemble_rejected_at_fit() {
        let mut e = VotingEnsemble::new(vec![]);
        assert!(matches!(e.fit(&dummy_data()), Err(MlError::BadConfig(_))));
    }

    #[test]
    fn real_members_train_and_agree_on_easy_data() {
        use crate::forest::{ForestConfig, RandomForest};
        use crate::knn::{Knn, KnnConfig};
        use crate::tree::{DecisionTree, TreeConfig};
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            rows.push(vec![i as f64]);
            y.push(u8::from(i >= 20));
        }
        let data = Dataset::new(Matrix::from_rows(rows).unwrap(), y).unwrap();
        let mut e = VotingEnsemble::new(vec![
            Box::new(DecisionTree::new(TreeConfig::default())),
            Box::new(RandomForest::new(ForestConfig {
                n_trees: 5,
                ..ForestConfig::default()
            })),
            Box::new(Knn::new(KnnConfig {
                k: 3,
                ..KnnConfig::default()
            })),
        ]);
        e.fit(&data).unwrap();
        assert_eq!(e.predict_row(&[2.0]), 0);
        assert_eq!(e.predict_row(&[38.0]), 1);
    }
}
