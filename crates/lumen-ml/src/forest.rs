//! Random forests: bagged CART trees with per-split feature subsampling.

use lumen_util::Rng;

use crate::dataset::Dataset;
use crate::model::Classifier;
use crate::tree::{DecisionTree, TreeConfig};
use crate::{MlError, MlResult};

/// Random-forest hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree depth limit.
    pub max_depth: usize,
    /// Minimum samples to split.
    pub min_samples_split: usize,
    /// Features per split; `None` = sqrt(d).
    pub max_features: Option<usize>,
    /// Bootstrap sample fraction of the training set per tree.
    pub sample_frac: f64,
    /// Seed controlling bootstraps and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 30,
            max_depth: 12,
            min_samples_split: 4,
            max_features: None,
            sample_frac: 1.0,
            seed: 0,
        }
    }
}

/// A fitted random forest; scores are the mean of tree leaf probabilities.
pub struct RandomForest {
    /// Hyperparameters.
    pub config: ForestConfig,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Creates an unfitted forest.
    pub fn new(config: ForestConfig) -> RandomForest {
        RandomForest {
            config,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        if data.is_empty() {
            return Err(MlError::EmptyInput);
        }
        if self.config.n_trees == 0 {
            return Err(MlError::BadConfig("n_trees must be positive".into()));
        }
        let d = data.x.cols();
        let max_features = self
            .config
            .max_features
            .unwrap_or_else(|| ((d as f64).sqrt().ceil() as usize).max(1));
        let n = data.len();
        let sample_n = ((n as f64) * self.config.sample_frac).round().max(1.0) as usize;

        let mut rng = Rng::new(self.config.seed);
        self.trees.clear();
        for t in 0..self.config.n_trees {
            let mut tree_rng = rng.fork(t as u64);
            // Bootstrap sample with replacement.
            let idx: Vec<usize> = (0..sample_n).map(|_| tree_rng.range(0, n)).collect();
            let sample = data.select(&idx);
            let mut tree = DecisionTree::new(TreeConfig {
                max_depth: self.config.max_depth,
                min_samples_split: self.config.min_samples_split,
                min_samples_leaf: 1,
                max_features: Some(max_features),
                seed: tree_rng.next_u64(),
            });
            tree.fit(&sample)?;
            self.trees.push(tree);
        }
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> u8 {
        u8::from(self.score_row(row) >= 0.5)
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.trees.iter().map(|t| t.score_row(row)).sum();
        sum / self.trees.len() as f64
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    /// Noisy 2-D two-cluster problem.
    fn clusters(seed: u64, n: usize) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let label = rng.chance(0.5);
            let (cx, cy) = if label { (3.0, 3.0) } else { (0.0, 0.0) };
            rows.push(vec![rng.normal_with(cx, 0.7), rng.normal_with(cy, 0.7)]);
            y.push(u8::from(label));
        }
        Dataset::new(Matrix::from_rows(rows).unwrap(), y).unwrap()
    }

    #[test]
    fn separates_clusters_well() {
        let train = clusters(1, 300);
        let test = clusters(2, 200);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 20,
            ..ForestConfig::default()
        });
        rf.fit(&train).unwrap();
        let preds = rf.predict(&test.x);
        let acc =
            preds.iter().zip(&test.y).filter(|(p, t)| p == t).count() as f64 / test.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn deterministic_with_same_seed() {
        let data = clusters(3, 100);
        let probe = clusters(4, 20);
        let mut a = RandomForest::new(ForestConfig::default());
        let mut b = RandomForest::new(ForestConfig::default());
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.scores(&probe.x), b.scores(&probe.x));
    }

    #[test]
    fn different_seeds_differ() {
        let data = clusters(3, 100);
        let probe = clusters(4, 50);
        let mut a = RandomForest::new(ForestConfig {
            seed: 1,
            ..ForestConfig::default()
        });
        let mut b = RandomForest::new(ForestConfig {
            seed: 2,
            ..ForestConfig::default()
        });
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_ne!(a.scores(&probe.x), b.scores(&probe.x));
    }

    #[test]
    fn score_is_mean_probability_in_unit_interval() {
        let data = clusters(5, 100);
        let mut rf = RandomForest::new(ForestConfig::default());
        rf.fit(&data).unwrap();
        for row in data.x.rows_iter() {
            let s = rf.score_row(row);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn zero_trees_rejected() {
        let data = clusters(1, 10);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 0,
            ..ForestConfig::default()
        });
        assert!(matches!(rf.fit(&data), Err(MlError::BadConfig(_))));
    }

    #[test]
    fn fits_requested_tree_count() {
        let data = clusters(6, 50);
        let mut rf = RandomForest::new(ForestConfig {
            n_trees: 7,
            ..ForestConfig::default()
        });
        rf.fit(&data).unwrap();
        assert_eq!(rf.tree_count(), 7);
    }
}
