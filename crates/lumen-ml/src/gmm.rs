//! Diagonal-covariance Gaussian mixture models fitted by EM.
//!
//! Used as the density model in the Efficient-One-Class-SVM paper's
//! Nystroem+GMM variant (A08): fit on benign traffic, score new points by
//! negative log-likelihood.

use lumen_util::{par, Rng};

use crate::kernels::{self, KernelOp};
use crate::kmeans::kmeans_t;
use crate::matrix::Matrix;
use crate::model::AnomalyDetector;
use crate::{MlError, MlResult};

/// GMM hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct GmmConfig {
    /// Mixture components.
    pub n_components: usize,
    /// EM iterations.
    pub max_iter: usize,
    /// Variance floor.
    pub reg_covar: f64,
    /// Seed for k-means initialization.
    pub seed: u64,
    /// Worker threads for EM sweeps and batch scoring (0 = process default).
    pub threads: usize,
}

impl Default for GmmConfig {
    fn default() -> Self {
        GmmConfig {
            n_components: 4,
            max_iter: 50,
            reg_covar: 1e-6,
            seed: 0,
            threads: 0,
        }
    }
}

/// Rows per parallel work unit; fixed so the EM reduction order (and the
/// fitted parameters) are bit-identical at any thread count.
const BLOCK: usize = 512;

/// A fitted diagonal GMM.
pub struct Gmm {
    /// Hyperparameters.
    pub config: GmmConfig,
    weights: Vec<f64>,
    means: Matrix,
    vars: Matrix,
    /// Scoring decomposition, precomputed after EM (see [`Gmm::finalize`]):
    /// row `c` is `mean_c / var_c`, so the cross term of every component's
    /// log-density is one dot product.
    score_p: Matrix,
    /// Row `c` is `0.5 / var_c` — the quadratic term against `x²`.
    score_q: Matrix,
    /// Per-component constant: `ln w_c − 0.5·Σ_j (m²/v + ln v + ln 2π)`.
    score_const: Vec<f64>,
    fitted: bool,
}

impl Gmm {
    /// Creates an unfitted model.
    pub fn new(config: GmmConfig) -> Gmm {
        Gmm {
            config,
            weights: Vec::new(),
            means: Matrix::zeros(0, 0),
            vars: Matrix::zeros(0, 0),
            score_p: Matrix::zeros(0, 0),
            score_q: Matrix::zeros(0, 0),
            score_const: Vec::new(),
            fitted: false,
        }
    }

    /// Log density of `row` under component `c` (diagonal Gaussian) — the
    /// direct form used inside EM, where the parameters change every sweep.
    fn component_log_pdf(&self, c: usize, row: &[f64]) -> f64 {
        let mean = self.means.row(c);
        let var = self.vars.row(c);
        let mut ll = 0.0;
        for i in 0..row.len() {
            let v = var[i];
            ll += -0.5
                * ((row[i] - mean[i]).powi(2) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }

    /// Precomputes the scoring decomposition from the fitted parameters:
    /// `log p_c(x) = const_c + x·(m_c/v_c) − x²·(0.5/v_c)`, so a whole batch
    /// scores as two [`kernels::matmul_bt`] products. The row path uses the
    /// *same* decomposition (same `kernels::dot` accumulation), so batch and
    /// row scores are bit-identical.
    fn finalize(&mut self) {
        let (k, d) = (self.means.rows(), self.means.cols());
        self.score_p = Matrix::zeros(k, d);
        self.score_q = Matrix::zeros(k, d);
        self.score_const = Vec::with_capacity(k);
        let ln_2pi = (2.0 * std::f64::consts::PI).ln();
        for c in 0..k {
            let mean = self.means.row(c);
            let var = self.vars.row(c);
            let prow = self.score_p.row_mut(c);
            let qrow = self.score_q.row_mut(c);
            let mut constant = self.weights[c].max(1e-300).ln();
            for j in 0..d {
                let v = var[j];
                prow[j] = mean[j] / v;
                qrow[j] = 0.5 / v;
                constant -= 0.5 * (mean[j] * mean[j] / v + v.ln() + ln_2pi);
            }
            self.score_const.push(constant);
        }
    }

    /// Per-component log joints `ln w_c + ln p_c(x)` for one row, via the
    /// precomputed decomposition. `row2` is the element-wise square of
    /// `row`, supplied by the caller so batch paths can reuse a buffer.
    fn component_logs(&self, row: &[f64], row2: &[f64], logs: &mut Vec<f64>) {
        logs.clear();
        for c in 0..self.score_const.len() {
            logs.push(
                self.score_const[c] + kernels::dot(row, self.score_p.row(c))
                    - kernels::dot(row2, self.score_q.row(c)),
            );
        }
    }

    /// Log-likelihood of one row under the mixture.
    pub fn log_likelihood(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return f64::NEG_INFINITY;
        }
        let row2: Vec<f64> = row.iter().map(|x| x * x).collect();
        let mut logs = Vec::new();
        self.component_logs(row, &row2, &mut logs);
        log_sum_exp(&logs)
    }

    /// Fits the mixture to unlabeled data.
    pub fn fit(&mut self, x: &Matrix) -> MlResult<()> {
        let n = x.rows();
        if n == 0 {
            return Err(MlError::EmptyInput);
        }
        let k = self.config.n_components.min(n).max(1);
        let d = x.cols();
        let threads = kernels::resolve_threads(self.config.threads);
        let mut rng = Rng::new(self.config.seed);

        // Initialize from k-means.
        let km = kmeans_t(x, k, 25, &mut rng, threads)?;
        self.means = km.centroids;
        self.weights = vec![1.0 / k as f64; k];
        self.vars = Matrix::zeros(k, d);
        // Start every component at the global variance (floored).
        let global_var: Vec<f64> = x
            .col_stds()
            .into_iter()
            .map(|s| (s * s).max(self.config.reg_covar))
            .collect();
        for c in 0..k {
            self.vars.row_mut(c).copy_from_slice(&global_var);
        }
        self.fitted = true;
        // Keep the scoring decomposition consistent even if EM is cancelled
        // mid-flight; recomputed again after EM converges.
        self.finalize();

        let mut resp = Matrix::zeros(n, k);
        let mut prev_ll = f64::NEG_INFINITY;
        for _ in 0..self.config.max_iter {
            // Cooperative deadline check, once per EM sweep.
            if lumen_util::cancel::CancelToken::current_cancelled() {
                return Err(MlError::Cancelled);
            }
            // E step + first M-step accumulation, one fixed-size row block
            // per work unit: each block returns its responsibilities, its
            // log-likelihood contribution, and partial sums Σr and Σr·x per
            // component. All block results fold in block order, so the
            // fitted parameters never depend on the thread count.
            let sweep = kernels::timed(KernelOp::Gmm, || {
                par::par_blocks(n, BLOCK, threads, |s, e| {
                    let mut block_resp = vec![0.0; (e - s) * k];
                    let mut block_ll = 0.0;
                    let mut rc = vec![0.0; k];
                    let mut rx = Matrix::zeros(k, d);
                    for i in s..e {
                        let row = x.row(i);
                        let logs: Vec<f64> = (0..k)
                            .map(|c| {
                                self.weights[c].max(1e-300).ln() + self.component_log_pdf(c, row)
                            })
                            .collect();
                        let lse = log_sum_exp(&logs);
                        block_ll += lse;
                        for c in 0..k {
                            let r = (logs[c] - lse).exp();
                            block_resp[(i - s) * k + c] = r;
                            rc[c] += r;
                            kernels::axpy(r, row, rx.row_mut(c));
                        }
                    }
                    (block_resp, block_ll, rc, rx)
                })
            });
            let mut total_ll = 0.0;
            let mut rc = vec![0.0; k];
            let mut rx = Matrix::zeros(k, d);
            for (bi, (block_resp, block_ll, brc, brx)) in sweep.into_iter().enumerate() {
                let s = bi * BLOCK;
                resp.as_mut_slice()[s * k..s * k + block_resp.len()].copy_from_slice(&block_resp);
                total_ll += block_ll;
                for c in 0..k {
                    rc[c] += brc[c];
                    kernels::axpy(1.0, brx.row(c), rx.row_mut(c));
                }
            }
            let rc_safe: Vec<f64> = rc.iter().map(|&r| r.max(1e-12)).collect();
            for c in 0..k {
                self.weights[c] = rc[c] / n as f64;
                for (m, &s) in self.means.row_mut(c).iter_mut().zip(rx.row(c)) {
                    *m = s / rc_safe[c];
                }
            }
            // Second sweep for the variances (two-pass: they need the new
            // means), same fixed-block fold.
            let var_sweep = kernels::timed(KernelOp::Gmm, || {
                par::par_blocks(n, BLOCK, threads, |s, e| {
                    let mut var = Matrix::zeros(k, d);
                    for i in s..e {
                        let row = x.row(i);
                        for c in 0..k {
                            let r = resp.get(i, c);
                            let mean = self.means.row(c);
                            let vrow = var.row_mut(c);
                            for j in 0..d {
                                let dlt = row[j] - mean[j];
                                vrow[j] += r * dlt * dlt;
                            }
                        }
                    }
                    var
                })
            });
            let mut var = Matrix::zeros(k, d);
            for bvar in var_sweep {
                for c in 0..k {
                    kernels::axpy(1.0, bvar.row(c), var.row_mut(c));
                }
            }
            for c in 0..k {
                for (dst, &s) in self.vars.row_mut(c).iter_mut().zip(var.row(c)) {
                    *dst = (s / rc_safe[c]).max(self.config.reg_covar);
                }
            }
            if (total_ll - prev_ll).abs() < 1e-6 * n as f64 {
                break;
            }
            prev_ll = total_ll;
        }
        self.finalize();
        Ok(())
    }
}

fn log_sum_exp(logs: &[f64]) -> f64 {
    let m = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + logs.iter().map(|l| (l - m).exp()).sum::<f64>().ln()
}

impl AnomalyDetector for Gmm {
    fn fit_benign(&mut self, benign: &Matrix) -> MlResult<()> {
        self.fit(benign)
    }

    fn anomaly_score(&self, row: &[f64]) -> f64 {
        // Higher = more anomalous = lower likelihood.
        -self.log_likelihood(row)
    }

    /// Batched scoring: each fixed-size row block computes its component
    /// log-joints as two `matmul_bt` products (`X·Pᵀ` for the cross terms,
    /// `X²·Qᵀ` for the quadratic terms) plus the per-component constants,
    /// then a per-row `log_sum_exp`. Same decomposition and the same
    /// `kernels::dot` accumulation as [`Gmm::log_likelihood`], so batch and
    /// row scores are bit-identical — at any thread count, on any backend.
    fn anomaly_scores(&self, x: &Matrix) -> Vec<f64> {
        if !self.fitted {
            return vec![f64::INFINITY; x.rows()];
        }
        let threads = kernels::resolve_threads(self.config.threads);
        let (n, d) = (x.rows(), x.cols());
        let k = self.score_const.len();
        kernels::timed(KernelOp::Gmm, || {
            par::par_blocks(n, BLOCK, threads, |s, e| {
                let m = e - s;
                let xb = Matrix::from_vec(m, d, x.as_slice()[s * d..e * d].to_vec())
                    .expect("block shape");
                let mut x2 = xb.clone();
                for v in x2.as_mut_slice() {
                    *v *= *v;
                }
                // Kernel parallelism off: the block sweep is the parallel axis.
                let cross = kernels::matmul_bt(&xb, &self.score_p, 1).expect("shapes agree");
                let quad = kernels::matmul_bt(&x2, &self.score_q, 1).expect("shapes agree");
                let mut logs = Vec::with_capacity(k);
                let mut out = Vec::with_capacity(m);
                for i in 0..m {
                    logs.clear();
                    for c in 0..k {
                        logs.push(self.score_const[c] + cross.get(i, c) - quad.get(i, c));
                    }
                    out.push(-log_sum_exp(&logs));
                }
                out
            })
            .into_iter()
            .flatten()
            .collect()
        })
    }

    fn name(&self) -> &'static str {
        "gmm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(seed: u64, n: usize) -> Matrix {
        let mut rng = Rng::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 8.0 };
                vec![rng.normal_with(c, 0.6), rng.normal_with(c, 0.6)]
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn likelihood_high_inside_low_outside() {
        let x = two_blobs(1, 400);
        let mut gmm = Gmm::new(GmmConfig {
            n_components: 2,
            ..GmmConfig::default()
        });
        gmm.fit(&x).unwrap();
        let inside = gmm.log_likelihood(&[0.0, 0.0]);
        let between = gmm.log_likelihood(&[4.0, 4.0]);
        let outside = gmm.log_likelihood(&[50.0, -50.0]);
        assert!(inside > between);
        assert!(between > outside);
    }

    #[test]
    fn weights_sum_to_one() {
        let x = two_blobs(2, 200);
        let mut gmm = Gmm::new(GmmConfig {
            n_components: 3,
            ..GmmConfig::default()
        });
        gmm.fit(&x).unwrap();
        let s: f64 = gmm.weights.iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anomaly_score_orders_points() {
        let x = two_blobs(3, 300);
        let mut gmm = Gmm::new(GmmConfig::default());
        gmm.fit_benign(&x).unwrap();
        assert!(gmm.anomaly_score(&[100.0, 100.0]) > gmm.anomaly_score(&[0.0, 0.0]));
    }

    #[test]
    fn single_component_matches_gaussian_fit() {
        let mut rng = Rng::new(4);
        let rows: Vec<Vec<f64>> = (0..500).map(|_| vec![rng.normal_with(5.0, 2.0)]).collect();
        let x = Matrix::from_rows(rows).unwrap();
        let mut gmm = Gmm::new(GmmConfig {
            n_components: 1,
            ..GmmConfig::default()
        });
        gmm.fit(&x).unwrap();
        assert!((gmm.means.get(0, 0) - 5.0).abs() < 0.3);
        assert!((gmm.vars.get(0, 0) - 4.0).abs() < 0.8);
    }

    #[test]
    fn batch_scores_match_row_scores_exactly() {
        // Batch scoring goes through matmul_bt; the row path uses the same
        // decomposition and dot accumulation — results must be bit-equal.
        let x = two_blobs(7, 300);
        let mut gmm = Gmm::new(GmmConfig {
            n_components: 3,
            ..GmmConfig::default()
        });
        gmm.fit_benign(&x).unwrap();
        let batch = gmm.anomaly_scores(&x);
        for (i, row) in x.rows_iter().enumerate() {
            assert_eq!(
                batch[i].to_bits(),
                gmm.anomaly_score(row).to_bits(),
                "row {i}"
            );
        }
    }

    #[test]
    fn rejects_empty() {
        let mut gmm = Gmm::new(GmmConfig::default());
        assert!(gmm.fit(&Matrix::zeros(0, 2)).is_err());
    }

    #[test]
    fn more_components_than_points_is_clamped() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        let mut gmm = Gmm::new(GmmConfig {
            n_components: 10,
            ..GmmConfig::default()
        });
        gmm.fit(&x).unwrap();
        assert!(gmm.log_likelihood(&[1.5]).is_finite());
    }
}
