//! Shared compute kernels for the ML hot paths.
//!
//! Every model in the zoo used to carry its own bounds-checked scalar
//! loops for matrix products and pairwise distances; this module is the
//! single home for those inner loops so they can be written once, written
//! well (row-slice access, unrolled accumulators, cache-blocked layout),
//! and parallelized once.
//!
//! Design points:
//!
//! - **Transpose-packed matmul** ([`matmul`], [`matmul_bt`]): `A × B` is
//!   computed as row-against-row dot products of `A` and `Bᵀ`, so both
//!   inner-loop operands are contiguous. Packing `Bᵀ` is `O(k·m)` against
//!   the product's `O(n·k·m)` — it pays for itself immediately.
//! - **Gram-expansion distances** ([`pairwise_sq_dists`]):
//!   `‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b` turns five hand-rolled distance loops
//!   across the model zoo into one kernel built on the same dot-product
//!   inner loop. Catastrophic cancellation can produce tiny negative
//!   results for near-identical points; those are clamped to `0.0` (the
//!   mathematically exact value is never negative).
//! - **Deterministic parallelism**: every parallel kernel maps *rows* of
//!   the output, each computed independently with a fixed accumulation
//!   order, so results are bit-identical at any thread count. Reductions
//!   elsewhere in the zoo use `lumen_util::par::par_blocks` (fixed block
//!   size, fold in block order) for the same guarantee.
//! - **Profiling**: each kernel bumps a process-global `(calls, nanos)`
//!   counter per op ([`profile_snapshot`]) so the benchmark runner can
//!   attribute train/predict time to kernels in its `OpsProfile`. Model
//!   code can wrap coarser phases in [`timed`]; nested timings overlap by
//!   design (a `KnnPredict` span contains a `PairwiseSqDists` span).
//!
//! Thread counts resolve in three steps: an explicit per-call count wins;
//! a model config of `0` falls back to the process default
//! ([`set_default_threads`]), which the benchmark runner plumbs from its
//! `RunConfig`; a default of `0` means the machine's available
//! parallelism.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use lumen_util::par;

use crate::matrix::Matrix;
use crate::{MlError, MlResult};

// ---------------------------------------------------------------------------
// Thread plumbing
// ---------------------------------------------------------------------------

/// Process-wide default worker count for kernels (0 = available parallelism).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default kernel thread count. `0` restores the
/// "use available parallelism" default.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The process-wide default kernel thread count (never 0).
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => par::available_threads(),
        n => n,
    }
}

/// Resolves a model-config thread count: `0` means "use the process
/// default", anything else is taken literally.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        default_threads()
    } else {
        configured
    }
}

/// Caps the worker count so each worker has a meaningful amount of work
/// (`work` is an element/flop estimate). Results never depend on the
/// worker count, so this is purely a scheduling heuristic.
fn clamp_threads(threads: usize, work: usize) -> usize {
    const MIN_WORK_PER_THREAD: usize = 16_384;
    threads.clamp(1, work / MIN_WORK_PER_THREAD + 1)
}

// ---------------------------------------------------------------------------
// Profiling
// ---------------------------------------------------------------------------

/// The profiled kernel/phase identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum KernelOp {
    /// Dense matrix product (either entry point).
    Matmul,
    /// Pairwise squared Euclidean distances.
    PairwiseSqDists,
    /// Blocked transpose.
    Transpose,
    /// kNN batch scoring (contains a `PairwiseSqDists` span).
    KnnPredict,
    /// One k-means assign+accumulate sweep.
    KmeansStep,
    /// A GMM mixture sweep (E-step responsibilities or batch scoring).
    Gmm,
    /// Random-Fourier-feature map of a sample batch.
    RffMap,
    /// Nystroem kernel-matrix construction / projection.
    Nystroem,
}

const OP_COUNT: usize = 8;
const OP_NAMES: [&str; OP_COUNT] = [
    "matmul",
    "pairwise_sq_dists",
    "transpose",
    "knn_predict",
    "kmeans_step",
    "gmm",
    "rff_map",
    "nystroem",
];

const ZERO: AtomicU64 = AtomicU64::new(0);
static CALLS: [AtomicU64; OP_COUNT] = [ZERO; OP_COUNT];
static NANOS: [AtomicU64; OP_COUNT] = [ZERO; OP_COUNT];

#[inline]
fn record(op: KernelOp, start: Instant) {
    let i = op as usize;
    CALLS[i].fetch_add(1, Ordering::Relaxed);
    NANOS[i].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

/// Runs `f` inside a profiled span for `op`. Use for model-level phases
/// (train sweeps, batch predicts) that are built from finer kernels;
/// nested spans overlap by design.
pub fn timed<R>(op: KernelOp, f: impl FnOnce() -> R) -> R {
    let t = Instant::now();
    let r = f();
    record(op, t);
    r
}

/// A point-in-time copy of the per-op kernel counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelProfile {
    calls: [u64; OP_COUNT],
    nanos: [u64; OP_COUNT],
}

impl KernelProfile {
    /// Counters accumulated since `earlier` (which must be an older
    /// snapshot from the same process).
    pub fn delta_since(&self, earlier: &KernelProfile) -> KernelProfile {
        let mut d = KernelProfile::default();
        for i in 0..OP_COUNT {
            d.calls[i] = self.calls[i].saturating_sub(earlier.calls[i]);
            d.nanos[i] = self.nanos[i].saturating_sub(earlier.nanos[i]);
        }
        d
    }

    /// `(op name, calls, nanos)` for every op with at least one call.
    pub fn entries(&self) -> Vec<(&'static str, u64, u64)> {
        (0..OP_COUNT)
            .filter(|&i| self.calls[i] > 0)
            .map(|i| (OP_NAMES[i], self.calls[i], self.nanos[i]))
            .collect()
    }

    /// Total profiled calls across all ops.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }
}

/// Snapshots the process-global kernel counters.
pub fn profile_snapshot() -> KernelProfile {
    let mut p = KernelProfile::default();
    for i in 0..OP_COUNT {
        p.calls[i] = CALLS[i].load(Ordering::Relaxed);
        p.nanos[i] = NANOS[i].load(Ordering::Relaxed);
    }
    p
}

// ---------------------------------------------------------------------------
// Fused vector helpers
// ---------------------------------------------------------------------------

/// Dot product with four independent accumulators (breaks the FP-add
/// dependency chain; fixed summation order, so the result is reproducible).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for (x, y) in (&mut ca).zip(&mut cb) {
        s0 += x[0] * y[0];
        s1 += x[1] * y[1];
        s2 += x[2] * y[2];
        s3 += x[3] * y[3];
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    ((s0 + s1) + (s2 + s3)) + tail
}

/// `y ← y + alpha·x`, element-wise.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Squared Euclidean norm of each row.
pub fn sq_norms(m: &Matrix) -> Vec<f64> {
    if m.cols() == 0 {
        return vec![0.0; m.rows()];
    }
    m.rows_iter().map(|r| dot(r, r)).collect()
}

// ---------------------------------------------------------------------------
// Matrix kernels
// ---------------------------------------------------------------------------

/// Blocked transpose: walks the input in square tiles so reads and writes
/// both stay within a cache-resident working set, using flat-slice
/// indexing instead of per-element `get`/`set`.
pub fn transpose(m: &Matrix) -> Matrix {
    let t = Instant::now();
    let (rows, cols) = (m.rows(), m.cols());
    let mut out = Matrix::zeros(cols, rows);
    const TILE: usize = 32;
    let src = m.as_slice();
    let dst = out.as_mut_slice();
    for rb in (0..rows).step_by(TILE) {
        let rend = (rb + TILE).min(rows);
        for cb in (0..cols).step_by(TILE) {
            let cend = (cb + TILE).min(cols);
            for r in rb..rend {
                let src_row = &src[r * cols..r * cols + cols];
                for c in cb..cend {
                    dst[c * rows + r] = src_row[c];
                }
            }
        }
    }
    record(KernelOp::Transpose, t);
    out
}

/// `A × B` via transpose packing: `B` is repacked as `Bᵀ` so the inner
/// loop is a contiguous row-row dot product, then [`matmul_bt`] does the
/// work across `threads` workers.
pub fn matmul(a: &Matrix, b: &Matrix, threads: usize) -> MlResult<Matrix> {
    if a.cols() != b.rows() {
        return Err(MlError::DimensionMismatch {
            expected: a.cols(),
            got: b.rows(),
        });
    }
    let bt = transpose(b);
    matmul_bt(a, &bt, threads)
}

/// `A × Bᵀᵀ` for a pre-packed `Bᵀ` (`bt.row(j)` holds column `j` of the
/// logical right-hand side): `out[i][j] = dot(a.row(i), bt.row(j))`.
///
/// Output rows are computed independently on up to `threads` workers, so
/// the result is bit-identical at any thread count.
pub fn matmul_bt(a: &Matrix, bt: &Matrix, threads: usize) -> MlResult<Matrix> {
    if a.cols() != bt.cols() {
        return Err(MlError::DimensionMismatch {
            expected: a.cols(),
            got: bt.cols(),
        });
    }
    let t = Instant::now();
    let (n, m, k) = (a.rows(), bt.rows(), a.cols());
    let mut out = Matrix::zeros(n, m);
    if n > 0 && m > 0 {
        let threads = clamp_threads(threads, n * m * k.max(1));
        par::par_rows_mut(out.as_mut_slice(), m, threads, |i, out_row| {
            let arow = a.row(i);
            for (j, brow) in bt.rows_iter().enumerate() {
                out_row[j] = dot(arow, brow);
            }
        });
    }
    record(KernelOp::Matmul, t);
    Ok(out)
}

/// Pairwise squared Euclidean distances between the rows of `a` and the
/// rows of `b`: `out[i][j] = ‖a.row(i) − b.row(j)‖²`, computed by the Gram
/// expansion `‖a‖² + ‖b‖² − 2·a·b` with one fused pass per output row.
///
/// Cancellation can make near-zero results slightly negative; they are
/// clamped to `0.0`. Rows are computed independently on up to `threads`
/// workers (bit-identical at any thread count).
pub fn pairwise_sq_dists(a: &Matrix, b: &Matrix, threads: usize) -> MlResult<Matrix> {
    if a.cols() != b.cols() {
        return Err(MlError::DimensionMismatch {
            expected: a.cols(),
            got: b.cols(),
        });
    }
    let (n, m) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(n, m);
    pairwise_sq_dists_into(a, b, &mut out, threads)?;
    Ok(out)
}

/// [`pairwise_sq_dists`] into a caller-provided output matrix (shape
/// `a.rows() × b.rows()`), so repeated batch scoring can reuse one buffer
/// instead of re-faulting a fresh allocation per call.
pub fn pairwise_sq_dists_into(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    threads: usize,
) -> MlResult<()> {
    if out.rows() != a.rows() || out.cols() != b.rows() {
        return Err(MlError::DimensionMismatch {
            expected: a.rows() * b.rows(),
            got: out.rows() * out.cols(),
        });
    }
    let t = Instant::now();
    let (n, m, d) = (a.rows(), b.rows(), a.cols());
    if n > 0 && m > 0 && d > 0 {
        let bn = sq_norms(b);
        let threads = clamp_threads(threads, n * m * d);
        let bsrc = b.as_slice();
        par::par_rows_mut(out.as_mut_slice(), m, threads, |i, out_row| {
            let arow = a.row(i);
            let an = dot(arow, arow);
            for (j, o) in out_row.iter_mut().enumerate() {
                let brow = &bsrc[j * d..j * d + d];
                *o = (an + bn[j] - 2.0 * dot(arow, brow)).max(0.0);
            }
        });
    } else {
        out.as_mut_slice().fill(0.0);
    }
    record(KernelOp::PairwiseSqDists, t);
    Ok(())
}

// ---------------------------------------------------------------------------
// Naive references (oracles for tests and the benchmark baseline)
// ---------------------------------------------------------------------------

/// Scalar reference implementations the optimized kernels are measured and
/// property-tested against.
pub mod reference {
    use super::*;

    /// Textbook triple-loop matrix product.
    pub fn matmul(a: &Matrix, b: &Matrix) -> MlResult<Matrix> {
        if a.cols() != b.rows() {
            return Err(MlError::DimensionMismatch {
                expected: a.cols(),
                got: b.rows(),
            });
        }
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        Ok(out)
    }

    /// Per-element squared-difference distance loop (what the model zoo
    /// used to hand-roll five times).
    pub fn pairwise_sq_dists(a: &Matrix, b: &Matrix) -> MlResult<Matrix> {
        if a.cols() != b.cols() {
            return Err(MlError::DimensionMismatch {
                expected: a.cols(),
                got: b.cols(),
            });
        }
        let mut out = Matrix::zeros(a.rows(), b.rows());
        pairwise_sq_dists_into(a, b, &mut out);
        Ok(out)
    }

    /// [`pairwise_sq_dists`] into a caller-provided buffer — the
    /// allocation-free counterpart of the optimized `_into` kernel, so
    /// benchmarks compare compute against compute.
    pub fn pairwise_sq_dists_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    let d = a.get(i, k) - b.get(j, k);
                    s += d * d;
                }
                out.set(i, j, s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = lumen_util::Rng::new(seed);
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| rng.f64_range(-2.0, 2.0))
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..13).map(|i| (13 - i) as f64).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-9);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(2.0, &[10.0, 20.0, 30.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0, 63.0]);
    }

    #[test]
    fn sq_norms_handles_zero_cols() {
        let m = Matrix::zeros(3, 0);
        assert_eq!(sq_norms(&m), vec![0.0; 3]);
    }

    #[test]
    fn transpose_matches_naive() {
        for (r, c) in [(1, 1), (3, 7), (40, 33), (65, 2)] {
            let m = toy(r, c, 1);
            let t = transpose(&m);
            assert_eq!(t.rows(), c);
            assert_eq!(t.cols(), r);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t.get(j, i), m.get(i, j));
                }
            }
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let a = toy(17, 9, 2);
        let b = toy(9, 23, 3);
        let fast = matmul(&a, &b, 4).unwrap();
        let slow = reference::matmul(&a, &b).unwrap();
        for i in 0..17 {
            for j in 0..23 {
                assert!((fast.get(i, j) - slow.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matmul_rejects_mismatch() {
        assert!(matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3), 1).is_err());
        assert!(matmul_bt(&Matrix::zeros(2, 3), &Matrix::zeros(5, 4), 1).is_err());
    }

    #[test]
    fn matmul_empty_shapes() {
        let c = matmul(&Matrix::zeros(0, 5), &Matrix::zeros(5, 4), 4).unwrap();
        assert_eq!((c.rows(), c.cols()), (0, 4));
        let c = matmul(&Matrix::zeros(3, 0), &Matrix::zeros(0, 2), 4).unwrap();
        assert_eq!((c.rows(), c.cols()), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pairwise_matches_reference_and_is_nonnegative() {
        let a = toy(11, 6, 4);
        let b = toy(7, 6, 5);
        let fast = pairwise_sq_dists(&a, &b, 4).unwrap();
        let slow = reference::pairwise_sq_dists(&a, &b).unwrap();
        for i in 0..11 {
            for j in 0..7 {
                assert!((fast.get(i, j) - slow.get(i, j)).abs() < 1e-9);
                assert!(fast.get(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn pairwise_identical_points_clamp_to_zero() {
        // Large-magnitude nearly-equal rows provoke cancellation; the Gram
        // form must clamp, never go negative.
        let a = Matrix::from_rows(vec![vec![1e8, -1e8, 3.0]]).unwrap();
        let d = pairwise_sq_dists(&a, &a, 1).unwrap();
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn pairwise_rejects_dim_mismatch() {
        assert!(pairwise_sq_dists(&Matrix::zeros(2, 3), &Matrix::zeros(2, 4), 1).is_err());
    }

    #[test]
    fn pairwise_into_reuses_buffer_and_checks_shape() {
        let a = toy(5, 4, 9);
        let b = toy(3, 4, 10);
        let fresh = pairwise_sq_dists(&a, &b, 1).unwrap();
        let mut out = Matrix::zeros(5, 3);
        out.as_mut_slice().fill(f64::NAN); // stale contents must be overwritten
        pairwise_sq_dists_into(&a, &b, &mut out, 1).unwrap();
        assert_eq!(out, fresh);
        let mut wrong = Matrix::zeros(4, 3);
        assert!(pairwise_sq_dists_into(&a, &b, &mut wrong, 1).is_err());
    }

    #[test]
    fn kernels_bit_identical_across_threads() {
        let a = toy(37, 12, 6);
        let b = toy(29, 12, 7);
        let m1 = pairwise_sq_dists(&a, &b, 1).unwrap();
        let g1 = matmul_bt(&a, &b, 1).unwrap();
        for threads in [2, 3, 8] {
            assert_eq!(pairwise_sq_dists(&a, &b, threads).unwrap(), m1);
            assert_eq!(matmul_bt(&a, &b, threads).unwrap(), g1);
        }
    }

    #[test]
    fn thread_resolution_chain() {
        assert!(default_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn profile_counts_kernel_calls() {
        let before = profile_snapshot();
        let a = toy(8, 4, 8);
        let _ = pairwise_sq_dists(&a, &a, 1).unwrap();
        let _ = timed(KernelOp::KnnPredict, || 42);
        let delta = profile_snapshot().delta_since(&before);
        let names: Vec<&str> = delta.entries().iter().map(|e| e.0).collect();
        assert!(names.contains(&"pairwise_sq_dists"), "{names:?}");
        assert!(names.contains(&"knn_predict"), "{names:?}");
        assert!(delta.total_calls() >= 2);
    }
}
