//! Shared compute kernels for the ML hot paths.
//!
//! Every model in the zoo used to carry its own bounds-checked scalar
//! loops for matrix products and pairwise distances; this module is the
//! single home for those inner loops so they can be written once, written
//! well (row-slice access, unrolled accumulators, cache-blocked layout),
//! and parallelized once.
//!
//! Design points:
//!
//! - **Transpose-packed matmul** ([`matmul`], [`matmul_bt`]): `A × B` is
//!   computed as row-against-row dot products of `A` and `Bᵀ`, so both
//!   inner-loop operands are contiguous. Packing `Bᵀ` is `O(k·m)` against
//!   the product's `O(n·k·m)` — it pays for itself immediately.
//! - **Gram-expansion distances** ([`pairwise_sq_dists`]):
//!   `‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b` turns five hand-rolled distance loops
//!   across the model zoo into one kernel built on the same dot-product
//!   inner loop. Catastrophic cancellation can produce tiny negative
//!   results for near-identical points; those are clamped to `0.0` (the
//!   mathematically exact value is never negative).
//! - **Runtime SIMD dispatch** ([`Backend`], [`simd`]): the vector inner
//!   loops (`dot`, `axpy`, squared norms, the `matmul_bt` and
//!   `pairwise_sq_dists` row microkernels) have AVX2 and NEON
//!   implementations selected once per process from cached CPU detection.
//!   All backends share one mirrored accumulation structure (no FMA), so
//!   switching backends never changes a single output bit — dispatch is a
//!   pure throughput decision, and `--kernel-backend scalar` pins the
//!   portable mirror for A/B runs.
//! - **Deterministic parallelism**: every parallel kernel maps *rows* of
//!   the output, each computed independently with a fixed accumulation
//!   order, so results are bit-identical at any thread count. Reductions
//!   elsewhere in the zoo use `lumen_util::par::par_blocks` (fixed block
//!   size, fold in block order) for the same guarantee.
//! - **Profiling**: each kernel bumps a process-global `(calls, nanos)`
//!   counter per op ([`profile_snapshot`]) so the benchmark runner can
//!   attribute train/predict time to kernels in its `OpsProfile`. Model
//!   code can wrap coarser phases in [`timed`]; nested timings overlap by
//!   design (a `KnnPredict` span contains a `PairwiseSqDists` span).
//!
//! Thread counts resolve in three steps: an explicit per-call count wins;
//! a model config of `0` falls back to the process default
//! ([`set_default_threads`]), which the benchmark runner plumbs from its
//! `RunConfig`; a default of `0` means the machine's available
//! parallelism.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use lumen_util::par;

use crate::matrix::Matrix;
use crate::{MlError, MlResult};

pub mod simd;

// ---------------------------------------------------------------------------
// SIMD backend selection
// ---------------------------------------------------------------------------

/// Instruction-set backend for the vector kernels. All backends are
/// bit-identical (see [`simd`] for the mirrored-reduction contract); the
/// choice affects throughput only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar mirror — every target's fallback and the oracle the
    /// SIMD paths are property-tested against.
    Scalar,
    /// AVX2 (x86_64), runtime-detected.
    Avx2,
    /// NEON (aarch64), runtime-detected.
    Neon,
}

impl Backend {
    /// Stable lowercase name used in benchmarks, journals and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

/// How [`active_backend`] resolves: `Auto` picks the best detected
/// instruction set; `ForceScalar` pins the portable path (for A/B runs via
/// `--kernel-backend scalar`, and for perf triage on noisy hosts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendMode {
    /// Use the best backend the CPU supports (the default).
    #[default]
    Auto,
    /// Pin the scalar mirror regardless of CPU support.
    ForceScalar,
}

impl BackendMode {
    /// Parses a `--kernel-backend` CLI value (`"auto"` or `"scalar"`).
    pub fn parse(s: &str) -> Option<BackendMode> {
        match s {
            "auto" => Some(BackendMode::Auto),
            "scalar" => Some(BackendMode::ForceScalar),
            _ => None,
        }
    }
}

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);
static DETECTED: OnceLock<Backend> = OnceLock::new();
static FEATURES: OnceLock<String> = OnceLock::new();

/// Sets the process-wide backend mode (plumbed from `--kernel-backend`).
pub fn set_backend_mode(mode: BackendMode) {
    FORCE_SCALAR.store(mode == BackendMode::ForceScalar, Ordering::Relaxed);
}

/// The current process-wide backend mode.
pub fn backend_mode() -> BackendMode {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        BackendMode::ForceScalar
    } else {
        BackendMode::Auto
    }
}

/// The best backend this CPU supports, detected once and cached.
pub fn detected_backend() -> Backend {
    *DETECTED.get_or_init(|| {
        if simd::avx2_available() {
            Backend::Avx2
        } else if simd::neon_available() {
            Backend::Neon
        } else {
            Backend::Scalar
        }
    })
}

/// The backend the public kernels dispatch to right now: the detected one,
/// unless [`BackendMode::ForceScalar`] pins the portable path.
pub fn active_backend() -> Backend {
    if FORCE_SCALAR.load(Ordering::Relaxed) {
        Backend::Scalar
    } else {
        detected_backend()
    }
}

/// Comma-separated list of detected CPU features relevant to kernel
/// dispatch (journaled with every run for reproducibility).
pub fn detected_features() -> &'static str {
    FEATURES.get_or_init(|| {
        let mut f: Vec<&str> = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("sse2") {
                f.push("sse2");
            }
            if is_x86_feature_detected!("avx") {
                f.push("avx");
            }
            if is_x86_feature_detected!("avx2") {
                f.push("avx2");
            }
            if is_x86_feature_detected!("fma") {
                f.push("fma");
            }
            if is_x86_feature_detected!("avx512f") {
                f.push("avx512f");
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                f.push("neon");
            }
        }
        if f.is_empty() {
            "none".to_string()
        } else {
            f.join(",")
        }
    })
}

// ---------------------------------------------------------------------------
// Thread plumbing
// ---------------------------------------------------------------------------

/// Process-wide default worker count for kernels (0 = available parallelism).
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default kernel thread count. `0` restores the
/// "use available parallelism" default.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The process-wide default kernel thread count (never 0).
pub fn default_threads() -> usize {
    match DEFAULT_THREADS.load(Ordering::Relaxed) {
        0 => par::available_threads(),
        n => n,
    }
}

/// Resolves a model-config thread count: `0` means "use the process
/// default", anything else is taken literally.
pub fn resolve_threads(configured: usize) -> usize {
    if configured == 0 {
        default_threads()
    } else {
        configured
    }
}

/// Caps the worker count so each worker has a meaningful amount of work
/// (`work` is an element/flop estimate). Results never depend on the
/// worker count, so this is purely a scheduling heuristic.
fn clamp_threads(threads: usize, work: usize) -> usize {
    const MIN_WORK_PER_THREAD: usize = 16_384;
    threads.clamp(1, work / MIN_WORK_PER_THREAD + 1)
}

// ---------------------------------------------------------------------------
// Profiling
// ---------------------------------------------------------------------------

/// The profiled kernel/phase identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum KernelOp {
    /// Dense matrix product (either entry point).
    Matmul,
    /// Pairwise squared Euclidean distances.
    PairwiseSqDists,
    /// Blocked transpose.
    Transpose,
    /// kNN batch scoring (contains a `PairwiseSqDists` span).
    KnnPredict,
    /// One k-means assign+accumulate sweep.
    KmeansStep,
    /// A GMM mixture sweep (E-step responsibilities or batch scoring).
    Gmm,
    /// Random-Fourier-feature map of a sample batch.
    RffMap,
    /// Nystroem kernel-matrix construction / projection.
    Nystroem,
    /// Autoencoder whole-matrix forward pass (batch scoring).
    AeForward,
    /// Linear-model batch margin computation (logreg / linear SVM).
    LinearScore,
}

const OP_COUNT: usize = 10;
const OP_NAMES: [&str; OP_COUNT] = [
    "matmul",
    "pairwise_sq_dists",
    "transpose",
    "knn_predict",
    "kmeans_step",
    "gmm",
    "rff_map",
    "nystroem",
    "ae_forward",
    "linear_score",
];

const ZERO: AtomicU64 = AtomicU64::new(0);
static CALLS: [AtomicU64; OP_COUNT] = [ZERO; OP_COUNT];
static NANOS: [AtomicU64; OP_COUNT] = [ZERO; OP_COUNT];

#[inline]
fn record(op: KernelOp, start: Instant) {
    let i = op as usize;
    CALLS[i].fetch_add(1, Ordering::Relaxed);
    NANOS[i].fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

/// Runs `f` inside a profiled span for `op`. Use for model-level phases
/// (train sweeps, batch predicts) that are built from finer kernels;
/// nested spans overlap by design.
pub fn timed<R>(op: KernelOp, f: impl FnOnce() -> R) -> R {
    let t = Instant::now();
    let r = f();
    record(op, t);
    r
}

/// A point-in-time copy of the per-op kernel counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelProfile {
    calls: [u64; OP_COUNT],
    nanos: [u64; OP_COUNT],
}

impl KernelProfile {
    /// Counters accumulated since `earlier` (which must be an older
    /// snapshot from the same process).
    pub fn delta_since(&self, earlier: &KernelProfile) -> KernelProfile {
        let mut d = KernelProfile::default();
        for i in 0..OP_COUNT {
            d.calls[i] = self.calls[i].saturating_sub(earlier.calls[i]);
            d.nanos[i] = self.nanos[i].saturating_sub(earlier.nanos[i]);
        }
        d
    }

    /// `(op name, calls, nanos)` for every op with at least one call.
    pub fn entries(&self) -> Vec<(&'static str, u64, u64)> {
        (0..OP_COUNT)
            .filter(|&i| self.calls[i] > 0)
            .map(|i| (OP_NAMES[i], self.calls[i], self.nanos[i]))
            .collect()
    }

    /// Total profiled calls across all ops.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }
}

/// Snapshots the process-global kernel counters.
pub fn profile_snapshot() -> KernelProfile {
    let mut p = KernelProfile::default();
    for i in 0..OP_COUNT {
        p.calls[i] = CALLS[i].load(Ordering::Relaxed);
        p.nanos[i] = NANOS[i].load(Ordering::Relaxed);
    }
    p
}

// ---------------------------------------------------------------------------
// Fused vector helpers
// ---------------------------------------------------------------------------

/// Dot product with eight independent accumulators (breaks the FP-add
/// dependency chain; fixed summation order mirrored bit-for-bit by every
/// SIMD backend), dispatched to [`active_backend`].
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    simd::dot(active_backend(), a, b)
}

/// [`dot`] on an explicit backend (benchmarks and equivalence tests).
#[inline]
pub fn dot_with(backend: Backend, a: &[f64], b: &[f64]) -> f64 {
    simd::dot(backend, a, b)
}

/// `y ← y + alpha·x`, element-wise, dispatched to [`active_backend`].
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    simd::axpy(active_backend(), alpha, x, y)
}

/// [`axpy`] on an explicit backend.
#[inline]
pub fn axpy_with(backend: Backend, alpha: f64, x: &[f64], y: &mut [f64]) {
    simd::axpy(backend, alpha, x, y)
}

/// Squared Euclidean norm of each row.
pub fn sq_norms(m: &Matrix) -> Vec<f64> {
    sq_norms_with(active_backend(), m)
}

/// [`sq_norms`] on an explicit backend.
pub fn sq_norms_with(backend: Backend, m: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0; m.rows()];
    if m.cols() > 0 {
        simd::sq_norms_into(backend, m.as_slice(), m.cols(), &mut out);
    }
    out
}

// ---------------------------------------------------------------------------
// Matrix kernels
// ---------------------------------------------------------------------------

/// Blocked transpose: walks the input in square tiles so reads and writes
/// both stay within a cache-resident working set, using flat-slice
/// indexing instead of per-element `get`/`set`.
pub fn transpose(m: &Matrix) -> Matrix {
    let t = Instant::now();
    let (rows, cols) = (m.rows(), m.cols());
    let mut out = Matrix::zeros(cols, rows);
    const TILE: usize = 32;
    let src = m.as_slice();
    let dst = out.as_mut_slice();
    for rb in (0..rows).step_by(TILE) {
        let rend = (rb + TILE).min(rows);
        for cb in (0..cols).step_by(TILE) {
            let cend = (cb + TILE).min(cols);
            for r in rb..rend {
                let src_row = &src[r * cols..r * cols + cols];
                for c in cb..cend {
                    dst[c * rows + r] = src_row[c];
                }
            }
        }
    }
    record(KernelOp::Transpose, t);
    out
}

/// `A × B` via transpose packing: `B` is repacked as `Bᵀ` so the inner
/// loop is a contiguous row-row dot product, then [`matmul_bt`] does the
/// work across `threads` workers.
pub fn matmul(a: &Matrix, b: &Matrix, threads: usize) -> MlResult<Matrix> {
    matmul_with(active_backend(), a, b, threads)
}

/// [`matmul`] on an explicit backend.
pub fn matmul_with(backend: Backend, a: &Matrix, b: &Matrix, threads: usize) -> MlResult<Matrix> {
    if a.cols() != b.rows() {
        return Err(MlError::DimensionMismatch {
            expected: a.cols(),
            got: b.rows(),
        });
    }
    let bt = transpose(b);
    matmul_bt_with(backend, a, &bt, threads)
}

/// `A × Bᵀᵀ` for a pre-packed `Bᵀ` (`bt.row(j)` holds column `j` of the
/// logical right-hand side): `out[i][j] = dot(a.row(i), bt.row(j))`.
///
/// Output rows are computed independently on up to `threads` workers, so
/// the result is bit-identical at any thread count.
pub fn matmul_bt(a: &Matrix, bt: &Matrix, threads: usize) -> MlResult<Matrix> {
    matmul_bt_with(active_backend(), a, bt, threads)
}

/// [`matmul_bt`] on an explicit backend. The backend is resolved once here
/// and passed *by value* into the worker closures, so every row of one call
/// uses the same instruction set regardless of which thread computes it.
pub fn matmul_bt_with(backend: Backend, a: &Matrix, bt: &Matrix, threads: usize) -> MlResult<Matrix> {
    if a.cols() != bt.cols() {
        return Err(MlError::DimensionMismatch {
            expected: a.cols(),
            got: bt.cols(),
        });
    }
    let t = Instant::now();
    let (n, m, k) = (a.rows(), bt.rows(), a.cols());
    let mut out = Matrix::zeros(n, m);
    if n > 0 && m > 0 {
        let threads = clamp_threads(threads, n * m * k.max(1));
        let bsrc = bt.as_slice();
        par::par_rows_mut(out.as_mut_slice(), m, threads, |i, out_row| {
            simd::matmul_bt_row(backend, a.row(i), bsrc, k, out_row);
        });
    }
    record(KernelOp::Matmul, t);
    Ok(out)
}

/// A-rows per cache block in [`pairwise_sq_dists`]: every B tile loaded
/// from memory is reused by this many a-rows before moving on, cutting B
/// traffic by the same factor. 8 rows × up to a few hundred features stays
/// comfortably inside L1 alongside the tile.
const PAIRWISE_BLOCK_ROWS: usize = 8;

/// B-rows per tile in [`pairwise_sq_dists`]: 64 rows × d features (16 KiB
/// at d=32) fits in L1, so the inner `pairwise_row` sweep of each a-row in
/// the block hits cache instead of DRAM.
const PAIRWISE_TILE_ROWS: usize = 64;

/// Pairwise squared Euclidean distances between the rows of `a` and the
/// rows of `b`: `out[i][j] = ‖a.row(i) − b.row(j)‖²`, computed by the Gram
/// expansion `‖a‖² + ‖b‖² − 2·a·b` with one fused pass per output row.
///
/// Cancellation can make near-zero results slightly negative; they are
/// clamped to `0.0`. Rows are computed independently on up to `threads`
/// workers (bit-identical at any thread count).
pub fn pairwise_sq_dists(a: &Matrix, b: &Matrix, threads: usize) -> MlResult<Matrix> {
    pairwise_sq_dists_with(active_backend(), a, b, threads)
}

/// [`pairwise_sq_dists`] on an explicit backend.
pub fn pairwise_sq_dists_with(
    backend: Backend,
    a: &Matrix,
    b: &Matrix,
    threads: usize,
) -> MlResult<Matrix> {
    if a.cols() != b.cols() {
        return Err(MlError::DimensionMismatch {
            expected: a.cols(),
            got: b.cols(),
        });
    }
    let (n, m) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(n, m);
    pairwise_sq_dists_into_with(backend, a, b, &mut out, threads)?;
    Ok(out)
}

/// [`pairwise_sq_dists`] into a caller-provided output matrix (shape
/// `a.rows() × b.rows()`), so repeated batch scoring can reuse one buffer
/// instead of re-faulting a fresh allocation per call.
pub fn pairwise_sq_dists_into(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    threads: usize,
) -> MlResult<()> {
    pairwise_sq_dists_into_with(active_backend(), a, b, out, threads)
}

/// [`pairwise_sq_dists_into`] on an explicit backend (resolved once, passed
/// by value into the worker closures — see [`matmul_bt_with`]).
pub fn pairwise_sq_dists_into_with(
    backend: Backend,
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    threads: usize,
) -> MlResult<()> {
    if out.rows() != a.rows() || out.cols() != b.rows() {
        return Err(MlError::DimensionMismatch {
            expected: a.rows() * b.rows(),
            got: out.rows() * out.cols(),
        });
    }
    let t = Instant::now();
    let (n, m, d) = (a.rows(), b.rows(), a.cols());
    if n > 0 && m > 0 && d > 0 {
        let bn = sq_norms_with(backend, b);
        let threads = clamp_threads(threads, n * m * d);
        let bsrc = b.as_slice();
        let asrc = a.as_slice();
        // Cache blocking: each block of `PAIRWISE_BLOCK_ROWS` a-rows sweeps
        // B in `PAIRWISE_TILE_ROWS`-row tiles, so a tile loaded for one
        // a-row is reused from L1/L2 by the rest of the block instead of
        // re-streaming all of B per a-row (at n=4000, d=32 that single
        // change moves the kernel from memory-bound to compute-bound).
        // Every output element is still `max(0, an + bn[j] − 2·dot)` with
        // the same mirrored-reduction dot, so blocking reorders the
        // traversal without changing a single bit of the result.
        par::par_row_blocks_mut(
            out.as_mut_slice(),
            m,
            PAIRWISE_BLOCK_ROWS,
            threads,
            |first_row, blk| {
                let rows = blk.len() / m;
                let mut an = [0.0f64; PAIRWISE_BLOCK_ROWS];
                for (i, an_i) in an.iter_mut().take(rows).enumerate() {
                    let arow = &asrc[(first_row + i) * d..(first_row + i + 1) * d];
                    *an_i = simd::dot(backend, arow, arow);
                }
                let mut jt = 0;
                while jt < m {
                    let je = (jt + PAIRWISE_TILE_ROWS).min(m);
                    let btile = &bsrc[jt * d..je * d];
                    let bntile = &bn[jt..je];
                    for i in 0..rows {
                        let arow = &asrc[(first_row + i) * d..(first_row + i + 1) * d];
                        let out_span = &mut blk[i * m + jt..i * m + je];
                        simd::pairwise_row(backend, arow, an[i], btile, d, bntile, out_span);
                    }
                    jt = je;
                }
            },
        );
    } else {
        out.as_mut_slice().fill(0.0);
    }
    record(KernelOp::PairwiseSqDists, t);
    Ok(())
}

// ---------------------------------------------------------------------------
// Naive references (oracles for tests and the benchmark baseline)
// ---------------------------------------------------------------------------

/// Scalar reference implementations the optimized kernels are measured and
/// property-tested against.
pub mod reference {
    use super::*;

    /// Textbook triple-loop matrix product.
    pub fn matmul(a: &Matrix, b: &Matrix) -> MlResult<Matrix> {
        if a.cols() != b.rows() {
            return Err(MlError::DimensionMismatch {
                expected: a.cols(),
                got: b.rows(),
            });
        }
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        Ok(out)
    }

    /// Per-element squared-difference distance loop (what the model zoo
    /// used to hand-roll five times).
    pub fn pairwise_sq_dists(a: &Matrix, b: &Matrix) -> MlResult<Matrix> {
        if a.cols() != b.cols() {
            return Err(MlError::DimensionMismatch {
                expected: a.cols(),
                got: b.cols(),
            });
        }
        let mut out = Matrix::zeros(a.rows(), b.rows());
        pairwise_sq_dists_into(a, b, &mut out);
        Ok(out)
    }

    /// [`pairwise_sq_dists`] into a caller-provided buffer — the
    /// allocation-free counterpart of the optimized `_into` kernel, so
    /// benchmarks compare compute against compute.
    pub fn pairwise_sq_dists_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    let d = a.get(i, k) - b.get(j, k);
                    s += d * d;
                }
                out.set(i, j, s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = lumen_util::Rng::new(seed);
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| rng.f64_range(-2.0, 2.0))
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..13).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..13).map(|i| (13 - i) as f64).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-9);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 2.0, 3.0];
        axpy(2.0, &[10.0, 20.0, 30.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0, 63.0]);
    }

    #[test]
    fn sq_norms_handles_zero_cols() {
        let m = Matrix::zeros(3, 0);
        assert_eq!(sq_norms(&m), vec![0.0; 3]);
    }

    #[test]
    fn transpose_matches_naive() {
        for (r, c) in [(1, 1), (3, 7), (40, 33), (65, 2)] {
            let m = toy(r, c, 1);
            let t = transpose(&m);
            assert_eq!(t.rows(), c);
            assert_eq!(t.cols(), r);
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t.get(j, i), m.get(i, j));
                }
            }
        }
    }

    #[test]
    fn matmul_matches_reference() {
        let a = toy(17, 9, 2);
        let b = toy(9, 23, 3);
        let fast = matmul(&a, &b, 4).unwrap();
        let slow = reference::matmul(&a, &b).unwrap();
        for i in 0..17 {
            for j in 0..23 {
                assert!((fast.get(i, j) - slow.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn matmul_rejects_mismatch() {
        assert!(matmul(&Matrix::zeros(2, 3), &Matrix::zeros(2, 3), 1).is_err());
        assert!(matmul_bt(&Matrix::zeros(2, 3), &Matrix::zeros(5, 4), 1).is_err());
    }

    #[test]
    fn matmul_empty_shapes() {
        let c = matmul(&Matrix::zeros(0, 5), &Matrix::zeros(5, 4), 4).unwrap();
        assert_eq!((c.rows(), c.cols()), (0, 4));
        let c = matmul(&Matrix::zeros(3, 0), &Matrix::zeros(0, 2), 4).unwrap();
        assert_eq!((c.rows(), c.cols()), (3, 2));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pairwise_matches_reference_and_is_nonnegative() {
        let a = toy(11, 6, 4);
        let b = toy(7, 6, 5);
        let fast = pairwise_sq_dists(&a, &b, 4).unwrap();
        let slow = reference::pairwise_sq_dists(&a, &b).unwrap();
        for i in 0..11 {
            for j in 0..7 {
                assert!((fast.get(i, j) - slow.get(i, j)).abs() < 1e-9);
                assert!(fast.get(i, j) >= 0.0);
            }
        }
    }

    #[test]
    fn pairwise_identical_points_clamp_to_zero() {
        // Large-magnitude nearly-equal rows provoke cancellation; the Gram
        // form must clamp, never go negative.
        let a = Matrix::from_rows(vec![vec![1e8, -1e8, 3.0]]).unwrap();
        let d = pairwise_sq_dists(&a, &a, 1).unwrap();
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn pairwise_rejects_dim_mismatch() {
        assert!(pairwise_sq_dists(&Matrix::zeros(2, 3), &Matrix::zeros(2, 4), 1).is_err());
    }

    #[test]
    fn pairwise_into_reuses_buffer_and_checks_shape() {
        let a = toy(5, 4, 9);
        let b = toy(3, 4, 10);
        let fresh = pairwise_sq_dists(&a, &b, 1).unwrap();
        let mut out = Matrix::zeros(5, 3);
        out.as_mut_slice().fill(f64::NAN); // stale contents must be overwritten
        pairwise_sq_dists_into(&a, &b, &mut out, 1).unwrap();
        assert_eq!(out, fresh);
        let mut wrong = Matrix::zeros(4, 3);
        assert!(pairwise_sq_dists_into(&a, &b, &mut wrong, 1).is_err());
    }

    #[test]
    fn pairwise_cache_blocking_is_bit_transparent() {
        // Sizes straddling both blocking constants: n is not a multiple of
        // PAIRWISE_BLOCK_ROWS and m crosses two PAIRWISE_TILE_ROWS
        // boundaries, so short blocks and short tiles are all exercised.
        // The blocked traversal must reproduce the plain Gram expansion
        // bit-for-bit on every backend.
        let n = PAIRWISE_BLOCK_ROWS * 2 + 3;
        let m = PAIRWISE_TILE_ROWS * 2 + 5;
        let a = toy(n, 9, 21);
        let b = toy(m, 9, 22);
        for be in [Backend::Scalar, detected_backend()] {
            let got = pairwise_sq_dists_with(be, &a, &b, 3).unwrap();
            let bn = sq_norms_with(be, &b);
            for i in 0..n {
                for j in 0..m {
                    let an = simd::dot(be, a.row(i), a.row(i));
                    let want = (an + bn[j] - 2.0 * simd::dot(be, a.row(i), b.row(j))).max(0.0);
                    assert_eq!(
                        got.get(i, j).to_bits(),
                        want.to_bits(),
                        "({i},{j}) backend {}",
                        be.name()
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_bit_identical_across_threads() {
        let a = toy(37, 12, 6);
        let b = toy(29, 12, 7);
        let m1 = pairwise_sq_dists(&a, &b, 1).unwrap();
        let g1 = matmul_bt(&a, &b, 1).unwrap();
        for threads in [2, 3, 8] {
            assert_eq!(pairwise_sq_dists(&a, &b, threads).unwrap(), m1);
            assert_eq!(matmul_bt(&a, &b, threads).unwrap(), g1);
        }
    }

    #[test]
    fn matrix_kernels_bit_identical_across_backends() {
        // The acceptance contract: dispatching to the detected SIMD backend
        // must not change a single output bit relative to the scalar
        // mirror, for any thread count. (On scalar-only hosts this
        // degenerates to scalar-vs-scalar, which still exercises dispatch.)
        let a = toy(23, 13, 11);
        let b = toy(19, 13, 12);
        let simd_be = detected_backend();
        for threads in [1, 2, 8] {
            let mm_s = matmul_bt_with(Backend::Scalar, &a, &b, threads).unwrap();
            let mm_f = matmul_bt_with(simd_be, &a, &b, threads).unwrap();
            assert_eq!(mm_s, mm_f, "matmul_bt backend divergence");
            let pw_s = pairwise_sq_dists_with(Backend::Scalar, &a, &b, threads).unwrap();
            let pw_f = pairwise_sq_dists_with(simd_be, &a, &b, threads).unwrap();
            assert_eq!(pw_s, pw_f, "pairwise backend divergence");
        }
        assert_eq!(sq_norms_with(Backend::Scalar, &a), sq_norms_with(simd_be, &a));
    }

    #[test]
    fn backend_names_and_mode_parse() {
        assert_eq!(Backend::Scalar.name(), "scalar");
        assert_eq!(Backend::Avx2.name(), "avx2");
        assert_eq!(Backend::Neon.name(), "neon");
        assert_eq!(BackendMode::parse("auto"), Some(BackendMode::Auto));
        assert_eq!(BackendMode::parse("scalar"), Some(BackendMode::ForceScalar));
        assert_eq!(BackendMode::parse("avx9"), None);
        assert!(!detected_features().is_empty());
        // The detected backend must be one the host actually supports.
        match detected_backend() {
            Backend::Avx2 => assert!(simd::avx2_available()),
            Backend::Neon => assert!(simd::neon_available()),
            Backend::Scalar => {}
        }
    }

    #[test]
    fn thread_resolution_chain() {
        assert!(default_threads() >= 1);
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn profile_counts_kernel_calls() {
        let before = profile_snapshot();
        let a = toy(8, 4, 8);
        let _ = pairwise_sq_dists(&a, &a, 1).unwrap();
        let _ = timed(KernelOp::KnnPredict, || 42);
        let delta = profile_snapshot().delta_since(&before);
        let names: Vec<&str> = delta.entries().iter().map(|e| e.0).collect();
        assert!(names.contains(&"pairwise_sq_dists"), "{names:?}");
        assert!(names.contains(&"knn_predict"), "{names:?}");
        assert!(delta.total_calls() >= 2);
    }
}
