//! Runtime-dispatched SIMD inner loops — the crate's only `unsafe` code.
//!
//! This module holds the data-parallel implementations of the hot vector
//! primitives (`dot`, `axpy`, row squared-norms, the `matmul_bt` and
//! `pairwise_sq_dists` row microkernels) for AVX2 (x86_64) and NEON
//! (aarch64), plus the portable scalar mirrors that every other target —
//! and every `--kernel-backend scalar` A/B run — uses.
//!
//! # Unsafe carve-out policy
//!
//! The crate is `#![deny(unsafe_code)]`; this file carries the single
//! `#![allow(unsafe_code)]`. The rules (enforced by
//! `scripts/check_unsafe_audit.sh` in CI):
//!
//! - `unsafe` appears nowhere else in the workspace;
//! - every `unsafe fn` and every `unsafe { .. }` block in this file is
//!   annotated with a `// safety:` comment stating the invariant that makes
//!   it sound;
//! - the only unsafety is `std::arch` intrinsics plus in-bounds pointer
//!   loads derived from slice lengths computed in this file — no FFI, no
//!   lifetime laundering, no aliasing tricks;
//! - the public dispatch functions are *safe*: they verify instruction-set
//!   availability via runtime CPU detection before entering a SIMD path and
//!   fall back to scalar otherwise, so a [`Backend`] value is never a
//!   soundness obligation for callers.
//!
//! # Bit-identity contract
//!
//! Every backend accumulates dot products in the same mirrored structure:
//! eight logical f64 lanes per step, where lane `j` sums the elements at
//! indices `≡ j (mod 8)`, reduced as `((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7))`
//! (exactly the AVX2 two-register horizontal sum; the NEON four-register
//! tree reassociates to the same expression), followed by a sequential
//! scalar tail. No FMA is used — fused rounding would diverge from the
//! scalar mirror. Scalar, AVX2 and NEON therefore produce **bit-identical**
//! results for `dot`/`axpy`/`sq_norms`/`matmul_bt`/`pairwise_sq_dists`:
//! backend dispatch changes speed, never floats. Tests pin this with
//! `f64::to_bits` equality across backends (including the remainder lanes:
//! lengths 0, 1, 7, 8, 9 and other non-multiples of the width).
#![allow(unsafe_code)]

use super::Backend;

/// Logical f64 lanes each backend's dot-product inner loop consumes per
/// step (two 256-bit registers on AVX2, four 128-bit registers on NEON,
/// eight scalar accumulators on the portable path).
pub const WIDTH: usize = 8;

/// True when this CPU can run the AVX2 kernels (always false off x86_64).
#[inline]
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when this CPU can run the NEON kernels (always false off aarch64).
#[inline]
pub fn neon_available() -> bool {
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("neon")
    }
    #[cfg(not(target_arch = "aarch64"))]
    {
        false
    }
}

// ---------------------------------------------------------------------------
// Portable scalar mirrors
// ---------------------------------------------------------------------------

/// Scalar dot product in the mirrored 8-lane shape (see the module docs for
/// the bit-identity contract with the SIMD paths).
#[inline]
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let mut ca = a.chunks_exact(WIDTH);
    let mut cb = b.chunks_exact(WIDTH);
    let mut s = [0.0f64; WIDTH];
    for (x, y) in (&mut ca).zip(&mut cb) {
        for j in 0..WIDTH {
            s[j] += x[j] * y[j];
        }
    }
    let mut tail = 0.0;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    // Lanewise halves sum (s[j] + s[j+4]), then the 128-bit-half tree —
    // the exact shape of the AVX2/NEON horizontal reductions.
    let v0 = s[0] + s[4];
    let v1 = s[1] + s[5];
    let v2 = s[2] + s[6];
    let v3 = s[3] + s[7];
    ((v0 + v2) + (v1 + v3)) + tail
}

/// Scalar `y ← y + alpha·x`. Element-wise (no reassociation), so every
/// backend is trivially bit-identical here as long as none uses FMA.
#[inline]
pub fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

#[inline]
fn sq_norms_scalar(data: &[f64], d: usize, out: &mut [f64]) {
    for (j, o) in out.iter_mut().enumerate() {
        let row = &data[j * d..j * d + d];
        *o = dot_scalar(row, row);
    }
}

#[inline]
fn matmul_bt_row_scalar(arow: &[f64], b_data: &[f64], d: usize, out_row: &mut [f64]) {
    for (j, o) in out_row.iter_mut().enumerate() {
        *o = dot_scalar(arow, &b_data[j * d..j * d + d]);
    }
}

#[inline]
fn pairwise_row_scalar(
    arow: &[f64],
    an: f64,
    b_data: &[f64],
    d: usize,
    bn: &[f64],
    out_row: &mut [f64],
) {
    for (j, o) in out_row.iter_mut().enumerate() {
        let brow = &b_data[j * d..j * d + d];
        *o = (an + bn[j] - 2.0 * dot_scalar(arow, brow)).max(0.0);
    }
}

// ---------------------------------------------------------------------------
// AVX2 (x86_64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// AVX2 dot product, bit-identical to [`super::dot_scalar`].
    ///
    /// # Safety
    /// The CPU must support AVX2 (checked by the caller via runtime
    /// feature detection).
    // safety: callers gate on avx2_available(); all loads below stay inside
    // `min(a.len(), b.len())`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        for c in 0..chunks {
            let i = c * 8;
            // safety: i + 8 <= chunks * 8 <= n <= a.len() and b.len(), so
            // all eight lanes are in-bounds; loadu tolerates any alignment.
            let x0 = _mm256_loadu_pd(ap.add(i));
            let y0 = _mm256_loadu_pd(bp.add(i));
            let x1 = _mm256_loadu_pd(ap.add(i + 4));
            let y1 = _mm256_loadu_pd(bp.add(i + 4));
            // mul + add, not FMA: fused rounding would break the
            // bit-identity contract with the scalar mirror.
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(x0, y0));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(x1, y1));
        }
        // v[j] = s[j] + s[j+4], then the 128-bit-half tree:
        // ((v0+v2) + (v1+v3)) — mirrored exactly in dot_scalar.
        let v = _mm256_add_pd(acc0, acc1);
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd::<1>(v);
        let t = _mm_add_pd(lo, hi);
        let sum = _mm_cvtsd_f64(t) + _mm_cvtsd_f64(_mm_unpackhi_pd(t, t));
        let mut tail = 0.0;
        for i in chunks * 8..n {
            tail += a[i] * b[i];
        }
        sum + tail
    }

    /// AVX2 `y ← y + alpha·x`.
    ///
    /// # Safety
    /// The CPU must support AVX2.
    // safety: callers gate on avx2_available(); loads/stores stay inside
    // `min(x.len(), y.len())`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let chunks = n / 4;
        let av = _mm256_set1_pd(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for c in 0..chunks {
            let i = c * 4;
            // safety: i + 4 <= chunks * 4 <= n <= x.len() and y.len(); the
            // store writes back to the same in-bounds y lanes just loaded.
            let xv = _mm256_loadu_pd(xp.add(i));
            let yv = _mm256_loadu_pd(yp.add(i));
            _mm256_storeu_pd(yp.add(i), _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
        }
        for i in chunks * 4..n {
            y[i] += alpha * x[i];
        }
    }

    /// AVX2 row squared-norms: `out[j] = ‖data[j·d .. j·d+d]‖²`.
    ///
    /// # Safety
    /// The CPU must support AVX2; caller guarantees
    /// `data.len() >= out.len() * d`.
    // safety: row slices below are in-bounds by the caller contract, which
    // the safe dispatch wrapper asserts.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_norms(data: &[f64], d: usize, out: &mut [f64]) {
        for (j, o) in out.iter_mut().enumerate() {
            let row = &data[j * d..j * d + d];
            // safety: AVX2 is active for this whole fn (target_feature);
            // `dot` inlines here.
            *o = dot(row, row);
        }
    }

    /// AVX2 `matmul_bt` row microkernel: `out_row[j] = dot(arow, b_row_j)`.
    ///
    /// # Safety
    /// The CPU must support AVX2; caller guarantees
    /// `b_data.len() >= out_row.len() * d`.
    // safety: row slices are in-bounds by the caller contract, asserted in
    // the safe dispatch wrapper.
    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul_bt_row(arow: &[f64], b_data: &[f64], d: usize, out_row: &mut [f64]) {
        for (j, o) in out_row.iter_mut().enumerate() {
            // safety: AVX2 active for this whole fn; `dot` inlines here.
            *o = dot(arow, &b_data[j * d..j * d + d]);
        }
    }

    /// AVX2 Gram-expansion distance row:
    /// `out_row[j] = max(0, an + bn[j] − 2·dot(arow, b_row_j))`.
    ///
    /// Processes four b-rows per step with a private mirrored accumulator
    /// pair each: the shared a-row loads are amortized and the four add
    /// chains are independent, which hides the 4-cycle vector-add latency
    /// that bounds the one-row-at-a-time loop (d=32 gives each dot only 4
    /// chunk iterations — too few to saturate the ports alone). The
    /// combined 4-dot reduction evaluates exactly
    /// `((v0+v2) + (v1+v3))` per column, i.e. the same tree as the
    /// single-dot horizontal sum, so the unroll is bit-transparent.
    ///
    /// # Safety
    /// The CPU must support AVX2; caller guarantees
    /// `b_data.len() >= out_row.len() * d` and `bn.len() >= out_row.len()`.
    // safety: slice accesses are in-bounds by the caller contract, asserted
    // in the safe dispatch wrapper.
    #[target_feature(enable = "avx2")]
    pub unsafe fn pairwise_row(
        arow: &[f64],
        an: f64,
        b_data: &[f64],
        d: usize,
        bn: &[f64],
        out_row: &mut [f64],
    ) {
        let m = out_row.len();
        let chunks = d / 8;
        let ap = arow.as_ptr();
        let bp = b_data.as_ptr();
        let quads = m / 4;
        for q in 0..quads {
            let j = q * 4;
            // safety: (j + 3) * d + d <= m * d <= b_data.len() by the
            // caller contract, so all four row pointers and every load
            // below (bounded by chunks * 8 <= d) stay in-bounds.
            let r0 = bp.add(j * d);
            let r1 = bp.add((j + 1) * d);
            let r2 = bp.add((j + 2) * d);
            let r3 = bp.add((j + 3) * d);
            // Per column k: acc0k sums lanes 0–3, acc1k lanes 4–7 — the
            // same split as `dot`, just four columns in flight.
            let mut acc00 = _mm256_setzero_pd();
            let mut acc10 = _mm256_setzero_pd();
            let mut acc01 = _mm256_setzero_pd();
            let mut acc11 = _mm256_setzero_pd();
            let mut acc02 = _mm256_setzero_pd();
            let mut acc12 = _mm256_setzero_pd();
            let mut acc03 = _mm256_setzero_pd();
            let mut acc13 = _mm256_setzero_pd();
            for c in 0..chunks {
                let i = c * 8;
                // safety: i + 8 <= chunks * 8 <= d <= each row's length.
                let x0 = _mm256_loadu_pd(ap.add(i));
                let x1 = _mm256_loadu_pd(ap.add(i + 4));
                // mul + add, not FMA (bit-identity contract with scalar).
                acc00 = _mm256_add_pd(acc00, _mm256_mul_pd(x0, _mm256_loadu_pd(r0.add(i))));
                acc10 = _mm256_add_pd(acc10, _mm256_mul_pd(x1, _mm256_loadu_pd(r0.add(i + 4))));
                acc01 = _mm256_add_pd(acc01, _mm256_mul_pd(x0, _mm256_loadu_pd(r1.add(i))));
                acc11 = _mm256_add_pd(acc11, _mm256_mul_pd(x1, _mm256_loadu_pd(r1.add(i + 4))));
                acc02 = _mm256_add_pd(acc02, _mm256_mul_pd(x0, _mm256_loadu_pd(r2.add(i))));
                acc12 = _mm256_add_pd(acc12, _mm256_mul_pd(x1, _mm256_loadu_pd(r2.add(i + 4))));
                acc03 = _mm256_add_pd(acc03, _mm256_mul_pd(x0, _mm256_loadu_pd(r3.add(i))));
                acc13 = _mm256_add_pd(acc13, _mm256_mul_pd(x1, _mm256_loadu_pd(r3.add(i + 4))));
            }
            // v[k] = acc0 + acc1 per column (lanes v0..v3), then
            // w = v + swap128(v) gives (v0+v2, v1+v3, ·, ·); unpacklo/hi
            // pairs select w0 and w1 per column, and their sum is
            // ((v0+v2) + (v1+v3)) — the exact single-dot reduction tree.
            let va = _mm256_add_pd(acc00, acc10);
            let vb = _mm256_add_pd(acc01, acc11);
            let vc = _mm256_add_pd(acc02, acc12);
            let vd = _mm256_add_pd(acc03, acc13);
            let wa = _mm256_add_pd(va, _mm256_permute2f128_pd::<0x01>(va, va));
            let wb = _mm256_add_pd(vb, _mm256_permute2f128_pd::<0x01>(vb, vb));
            let wc = _mm256_add_pd(vc, _mm256_permute2f128_pd::<0x01>(vc, vc));
            let wd = _mm256_add_pd(vd, _mm256_permute2f128_pd::<0x01>(vd, vd));
            let sab = _mm256_add_pd(_mm256_unpacklo_pd(wa, wb), _mm256_unpackhi_pd(wa, wb));
            let scd = _mm256_add_pd(_mm256_unpacklo_pd(wc, wd), _mm256_unpackhi_pd(wc, wd));
            let dots = _mm256_permute2f128_pd::<0x20>(sab, scd);
            if chunks * 8 == d {
                // No scalar tail: finish the Gram expression in vector
                // lanes. Each lane evaluates `(an + bn[j]) − (2·dot)` then
                // `max(·, 0)` — elementwise-identical IEEE ops to the
                // scalar epilogue (vmaxpd with the zero vector as the
                // second operand returns 0.0 for NaN lanes, matching
                // `f64::max(NaN, 0.0)`; `−0.0` cannot arise because
                // `an + bn[j] ≥ +0.0`).
                // safety: j + 4 <= quads * 4 <= m <= bn.len() and
                // out_row.len(), so both the bn load and the out store
                // touch in-bounds lanes.
                let anv = _mm256_set1_pd(an);
                let bnv = _mm256_loadu_pd(bn.as_ptr().add(j));
                let two = _mm256_set1_pd(2.0);
                let r = _mm256_sub_pd(_mm256_add_pd(anv, bnv), _mm256_mul_pd(two, dots));
                let r = _mm256_max_pd(r, _mm256_setzero_pd());
                _mm256_storeu_pd(out_row.as_mut_ptr().add(j), r);
            } else {
                let mut dv = [0.0f64; 4];
                // safety: dv is a 4-element stack array; storeu writes 4
                // lanes.
                _mm256_storeu_pd(dv.as_mut_ptr(), dots);
                for (k, &dk) in dv.iter().enumerate() {
                    // Sequential scalar tail appended after the vector sum
                    // — the same `sum + tail` order as `dot`.
                    let mut tail = 0.0;
                    for i in chunks * 8..d {
                        tail += arow[i] * b_data[(j + k) * d + i];
                    }
                    out_row[j + k] = (an + bn[j + k] - 2.0 * (dk + tail)).max(0.0);
                }
            }
        }
        for j in quads * 4..m {
            let brow = &b_data[j * d..j * d + d];
            // safety: AVX2 active for this whole fn; `dot` inlines here.
            out_row[j] = (an + bn[j] - 2.0 * dot(arow, brow)).max(0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// NEON (aarch64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod arm {
    use std::arch::aarch64::*;

    /// NEON dot product, bit-identical to [`super::dot_scalar`].
    ///
    /// # Safety
    /// The CPU must support NEON (checked by the caller via runtime
    /// feature detection).
    // safety: callers gate on neon_available(); all loads below stay inside
    // `min(a.len(), b.len())`.
    #[target_feature(enable = "neon")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let chunks = n / 8;
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        // c0..c3 hold lane pairs (0,1) (2,3) (4,5) (6,7) of each 8-chunk.
        let mut c0 = vdupq_n_f64(0.0);
        let mut c1 = vdupq_n_f64(0.0);
        let mut c2 = vdupq_n_f64(0.0);
        let mut c3 = vdupq_n_f64(0.0);
        for c in 0..chunks {
            let i = c * 8;
            // safety: i + 8 <= chunks * 8 <= n <= a.len() and b.len(), so
            // all eight lanes are in-bounds.
            // vmulq + vaddq, not vfmaq: fused rounding would break the
            // bit-identity contract with the scalar mirror.
            c0 = vaddq_f64(c0, vmulq_f64(vld1q_f64(ap.add(i)), vld1q_f64(bp.add(i))));
            c1 = vaddq_f64(
                c1,
                vmulq_f64(vld1q_f64(ap.add(i + 2)), vld1q_f64(bp.add(i + 2))),
            );
            c2 = vaddq_f64(
                c2,
                vmulq_f64(vld1q_f64(ap.add(i + 4)), vld1q_f64(bp.add(i + 4))),
            );
            c3 = vaddq_f64(
                c3,
                vmulq_f64(vld1q_f64(ap.add(i + 6)), vld1q_f64(bp.add(i + 6))),
            );
        }
        // (c0+c2) = (s0+s4, s1+s5), (c1+c3) = (s2+s6, s3+s7); their sum's
        // lane0+lane1 is ((v0+v2) + (v1+v3)) — mirrored in dot_scalar.
        let w0 = vaddq_f64(c0, c2);
        let w1 = vaddq_f64(c1, c3);
        let x = vaddq_f64(w0, w1);
        let sum = vgetq_lane_f64::<0>(x) + vgetq_lane_f64::<1>(x);
        let mut tail = 0.0;
        for i in chunks * 8..n {
            tail += a[i] * b[i];
        }
        sum + tail
    }

    /// NEON `y ← y + alpha·x`.
    ///
    /// # Safety
    /// The CPU must support NEON.
    // safety: callers gate on neon_available(); loads/stores stay inside
    // `min(x.len(), y.len())`.
    #[target_feature(enable = "neon")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let chunks = n / 2;
        let av = vdupq_n_f64(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for c in 0..chunks {
            let i = c * 2;
            // safety: i + 2 <= chunks * 2 <= n <= x.len() and y.len(); the
            // store writes back to the same in-bounds y lanes just loaded.
            let xv = vld1q_f64(xp.add(i));
            let yv = vld1q_f64(yp.add(i));
            vst1q_f64(yp.add(i), vaddq_f64(yv, vmulq_f64(av, xv)));
        }
        for i in chunks * 2..n {
            y[i] += alpha * x[i];
        }
    }

    /// NEON row squared-norms.
    ///
    /// # Safety
    /// The CPU must support NEON; caller guarantees
    /// `data.len() >= out.len() * d`.
    // safety: row slices are in-bounds by the caller contract, asserted in
    // the safe dispatch wrapper.
    #[target_feature(enable = "neon")]
    pub unsafe fn sq_norms(data: &[f64], d: usize, out: &mut [f64]) {
        for (j, o) in out.iter_mut().enumerate() {
            let row = &data[j * d..j * d + d];
            // safety: NEON active for this whole fn; `dot` inlines here.
            *o = dot(row, row);
        }
    }

    /// NEON `matmul_bt` row microkernel.
    ///
    /// # Safety
    /// The CPU must support NEON; caller guarantees
    /// `b_data.len() >= out_row.len() * d`.
    // safety: row slices are in-bounds by the caller contract, asserted in
    // the safe dispatch wrapper.
    #[target_feature(enable = "neon")]
    pub unsafe fn matmul_bt_row(arow: &[f64], b_data: &[f64], d: usize, out_row: &mut [f64]) {
        for (j, o) in out_row.iter_mut().enumerate() {
            // safety: NEON active for this whole fn; `dot` inlines here.
            *o = dot(arow, &b_data[j * d..j * d + d]);
        }
    }

    /// NEON Gram-expansion distance row.
    ///
    /// # Safety
    /// The CPU must support NEON; caller guarantees
    /// `b_data.len() >= out_row.len() * d` and `bn.len() >= out_row.len()`.
    // safety: slice accesses are in-bounds by the caller contract, asserted
    // in the safe dispatch wrapper.
    #[target_feature(enable = "neon")]
    pub unsafe fn pairwise_row(
        arow: &[f64],
        an: f64,
        b_data: &[f64],
        d: usize,
        bn: &[f64],
        out_row: &mut [f64],
    ) {
        for (j, o) in out_row.iter_mut().enumerate() {
            let brow = &b_data[j * d..j * d + d];
            // safety: NEON active for this whole fn; `dot` inlines here.
            *o = (an + bn[j] - 2.0 * dot(arow, brow)).max(0.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Safe dispatch (availability-checked; falls back to scalar)
// ---------------------------------------------------------------------------

/// Backend-dispatched dot product. Falls back to the scalar mirror when the
/// requested backend is unavailable on this CPU, so passing any [`Backend`]
/// is always sound.
#[inline]
pub fn dot(backend: Backend, a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if avx2_available() => {
            // safety: avx2_available() just confirmed AVX2 via runtime CPU
            // detection (cached by std).
            unsafe { x86::dot(a, b) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if neon_available() => {
            // safety: neon_available() just confirmed NEON via runtime CPU
            // detection (cached by std).
            unsafe { arm::dot(a, b) }
        }
        _ => dot_scalar(a, b),
    }
}

/// Backend-dispatched `y ← y + alpha·x` (scalar fallback when unavailable).
#[inline]
pub fn axpy(backend: Backend, alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if avx2_available() => {
            // safety: avx2_available() just confirmed AVX2 via runtime CPU
            // detection.
            unsafe { x86::axpy(alpha, x, y) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if neon_available() => {
            // safety: neon_available() just confirmed NEON via runtime CPU
            // detection.
            unsafe { arm::axpy(alpha, x, y) }
        }
        _ => axpy_scalar(alpha, x, y),
    }
}

/// Backend-dispatched row squared-norms over a flat `rows × d` buffer.
#[inline]
pub fn sq_norms_into(backend: Backend, data: &[f64], d: usize, out: &mut [f64]) {
    assert!(data.len() >= out.len() * d, "sq_norms_into: short data");
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if avx2_available() => {
            // safety: AVX2 confirmed by runtime detection; the assert above
            // establishes the in-bounds caller contract.
            unsafe { x86::sq_norms(data, d, out) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if neon_available() => {
            // safety: NEON confirmed by runtime detection; the assert above
            // establishes the in-bounds caller contract.
            unsafe { arm::sq_norms(data, d, out) }
        }
        _ => sq_norms_scalar(data, d, out),
    }
}

/// Backend-dispatched `matmul_bt` row microkernel:
/// `out_row[j] = dot(arow, b_data[j·d .. j·d+d])`.
#[inline]
pub fn matmul_bt_row(backend: Backend, arow: &[f64], b_data: &[f64], d: usize, out_row: &mut [f64]) {
    assert!(b_data.len() >= out_row.len() * d, "matmul_bt_row: short b");
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if avx2_available() => {
            // safety: AVX2 confirmed by runtime detection; the assert above
            // establishes the in-bounds caller contract.
            unsafe { x86::matmul_bt_row(arow, b_data, d, out_row) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if neon_available() => {
            // safety: NEON confirmed by runtime detection; the assert above
            // establishes the in-bounds caller contract.
            unsafe { arm::matmul_bt_row(arow, b_data, d, out_row) }
        }
        _ => matmul_bt_row_scalar(arow, b_data, d, out_row),
    }
}

/// Backend-dispatched Gram-expansion distance row:
/// `out_row[j] = max(0, an + bn[j] − 2·dot(arow, b_row_j))`.
#[inline]
pub fn pairwise_row(
    backend: Backend,
    arow: &[f64],
    an: f64,
    b_data: &[f64],
    d: usize,
    bn: &[f64],
    out_row: &mut [f64],
) {
    assert!(b_data.len() >= out_row.len() * d, "pairwise_row: short b");
    assert!(bn.len() >= out_row.len(), "pairwise_row: short bn");
    match backend {
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 if avx2_available() => {
            // safety: AVX2 confirmed by runtime detection; the asserts above
            // establish the in-bounds caller contract.
            unsafe { x86::pairwise_row(arow, an, b_data, d, bn, out_row) }
        }
        #[cfg(target_arch = "aarch64")]
        Backend::Neon if neon_available() => {
            // safety: NEON confirmed by runtime detection; the asserts above
            // establish the in-bounds caller contract.
            unsafe { arm::pairwise_row(arow, an, b_data, d, bn, out_row) }
        }
        _ => pairwise_row_scalar(arow, an, b_data, d, bn, out_row),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(len: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut rng = lumen_util::Rng::new(seed);
        let a: Vec<f64> = (0..len).map(|_| rng.f64_range(-3.0, 3.0)).collect();
        let b: Vec<f64> = (0..len).map(|_| rng.f64_range(-3.0, 3.0)).collect();
        (a, b)
    }

    /// Remainder-lane coverage: lengths 0, 1, width−1, width, width+1 and
    /// other non-multiples of the width, dispatched vs the scalar mirror.
    /// On hosts with AVX2/NEON this pins bit-identity of the SIMD path; on
    /// scalar-only hosts it degenerates to scalar-vs-scalar (still a valid
    /// dispatch test).
    #[test]
    fn dot_bit_identical_across_backends_all_remainders() {
        let simd = super::super::detected_backend();
        for len in [0, 1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 257] {
            let (a, b) = vecs(len, 40 + len as u64);
            let scalar = dot(Backend::Scalar, &a, &b);
            let fast = dot(simd, &a, &b);
            assert_eq!(
                scalar.to_bits(),
                fast.to_bits(),
                "len {len}: scalar {scalar} vs {} {fast}",
                simd.name()
            );
        }
    }

    #[test]
    fn axpy_bit_identical_across_backends_all_remainders() {
        let simd = super::super::detected_backend();
        for len in [0, 1, 3, 4, 5, 7, 8, 9, 31, 100] {
            let (x, y0) = vecs(len, 80 + len as u64);
            let mut ys = y0.clone();
            let mut yf = y0.clone();
            axpy(Backend::Scalar, 1.7, &x, &mut ys);
            axpy(simd, 1.7, &x, &mut yf);
            for (s, f) in ys.iter().zip(&yf) {
                assert_eq!(s.to_bits(), f.to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn row_kernels_bit_identical_across_backends() {
        let simd = super::super::detected_backend();
        for d in [0, 1, 7, 8, 9, 33] {
            let rows = 5;
            let (arow, _) = vecs(d, 7 + d as u64);
            let (b_data, _) = vecs(rows * d, 9 + d as u64);
            let mut bn = vec![0.0; rows];
            sq_norms_into(Backend::Scalar, &b_data, d, &mut bn);
            let mut bn_simd = vec![0.0; rows];
            sq_norms_into(simd, &b_data, d, &mut bn_simd);
            assert_eq!(bn, bn_simd, "sq_norms d={d}");

            let an = dot(Backend::Scalar, &arow, &arow);
            let mut mm_s = vec![0.0; rows];
            let mut mm_f = vec![0.0; rows];
            matmul_bt_row(Backend::Scalar, &arow, &b_data, d, &mut mm_s);
            matmul_bt_row(simd, &arow, &b_data, d, &mut mm_f);
            assert_eq!(mm_s, mm_f, "matmul_bt_row d={d}");

            let mut pw_s = vec![0.0; rows];
            let mut pw_f = vec![0.0; rows];
            pairwise_row(Backend::Scalar, &arow, an, &b_data, d, &bn, &mut pw_s);
            pairwise_row(simd, &arow, an, &b_data, d, &bn, &mut pw_f);
            assert_eq!(pw_s, pw_f, "pairwise_row d={d}");
        }
    }

    #[test]
    fn dot_scalar_matches_naive_summation() {
        for len in [0, 1, 9, 64, 129] {
            let (a, b) = vecs(len, len as u64);
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got = dot_scalar(&a, &b);
            let scale = naive.abs().max(1.0);
            assert!(
                (got - naive).abs() <= 1e-12 * scale,
                "len {len}: {got} vs {naive}"
            );
        }
    }

    #[test]
    fn requesting_unavailable_backend_falls_back_to_scalar() {
        // On x86_64 the Neon request must be served by the scalar path (and
        // vice versa) — same bits, no UB. This is the soundness guarantee
        // that makes `Backend` a plain value rather than a capability.
        let (a, b) = vecs(37, 3);
        let want = dot(Backend::Scalar, &a, &b);
        #[cfg(not(target_arch = "aarch64"))]
        assert_eq!(dot(Backend::Neon, &a, &b).to_bits(), want.to_bits());
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(dot(Backend::Avx2, &a, &b).to_bits(), want.to_bits());
        #[cfg(target_arch = "x86_64")]
        assert_eq!(dot(Backend::Avx2, &a, &b).to_bits(), want.to_bits());
    }
}
