//! KitNET — Kitsune's ensemble of autoencoders (A06).
//!
//! Features are grouped into small clusters of correlated dimensions
//! ([`crate::cluster::cluster_features`]); each cluster gets its own small
//! autoencoder; the per-cluster reconstruction RMSEs feed one output
//! autoencoder whose own RMSE is the final anomaly score.

use crate::autoencoder::{Autoencoder, AutoencoderConfig};
use crate::cluster::cluster_features;
use crate::matrix::Matrix;
use crate::model::AnomalyDetector;
use crate::{MlError, MlResult};

/// KitNET hyperparameters.
#[derive(Debug, Clone)]
pub struct KitnetConfig {
    /// Maximum features per ensemble autoencoder (Kitsune's `m`, default 10).
    pub max_cluster: usize,
    /// Hidden-layer compression ratio for each autoencoder (hidden size =
    /// ceil(ratio × inputs), min 1). Kitsune uses 0.75 by default.
    pub compression: f64,
    /// Training epochs for every autoencoder.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for KitnetConfig {
    fn default() -> Self {
        KitnetConfig {
            max_cluster: 10,
            compression: 0.75,
            epochs: 40,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

/// A fitted KitNET ensemble.
pub struct Kitnet {
    /// Hyperparameters.
    pub config: KitnetConfig,
    clusters: Vec<Vec<usize>>,
    ensemble: Vec<Autoencoder>,
    output: Option<Autoencoder>,
}

impl Kitnet {
    /// Creates an unfitted ensemble.
    pub fn new(config: KitnetConfig) -> Kitnet {
        Kitnet {
            config,
            clusters: Vec::new(),
            ensemble: Vec::new(),
            output: None,
        }
    }

    /// Number of ensemble members after fitting.
    pub fn ensemble_size(&self) -> usize {
        self.ensemble.len()
    }

    fn ae_config(&self, inputs: usize, tag: u64) -> AutoencoderConfig {
        let hidden = ((inputs as f64 * self.config.compression).ceil() as usize).max(1);
        AutoencoderConfig {
            hidden: vec![hidden],
            epochs: self.config.epochs,
            learning_rate: self.config.learning_rate,
            momentum: 0.9,
            seed: self.config.seed.wrapping_add(tag),
        }
    }

    /// Per-cluster RMSE vector for one row.
    fn tail_scores(&self, row: &[f64]) -> Vec<f64> {
        self.clusters
            .iter()
            .zip(&self.ensemble)
            .map(|(cluster, ae)| {
                let sub: Vec<f64> = cluster.iter().map(|&c| row[c]).collect();
                ae.anomaly_score(&sub)
            })
            .collect()
    }

    /// Per-cluster RMSE matrix (`rows × ensemble_size`) for a whole batch:
    /// each member scores its feature slice with one batched forward pass.
    /// Column `j` equals [`Kitnet::tail_scores`] element `j` bit-for-bit.
    fn tail_matrix(&self, x: &Matrix) -> Matrix {
        let mut tails = Matrix::zeros(x.rows(), self.ensemble.len());
        for (j, (cluster, ae)) in self.clusters.iter().zip(&self.ensemble).enumerate() {
            let sub = x.select_cols(cluster);
            for (i, s) in ae.anomaly_scores(&sub).into_iter().enumerate() {
                tails.set(i, j, s);
            }
        }
        tails
    }
}

impl AnomalyDetector for Kitnet {
    fn fit_benign(&mut self, benign: &Matrix) -> MlResult<()> {
        if benign.rows() == 0 || benign.cols() == 0 {
            return Err(MlError::EmptyInput);
        }
        self.clusters = cluster_features(benign, self.config.max_cluster)?;

        // Train one autoencoder per feature cluster.
        self.ensemble.clear();
        for (i, cluster) in self.clusters.iter().enumerate() {
            let sub = benign.select_cols(cluster);
            let mut ae = Autoencoder::new(self.ae_config(cluster.len(), i as u64 + 1));
            ae.fit_benign(&sub)?;
            self.ensemble.push(ae);
        }

        // Train the output autoencoder on the ensemble's RMSE vectors
        // (batched: one whole-matrix forward per ensemble member).
        let tail_m = self.tail_matrix(benign);
        let mut out = Autoencoder::new(self.ae_config(self.clusters.len(), 0));
        out.fit_benign(&tail_m)?;
        self.output = Some(out);
        Ok(())
    }

    fn anomaly_score(&self, row: &[f64]) -> f64 {
        let Some(out) = &self.output else {
            return 0.0;
        };
        out.anomaly_score(&self.tail_scores(row))
    }

    /// Batched scoring: every ensemble member (and the output autoencoder)
    /// runs one whole-matrix forward pass instead of a per-row loop.
    fn anomaly_scores(&self, x: &Matrix) -> Vec<f64> {
        let Some(out) = &self.output else {
            return vec![0.0; x.rows()];
        };
        out.anomaly_scores(&self.tail_matrix(x))
    }

    fn name(&self) -> &'static str {
        "kitnet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_util::Rng;

    /// Benign rows with two correlated feature blocks.
    fn benign(seed: u64, n: usize) -> Matrix {
        let mut rng = Rng::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let a = rng.f64();
                let b = rng.f64();
                vec![
                    a,
                    a * 0.8 + rng.normal_with(0.0, 0.02),
                    a * 1.2 + rng.normal_with(0.0, 0.02),
                    b,
                    1.0 - b + rng.normal_with(0.0, 0.02),
                ]
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn anomalies_score_above_benign() {
        let x = benign(1, 300);
        let mut kit = Kitnet::new(KitnetConfig {
            max_cluster: 3,
            epochs: 30,
            ..KitnetConfig::default()
        });
        kit.fit_benign(&x).unwrap();
        // Benign-like probe follows the learned correlations.
        let benign_probe = [0.5, 0.4, 0.6, 0.5, 0.5];
        // Attack probe violates both correlation structures.
        let attack_probe = [0.9, 0.05, 0.05, 0.9, 0.9];
        let sb = kit.anomaly_score(&benign_probe);
        let sa = kit.anomaly_score(&attack_probe);
        assert!(sa > sb, "attack {sa} should exceed benign {sb}");
    }

    #[test]
    fn builds_multiple_ensemble_members() {
        let x = benign(2, 200);
        let mut kit = Kitnet::new(KitnetConfig {
            max_cluster: 3,
            epochs: 5,
            ..KitnetConfig::default()
        });
        kit.fit_benign(&x).unwrap();
        assert!(kit.ensemble_size() >= 2, "got {}", kit.ensemble_size());
    }

    #[test]
    fn cluster_cap_respected() {
        let x = benign(3, 200);
        let mut kit = Kitnet::new(KitnetConfig {
            max_cluster: 2,
            epochs: 2,
            ..KitnetConfig::default()
        });
        kit.fit_benign(&x).unwrap();
        assert!(kit.clusters.iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn batch_scores_match_row_scores_exactly() {
        let x = benign(4, 150);
        let mut kit = Kitnet::new(KitnetConfig {
            max_cluster: 3,
            epochs: 10,
            ..KitnetConfig::default()
        });
        kit.fit_benign(&x).unwrap();
        let probe = benign(5, 60);
        let batch = kit.anomaly_scores(&probe);
        for (i, row) in probe.rows_iter().enumerate() {
            assert_eq!(
                batch[i].to_bits(),
                kit.anomaly_score(row).to_bits(),
                "row {i} diverged"
            );
        }
    }

    #[test]
    fn unfitted_scores_zero() {
        let kit = Kitnet::new(KitnetConfig::default());
        assert_eq!(kit.anomaly_score(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn rejects_empty() {
        let mut kit = Kitnet::new(KitnetConfig::default());
        assert!(kit.fit_benign(&Matrix::zeros(0, 4)).is_err());
    }
}
