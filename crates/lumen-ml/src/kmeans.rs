//! k-means clustering (k-means++ initialization). Used to initialize GMMs.

use lumen_util::{par, Rng};

use crate::kernels::{self, KernelOp};
use crate::matrix::Matrix;
use crate::{MlError, MlResult};

/// k-means result: centroids and per-point assignments.
#[derive(Debug, Clone)]
pub struct KMeansFit {
    /// Cluster centroids, one row per cluster.
    pub centroids: Matrix,
    /// Cluster index per input row.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Rows processed per parallel work unit. Fixed (never derived from the
/// thread count) so the floating-point fold order — and hence the result —
/// is bit-identical at any thread count.
const BLOCK: usize = 512;

/// Runs k-means with k-means++ seeding at the process-default kernel
/// thread count.
pub fn kmeans(x: &Matrix, k: usize, max_iter: usize, rng: &mut Rng) -> MlResult<KMeansFit> {
    kmeans_t(x, k, max_iter, rng, 0)
}

/// Runs k-means with k-means++ seeding on an explicit worker count
/// (0 = process default).
pub fn kmeans_t(
    x: &Matrix,
    k: usize,
    max_iter: usize,
    rng: &mut Rng,
    threads: usize,
) -> MlResult<KMeansFit> {
    let threads = kernels::resolve_threads(threads);
    let n = x.rows();
    if n == 0 || k == 0 {
        return Err(MlError::EmptyInput);
    }
    let k = k.min(n);
    let d = x.cols();

    // k-means++ initialization.
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.range(0, n);
    centroids.row_mut(0).copy_from_slice(x.row(first));
    let mut min_d2: Vec<f64> = (0..n)
        .map(|i| sq_dist(x.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = min_d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.range(0, n)
        } else {
            let mut target = rng.f64() * total;
            let mut chosen = n - 1;
            for (i, &w) in min_d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(x.row(pick));
        for i in 0..n {
            let d2 = sq_dist(x.row(i), centroids.row(c));
            if d2 < min_d2[i] {
                min_d2[i] = d2;
            }
        }
    }

    let mut assignments = vec![0usize; n];
    for _ in 0..max_iter {
        // Cooperative deadline check: a supervised matrix task installs a
        // thread-current CancelToken; one relaxed load per sweep.
        if lumen_util::cancel::CancelToken::current_cancelled() {
            return Err(MlError::Cancelled);
        }
        // Fused assign + accumulate, one fixed-size row block per work
        // unit. Each block computes its distances through the Gram kernel
        // and returns block-local assignments, centroid partial sums, and
        // member counts; the fold below runs in block order, so the
        // summation tree never depends on the thread count.
        let sweep = kernels::timed(KernelOp::KmeansStep, || {
            par::par_blocks(n, BLOCK, threads, |s, e| {
                let idx: Vec<usize> = (s..e).collect();
                let rows = x.select_rows(&idx);
                // Kernel parallelism off: the block sweep is the parallel axis.
                let dists = kernels::pairwise_sq_dists(&rows, &centroids, 1).expect("dims match");
                let mut asn = Vec::with_capacity(e - s);
                let mut sums = Matrix::zeros(k, d);
                let mut counts = vec![0usize; k];
                let mut changed = false;
                for (j, drow) in dists.rows_iter().enumerate() {
                    let mut best = 0;
                    let mut best_d = f64::INFINITY;
                    for (c, &d2) in drow.iter().enumerate() {
                        if d2 < best_d {
                            best_d = d2;
                            best = c;
                        }
                    }
                    changed |= assignments[s + j] != best;
                    asn.push(best);
                    counts[best] += 1;
                    kernels::axpy(1.0, rows.row(j), sums.row_mut(best));
                }
                (asn, changed, sums, counts)
            })
        });
        let mut changed = false;
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for (bi, (asn, ch, bsums, bcounts)) in sweep.into_iter().enumerate() {
            let s = bi * BLOCK;
            assignments[s..s + asn.len()].copy_from_slice(&asn);
            changed |= ch;
            for c in 0..k {
                kernels::axpy(1.0, bsums.row(c), sums.row_mut(c));
                counts[c] += bcounts[c];
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let crow = sums.row(c).to_vec();
                let dest = centroids.row_mut(c);
                for (dst, v) in dest.iter_mut().zip(crow) {
                    *dst = v / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Exact (non-Gram) distances for the reported inertia: identical
    // points must yield an inertia of exactly zero.
    let inertia = par::par_blocks(n, BLOCK, threads, |s, e| {
        (s..e)
            .map(|i| sq_dist(x.row(i), centroids.row(assignments[i])))
            .sum::<f64>()
    })
    .into_iter()
    .sum();
    Ok(KMeansFit {
        centroids,
        assignments,
        inertia,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(seed: u64, n: usize) -> Matrix {
        let mut rng = Rng::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 10.0 };
                vec![rng.normal_with(c, 0.5), rng.normal_with(c, 0.5)]
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn finds_two_blobs() {
        let x = two_blobs(1, 200);
        let mut rng = Rng::new(2);
        let fit = kmeans(&x, 2, 50, &mut rng).unwrap();
        // Centroids near (0,0) and (10,10) in some order.
        let mut cs: Vec<f64> = (0..2).map(|c| fit.centroids.row(c)[0]).collect();
        cs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(cs[0].abs() < 1.0, "centroid {cs:?}");
        assert!((cs[1] - 10.0).abs() < 1.0, "centroid {cs:?}");
        // Points split evenly.
        let c0 = fit.assignments.iter().filter(|&&a| a == 0).count();
        assert_eq!(c0, 100);
    }

    #[test]
    fn k_clamped_to_n() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        let mut rng = Rng::new(3);
        let fit = kmeans(&x, 10, 10, &mut rng).unwrap();
        assert_eq!(fit.centroids.rows(), 2);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let x = two_blobs(4, 100);
        let i1 = kmeans(&x, 1, 50, &mut Rng::new(5)).unwrap().inertia;
        let i2 = kmeans(&x, 2, 50, &mut Rng::new(5)).unwrap().inertia;
        assert!(i2 < i1);
    }

    #[test]
    fn rejects_empty() {
        let x = Matrix::zeros(0, 2);
        assert!(kmeans(&x, 2, 10, &mut Rng::new(1)).is_err());
    }

    #[test]
    fn results_bit_identical_across_threads() {
        let x = two_blobs(8, 1100); // > 2 blocks
        let f1 = kmeans_t(&x, 4, 30, &mut Rng::new(9), 1).unwrap();
        for t in [2, 8] {
            let ft = kmeans_t(&x, 4, 30, &mut Rng::new(9), t).unwrap();
            assert_eq!(ft.assignments, f1.assignments);
            assert_eq!(ft.centroids, f1.centroids);
            assert_eq!(ft.inertia.to_bits(), f1.inertia.to_bits());
        }
    }

    #[test]
    fn identical_points_converge() {
        let x = Matrix::from_rows(vec![vec![3.0, 3.0]; 10]).unwrap();
        let fit = kmeans(&x, 3, 10, &mut Rng::new(7)).unwrap();
        assert!(fit.inertia < 1e-12);
    }
}
