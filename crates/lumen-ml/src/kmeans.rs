//! k-means clustering (k-means++ initialization). Used to initialize GMMs.

use lumen_util::Rng;

use crate::matrix::Matrix;
use crate::{MlError, MlResult};

/// k-means result: centroids and per-point assignments.
#[derive(Debug, Clone)]
pub struct KMeansFit {
    /// Cluster centroids, one row per cluster.
    pub centroids: Matrix,
    /// Cluster index per input row.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means with k-means++ seeding.
pub fn kmeans(x: &Matrix, k: usize, max_iter: usize, rng: &mut Rng) -> MlResult<KMeansFit> {
    let n = x.rows();
    if n == 0 || k == 0 {
        return Err(MlError::EmptyInput);
    }
    let k = k.min(n);
    let d = x.cols();

    // k-means++ initialization.
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.range(0, n);
    centroids.row_mut(0).copy_from_slice(x.row(first));
    let mut min_d2: Vec<f64> = (0..n)
        .map(|i| sq_dist(x.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = min_d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.range(0, n)
        } else {
            let mut target = rng.f64() * total;
            let mut chosen = n - 1;
            for (i, &w) in min_d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(x.row(pick));
        for i in 0..n {
            let d2 = sq_dist(x.row(i), centroids.row(c));
            if d2 < min_d2[i] {
                min_d2[i] = d2;
            }
        }
    }

    let mut assignments = vec![0usize; n];
    for _ in 0..max_iter {
        // Assign.
        let mut changed = false;
        for i in 0..n {
            let row = x.row(i);
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d2 = sq_dist(row, centroids.row(c));
                if d2 < best_d {
                    best_d = d2;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            let row = x.row(i);
            let srow = sums.row_mut(c);
            for (s, &v) in srow.iter_mut().zip(row) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let crow = sums.row(c).to_vec();
                let dest = centroids.row_mut(c);
                for (dst, v) in dest.iter_mut().zip(crow) {
                    *dst = v / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = (0..n)
        .map(|i| sq_dist(x.row(i), centroids.row(assignments[i])))
        .sum();
    Ok(KMeansFit {
        centroids,
        assignments,
        inertia,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(seed: u64, n: usize) -> Matrix {
        let mut rng = Rng::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let c = if i % 2 == 0 { 0.0 } else { 10.0 };
                vec![rng.normal_with(c, 0.5), rng.normal_with(c, 0.5)]
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn finds_two_blobs() {
        let x = two_blobs(1, 200);
        let mut rng = Rng::new(2);
        let fit = kmeans(&x, 2, 50, &mut rng).unwrap();
        // Centroids near (0,0) and (10,10) in some order.
        let mut cs: Vec<f64> = (0..2).map(|c| fit.centroids.row(c)[0]).collect();
        cs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(cs[0].abs() < 1.0, "centroid {cs:?}");
        assert!((cs[1] - 10.0).abs() < 1.0, "centroid {cs:?}");
        // Points split evenly.
        let c0 = fit.assignments.iter().filter(|&&a| a == 0).count();
        assert_eq!(c0, 100);
    }

    #[test]
    fn k_clamped_to_n() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        let mut rng = Rng::new(3);
        let fit = kmeans(&x, 10, 10, &mut rng).unwrap();
        assert_eq!(fit.centroids.rows(), 2);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let x = two_blobs(4, 100);
        let i1 = kmeans(&x, 1, 50, &mut Rng::new(5)).unwrap().inertia;
        let i2 = kmeans(&x, 2, 50, &mut Rng::new(5)).unwrap().inertia;
        assert!(i2 < i1);
    }

    #[test]
    fn rejects_empty() {
        let x = Matrix::zeros(0, 2);
        assert!(kmeans(&x, 2, 10, &mut Rng::new(1)).is_err());
    }

    #[test]
    fn identical_points_converge() {
        let x = Matrix::from_rows(vec![vec![3.0, 3.0]; 10]).unwrap();
        let fit = kmeans(&x, 3, 10, &mut Rng::new(7)).unwrap();
        assert!(fit.inertia < 1e-12);
    }
}
