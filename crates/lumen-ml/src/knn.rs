//! k-nearest-neighbours classification (part of the ML-DDoS ensemble, A00).

use crate::dataset::Dataset;
use crate::kernels::{self, KernelOp};
use crate::matrix::Matrix;
use crate::model::Classifier;
use crate::preprocess::{StandardScaler, Transform};
use crate::{MlError, MlResult};

use lumen_util::par;

/// k-NN hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct KnnConfig {
    /// Neighbours consulted per query.
    pub k: usize,
    /// Cap on stored training instances (uniformly strided subsample);
    /// keeps inference tractable on large captures.
    pub max_train: usize,
    /// Worker threads for batch scoring (0 = process default).
    pub threads: usize,
}

impl Default for KnnConfig {
    fn default() -> Self {
        KnnConfig {
            k: 5,
            max_train: 4000,
            threads: 0,
        }
    }
}

/// Brute-force Euclidean k-NN over standardized features.
pub struct Knn {
    /// Hyperparameters.
    pub config: KnnConfig,
    scaler: StandardScaler,
    train_x: Option<Matrix>,
    train_y: Vec<u8>,
}

impl Knn {
    /// Creates an unfitted model.
    pub fn new(config: KnnConfig) -> Knn {
        Knn {
            config,
            scaler: StandardScaler::default(),
            train_x: None,
            train_y: Vec::new(),
        }
    }

    /// Stored training instances after fitting.
    pub fn stored(&self) -> usize {
        self.train_y.len()
    }

    /// Scores a batch of *already standardized* query rows: pairwise
    /// squared distances to the training set via the Gram kernel, then
    /// `select_nth_unstable_by` picks the k nearest of each row in O(n)
    /// instead of a full sort.
    ///
    /// Queries are processed in fixed-size row blocks on up to the
    /// configured worker count — each row is scored independently, so the
    /// result is bit-identical at any thread count, and the distance
    /// buffer stays bounded at `block × stored` instead of
    /// `queries × stored`.
    fn scores_scaled(&self, q: &Matrix) -> Vec<f64> {
        let Some(train) = &self.train_x else {
            return vec![0.0; q.rows()];
        };
        let k = self.config.k.min(self.train_y.len());
        if k == 0 {
            return vec![0.0; q.rows()];
        }
        const BLOCK: usize = 256;
        let threads = kernels::resolve_threads(self.config.threads);
        let blocks = par::par_blocks(q.rows(), BLOCK, threads, |start, end| {
            let probe = q.select_rows(&(start..end).collect::<Vec<_>>());
            // Kernel parallelism off: the block sweep is the parallel axis.
            let dists = kernels::pairwise_sq_dists(&probe, train, 1).expect("cols match train");
            let mut scores = Vec::with_capacity(end - start);
            let mut pairs: Vec<(f64, u8)> = Vec::with_capacity(self.train_y.len());
            for row in dists.rows_iter() {
                pairs.clear();
                pairs.extend(row.iter().copied().zip(self.train_y.iter().copied()));
                if k < pairs.len() {
                    pairs.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
                }
                let pos = pairs[..k].iter().filter(|(_, l)| *l == 1).count();
                scores.push(pos as f64 / k as f64);
            }
            scores
        });
        blocks.into_iter().flatten().collect()
    }
}

impl Classifier for Knn {
    fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        if data.is_empty() {
            return Err(MlError::EmptyInput);
        }
        if self.config.k == 0 {
            return Err(MlError::BadConfig("k must be positive".into()));
        }
        // Deterministic strided subsample when over the cap.
        let n = data.len();
        let data = if n > self.config.max_train {
            let stride = n as f64 / self.config.max_train as f64;
            let idx: Vec<usize> = (0..self.config.max_train)
                .map(|i| ((i as f64) * stride) as usize)
                .collect();
            data.select(&idx)
        } else {
            data.clone()
        };
        let x = self.scaler.fit_transform(&data.x)?;
        self.train_x = Some(x);
        self.train_y = data.y;
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> u8 {
        u8::from(self.score_row(row) >= 0.5)
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        let probe = Matrix::from_rows(vec![row.to_vec()]).expect("single row");
        self.scores(&probe)[0]
    }

    fn predict(&self, x: &Matrix) -> Vec<u8> {
        self.scores(x)
            .into_iter()
            .map(|s| u8::from(s >= 0.5))
            .collect()
    }

    fn scores(&self, x: &Matrix) -> Vec<f64> {
        kernels::timed(KernelOp::KnnPredict, || {
            let q = self.scaler.transform(x);
            self.scores_scaled(&q)
        })
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_util::Rng;

    fn blobs(seed: u64, n: usize) -> Dataset {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let label = rng.chance(0.5);
            let c = if label { 5.0 } else { 0.0 };
            rows.push(vec![rng.normal_with(c, 1.0), rng.normal_with(c, 1.0)]);
            y.push(u8::from(label));
        }
        Dataset::new(Matrix::from_rows(rows).unwrap(), y).unwrap()
    }

    #[test]
    fn classifies_blobs() {
        let train = blobs(1, 200);
        let test = blobs(2, 100);
        let mut knn = Knn::new(KnnConfig::default());
        knn.fit(&train).unwrap();
        let preds = knn.predict(&test.x);
        let acc = preds.iter().zip(&test.y).filter(|(p, t)| p == t).count() as f64 / 100.0;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn k1_memorizes_training_points() {
        let train = blobs(3, 50);
        let mut knn = Knn::new(KnnConfig {
            k: 1,
            ..KnnConfig::default()
        });
        knn.fit(&train).unwrap();
        assert_eq!(knn.predict(&train.x), train.y);
    }

    #[test]
    fn subsampling_caps_memory() {
        let train = blobs(4, 500);
        let mut knn = Knn::new(KnnConfig {
            k: 3,
            max_train: 100,
            ..KnnConfig::default()
        });
        knn.fit(&train).unwrap();
        assert_eq!(knn.stored(), 100);
        // Still classifies well.
        let test = blobs(5, 100);
        let acc = knn
            .predict(&test.x)
            .iter()
            .zip(&test.y)
            .filter(|(p, t)| p == t)
            .count() as f64
            / 100.0;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn score_is_neighbour_fraction() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![0.1], vec![0.2], vec![10.0]]).unwrap();
        let data = Dataset::new(x, vec![1, 1, 0, 0]).unwrap();
        let mut knn = Knn::new(KnnConfig {
            k: 3,
            ..KnnConfig::default()
        });
        knn.fit(&data).unwrap();
        // Neighbours of 0.05: the three points near zero -> 2/3 positive.
        assert!((knn.score_row(&[0.05]) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_k_rejected() {
        let data = blobs(6, 10);
        let mut knn = Knn::new(KnnConfig {
            k: 0,
            ..KnnConfig::default()
        });
        assert!(matches!(knn.fit(&data), Err(MlError::BadConfig(_))));
    }
}
