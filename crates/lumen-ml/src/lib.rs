//! From-scratch machine learning for Lumen.
//!
//! Every model family the surveyed IDS literature uses is implemented here
//! over a small dense-matrix core — no external ML dependencies:
//!
//! * supervised classifiers ([`Classifier`]): decision tree, random forest,
//!   Gaussian naive Bayes, k-NN, logistic regression, linear SVM, and
//!   majority-vote ensembles;
//! * anomaly detectors ([`AnomalyDetector`], trained on benign traffic
//!   only): one-class SVM, Gaussian mixture models, MLP autoencoders, the
//!   KitNET ensemble-of-autoencoders, and Nystroem-approximated kernel
//!   variants;
//! * preprocessing: standard/min-max/robust scalers, correlation filtering,
//!   PCA;
//! * evaluation: precision/recall/F1/accuracy, ROC-AUC, stratified
//!   train/test splits and k-fold cross-validation;
//! * model selection: a grid-search "autoML-lite" used by nPrint (A01–A04)
//!   and by Lumen's algorithm-synthesis search (AM01–AM03).

// Numeric kernels (EM loops, k-means, SGD, covariance accumulation) read
// better with explicit indices than with iterator chains; silence the
// style lint for the whole crate.
#![allow(clippy::needless_range_loop)]
// `deny`, not `forbid`: the SIMD kernel module (`kernels::simd`) carries the
// crate's single `#![allow(unsafe_code)]` carve-out for `std::arch`
// intrinsics. Every other module stays unsafe-free, and CI enforces the
// carve-out with `scripts/check_unsafe_audit.sh`.
#![deny(unsafe_code)]

pub mod autoencoder;
pub mod bayes;
pub mod cluster;
pub mod contracts;
pub mod dataset;
pub mod drift;
pub mod ensemble;
pub mod forest;
pub mod gmm;
pub mod kernels;
pub mod kitnet;
pub mod kmeans;
pub mod knn;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod model;
pub mod nystroem;
pub mod ocsvm;
pub mod preprocess;
pub mod search;
pub mod tree;

pub use contracts::{shape_contract, ShapeContract};
pub use dataset::{kfold, train_test_split, Dataset};
pub use drift::{DriftConfig, DriftEvent, DriftMonitor, DriftTrigger};
pub use matrix::Matrix;
pub use metrics::{confusion, roc_auc, Confusion};
pub use model::{AnomalyDetector, AnyModel, Classifier, Pretrained};

/// Errors produced by the ML substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MlError {
    /// Inputs have incompatible shapes.
    DimensionMismatch { expected: usize, got: usize },
    /// Training data is empty or has no usable variation.
    EmptyInput,
    /// Model used before `fit`.
    NotFitted,
    /// Numerical failure (singular matrix, non-convergence, ...).
    Degenerate(String),
    /// Invalid hyperparameter.
    BadConfig(String),
    /// Training was cancelled by a cooperative [`lumen_util::cancel::CancelToken`]
    /// (deadline expired or explicit cancel) before it converged.
    Cancelled,
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            MlError::EmptyInput => write!(f, "empty or degenerate input"),
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::Degenerate(why) => write!(f, "numerical failure: {why}"),
            MlError::BadConfig(why) => write!(f, "bad configuration: {why}"),
            MlError::Cancelled => write!(f, "training cancelled (deadline or explicit cancel)"),
        }
    }
}

impl std::error::Error for MlError {}

/// Result alias for this crate.
pub type MlResult<T> = std::result::Result<T, MlError>;
