//! Linear models trained by mini-batch SGD: logistic regression and a
//! hinge-loss linear SVM (the SVM member of the ML-DDoS ensemble, A00).

use lumen_util::{CancelToken, Rng};

use crate::dataset::Dataset;
use crate::kernels::{self, KernelOp};
use crate::matrix::Matrix;
use crate::model::Classifier;
use crate::preprocess::{StandardScaler, Transform};
use crate::{MlError, MlResult};

/// Shared SGD hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Full passes over the training data.
    pub epochs: usize,
    /// Initial learning rate (decays as 1/(1 + t·decay)).
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Seed for shuffling.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            epochs: 30,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 0,
        }
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Batched decision scores for a linear model: one `matmul_bt` against the
/// weight row, then `sigmoid(bias + z)` per element. The row paths compute
/// `sigmoid(bias + kernels::dot(row, w))` — the same expression, so batch
/// and row scores agree bit-for-bit.
fn batch_scores(scaled: &Matrix, weights: &[f64], bias: f64) -> Vec<f64> {
    let w = Matrix::from_rows(vec![weights.to_vec()]).expect("weight row");
    kernels::timed(KernelOp::LinearScore, || {
        let z = kernels::matmul_bt(scaled, &w, kernels::resolve_threads(0))
            .expect("feature width matches training width");
        z.as_slice().iter().map(|&v| sigmoid(bias + v)).collect()
    })
}

/// Logistic regression over standardized features.
#[derive(Clone)]
pub struct LogisticRegression {
    /// Hyperparameters.
    pub config: SgdConfig,
    scaler: StandardScaler,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LogisticRegression {
    /// Creates an unfitted model.
    pub fn new(config: SgdConfig) -> LogisticRegression {
        LogisticRegression {
            config,
            scaler: StandardScaler::default(),
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        if data.is_empty() {
            return Err(MlError::EmptyInput);
        }
        let x = self.scaler.fit_transform(&data.x)?;
        let d = x.cols();
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        let mut rng = Rng::new(self.config.seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut t = 0.0;
        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let row = x.row(i);
                let z = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, w)| a * w)
                        .sum::<f64>();
                let err = sigmoid(z) - f64::from(data.y[i]);
                let lr = self.config.learning_rate / (1.0 + 0.01 * t);
                for (w, &a) in self.weights.iter_mut().zip(row) {
                    *w -= lr * (err * a + self.config.l2 * *w);
                }
                self.bias -= lr * err;
                t += 1.0;
            }
        }
        self.fitted = true;
        Ok(())
    }

    /// Warm start: continues SGD from the current weights on new data.
    ///
    /// The scaler is *not* refitted — the model keeps its training-time
    /// feature normalization so old and new weights live on the same
    /// scale, and a schema change surfaces as `DimensionMismatch` instead
    /// of silently relearning a different space. The learning-rate
    /// schedule restarts (a warm restart in the SGD sense), and the
    /// epoch loop polls the thread's current [`CancelToken`] so a
    /// budgeted or draining retrain stage can abort mid-fit.
    fn fit_incremental(&mut self, data: &Dataset) -> MlResult<()> {
        if data.is_empty() {
            return Err(MlError::EmptyInput);
        }
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if data.x.cols() != self.weights.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.weights.len(),
                got: data.x.cols(),
            });
        }
        let x = self.scaler.transform(&data.x);
        let mut rng = Rng::new(self.config.seed ^ 0xA5A5_5A5A_A5A5_5A5A);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut t = 0.0;
        for _ in 0..self.config.epochs {
            if CancelToken::current_cancelled() {
                return Err(MlError::Cancelled);
            }
            rng.shuffle(&mut order);
            for &i in &order {
                let row = x.row(i);
                let z = self.bias
                    + row
                        .iter()
                        .zip(&self.weights)
                        .map(|(a, w)| a * w)
                        .sum::<f64>();
                let err = sigmoid(z) - f64::from(data.y[i]);
                let lr = self.config.learning_rate / (1.0 + 0.01 * t);
                for (w, &a) in self.weights.iter_mut().zip(row) {
                    *w -= lr * (err * a + self.config.l2 * *w);
                }
                self.bias -= lr * err;
                t += 1.0;
            }
        }
        Ok(())
    }

    fn snapshot(&self) -> Option<Box<dyn Classifier>> {
        Some(Box::new(self.clone()))
    }

    fn predict_row(&self, row: &[f64]) -> u8 {
        u8::from(self.score_row(row) >= 0.5)
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        let probe = Matrix::from_rows(vec![row.to_vec()]).expect("row");
        let scaled = self.scaler.transform(&probe);
        sigmoid(self.bias + kernels::dot(scaled.row(0), &self.weights))
    }

    /// Batched scoring: scale once, then a single matrix–vector product.
    fn scores(&self, x: &Matrix) -> Vec<f64> {
        if !self.fitted {
            return vec![0.0; x.rows()];
        }
        let scaled = self.scaler.transform(x);
        batch_scores(&scaled, &self.weights, self.bias)
    }

    fn predict(&self, x: &Matrix) -> Vec<u8> {
        self.scores(x).iter().map(|&s| u8::from(s >= 0.5)).collect()
    }

    fn name(&self) -> &'static str {
        "logistic-regression"
    }
}

/// Linear SVM trained with hinge loss; scores are logistic-squashed margins.
#[derive(Clone)]
pub struct LinearSvm {
    /// Hyperparameters.
    pub config: SgdConfig,
    scaler: StandardScaler,
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LinearSvm {
    /// Creates an unfitted model.
    pub fn new(config: SgdConfig) -> LinearSvm {
        LinearSvm {
            config,
            scaler: StandardScaler::default(),
            weights: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }

    /// Raw margin for a (scaled) feature row.
    fn margin(&self, scaled: &[f64]) -> f64 {
        self.bias + kernels::dot(scaled, &self.weights)
    }
}

impl Classifier for LinearSvm {
    fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        if data.is_empty() {
            return Err(MlError::EmptyInput);
        }
        let x = self.scaler.fit_transform(&data.x)?;
        self.weights = vec![0.0; x.cols()];
        self.bias = 0.0;
        let mut rng = Rng::new(self.config.seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut t = 0.0;
        for _ in 0..self.config.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let row = x.row(i);
                let y = if data.y[i] == 1 { 1.0 } else { -1.0 };
                let lr = self.config.learning_rate / (1.0 + 0.01 * t);
                let m = self.margin(row);
                if y * m < 1.0 {
                    for (w, &a) in self.weights.iter_mut().zip(row) {
                        *w += lr * (y * a - self.config.l2 * *w);
                    }
                    self.bias += lr * y;
                } else {
                    for w in self.weights.iter_mut() {
                        *w -= lr * self.config.l2 * *w;
                    }
                }
                t += 1.0;
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn snapshot(&self) -> Option<Box<dyn Classifier>> {
        Some(Box::new(self.clone()))
    }

    fn predict_row(&self, row: &[f64]) -> u8 {
        u8::from(self.score_row(row) >= 0.5)
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        let probe = Matrix::from_rows(vec![row.to_vec()]).expect("row");
        let scaled = self.scaler.transform(&probe);
        sigmoid(self.margin(scaled.row(0)))
    }

    /// Batched scoring: scale once, then a single matrix–vector product.
    fn scores(&self, x: &Matrix) -> Vec<f64> {
        if !self.fitted {
            return vec![0.0; x.rows()];
        }
        let scaled = self.scaler.transform(x);
        batch_scores(&scaled, &self.weights, self.bias)
    }

    fn predict(&self, x: &Matrix) -> Vec<u8> {
        self.scores(x).iter().map(|&s| u8::from(s >= 0.5)).collect()
    }

    fn name(&self) -> &'static str {
        "linear-svm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn linear_problem(seed: u64, n: usize) -> Dataset {
        // y = 1 iff 2*x0 - x1 > 1, with noise-free margin.
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.f64_range(-3.0, 3.0);
            let b = rng.f64_range(-3.0, 3.0);
            let m = 2.0 * a - b - 1.0;
            if m.abs() < 0.2 {
                continue; // leave a margin
            }
            rows.push(vec![a, b]);
            y.push(u8::from(m > 0.0));
        }
        Dataset::new(Matrix::from_rows(rows).unwrap(), y).unwrap()
    }

    fn accuracy(preds: &[u8], truth: &[u8]) -> f64 {
        preds.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / truth.len() as f64
    }

    #[test]
    fn logreg_learns_linear_boundary() {
        let train = linear_problem(1, 400);
        let test = linear_problem(2, 200);
        let mut m = LogisticRegression::new(SgdConfig::default());
        m.fit(&train).unwrap();
        assert!(accuracy(&m.predict(&test.x), &test.y) > 0.95);
    }

    #[test]
    fn svm_learns_linear_boundary() {
        let train = linear_problem(3, 400);
        let test = linear_problem(4, 200);
        let mut m = LinearSvm::new(SgdConfig::default());
        m.fit(&train).unwrap();
        assert!(accuracy(&m.predict(&test.x), &test.y) > 0.95);
    }

    #[test]
    fn logreg_scores_are_probabilities() {
        let train = linear_problem(5, 200);
        let mut m = LogisticRegression::new(SgdConfig::default());
        m.fit(&train).unwrap();
        for row in train.x.rows_iter() {
            let s = m.score_row(row);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let train = linear_problem(6, 100);
        let mut a = LogisticRegression::new(SgdConfig::default());
        let mut b = LogisticRegression::new(SgdConfig::default());
        a.fit(&train).unwrap();
        b.fit(&train).unwrap();
        assert_eq!(a.scores(&train.x), b.scores(&train.x));
    }

    #[test]
    fn unfitted_scores_zero() {
        let m = LinearSvm::new(SgdConfig::default());
        assert_eq!(m.score_row(&[1.0, 2.0]), 0.0);
    }

    #[test]
    fn batch_scores_match_row_scores_exactly() {
        let train = linear_problem(7, 300);
        let probe = linear_problem(8, 120);
        let mut lr = LogisticRegression::new(SgdConfig::default());
        lr.fit(&train).unwrap();
        let mut svm = LinearSvm::new(SgdConfig::default());
        svm.fit(&train).unwrap();
        for m in [&lr as &dyn Classifier, &svm as &dyn Classifier] {
            let batch = m.scores(&probe.x);
            let preds = m.predict(&probe.x);
            for (i, row) in probe.x.rows_iter().enumerate() {
                assert_eq!(
                    batch[i].to_bits(),
                    m.score_row(row).to_bits(),
                    "{} row {i} diverged",
                    m.name()
                );
                assert_eq!(preds[i], m.predict_row(row));
            }
        }
    }

    #[test]
    fn rejects_empty() {
        let data = Dataset::new(Matrix::zeros(0, 2), vec![]).unwrap();
        assert!(LogisticRegression::new(SgdConfig::default())
            .fit(&data)
            .is_err());
        assert!(LinearSvm::new(SgdConfig::default()).fit(&data).is_err());
    }

    /// The satellite contract: warm-starting on *unchanged* data is
    /// equivalent to the cold fit — same decision boundary at prediction
    /// level, no accuracy loss — because the extra SGD passes only polish
    /// an already-converged optimum.
    #[test]
    fn warm_start_on_unchanged_data_matches_cold_fit() {
        let train = linear_problem(11, 400);
        let test = linear_problem(12, 200);

        let mut cold = LogisticRegression::new(SgdConfig::default());
        cold.fit(&train).unwrap();

        let mut warm = LogisticRegression::new(SgdConfig::default());
        warm.fit(&train).unwrap();
        warm.fit_incremental(&train).unwrap();

        let cold_acc = accuracy(&cold.predict(&test.x), &test.y);
        let warm_acc = accuracy(&warm.predict(&test.x), &test.y);
        assert!(cold_acc > 0.95 && warm_acc > 0.95, "cold {cold_acc} warm {warm_acc}");
        assert!(warm_acc >= cold_acc - 0.01, "warm start must not degrade: cold {cold_acc} warm {warm_acc}");
        let agree = accuracy(&warm.predict(&test.x), &cold.predict(&test.x));
        assert!(agree >= 0.99, "warm and cold boundaries diverged: agreement {agree}");
    }

    /// Warm start actually adapts: after the label relationship flips
    /// (simulated drift), an incremental pass moves the boundary to the
    /// new world.
    #[test]
    fn warm_start_adapts_to_flipped_labels() {
        let train = linear_problem(13, 400);
        let mut m = LogisticRegression::new(SgdConfig::default());
        m.fit(&train).unwrap();

        let flipped = Dataset::new(
            train.x.clone(),
            train.y.iter().map(|&y| 1 - y).collect(),
        )
        .unwrap();
        m.fit_incremental(&flipped).unwrap();
        let acc_on_flipped = accuracy(&m.predict(&flipped.x), &flipped.y);
        assert!(acc_on_flipped > 0.95, "adapted accuracy {acc_on_flipped}");
    }

    #[test]
    fn fit_incremental_guards_state_and_schema() {
        let train = linear_problem(14, 200);
        // Never fitted: warm start has no state to start from.
        let mut unfitted = LogisticRegression::new(SgdConfig::default());
        assert_eq!(unfitted.fit_incremental(&train), Err(MlError::NotFitted));
        // Width change is a schema change, not drift.
        let mut m = LogisticRegression::new(SgdConfig::default());
        m.fit(&train).unwrap();
        let wide =
            Dataset::new(Matrix::from_rows(vec![vec![1.0, 2.0, 3.0]]).unwrap(), vec![1]).unwrap();
        assert_eq!(
            m.fit_incremental(&wide),
            Err(MlError::DimensionMismatch { expected: 2, got: 3 })
        );
    }

    /// A cancelled thread-current token aborts the warm start between
    /// epochs — the hook the budgeted serve retrain stage relies on.
    #[test]
    fn fit_incremental_honors_the_current_cancel_token() {
        let train = linear_problem(15, 100);
        let mut m = LogisticRegression::new(SgdConfig::default());
        m.fit(&train).unwrap();
        let before = m.scores(&train.x);
        let token = CancelToken::unbounded();
        token.cancel();
        let _guard = token.set_current();
        assert_eq!(m.fit_incremental(&train), Err(MlError::Cancelled));
        assert_eq!(m.scores(&train.x), before, "aborted before touching weights");
    }

    #[test]
    fn snapshot_clones_fitted_state() {
        let train = linear_problem(16, 200);
        let mut m = LogisticRegression::new(SgdConfig::default());
        m.fit(&train).unwrap();
        let snap = m.snapshot().expect("linear models snapshot");
        assert_eq!(snap.name(), "logistic-regression");
        assert_eq!(snap.predict(&train.x), m.predict(&train.x));
        // Mutating the snapshot leaves the original untouched.
        let before = m.scores(&train.x);
        let mut snap = snap;
        snap.fit(&train).unwrap();
        assert_eq!(m.scores(&train.x), before);
    }
}
