//! A small dense row-major matrix — the only linear algebra Lumen needs.

use crate::{MlError, MlResult};

/// Dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from nested rows; every row must have the same length.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> MlResult<Matrix> {
        let n = rows.len();
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n * cols);
        for r in &rows {
            if r.len() != cols {
                return Err(MlError::DimensionMismatch {
                    expected: cols,
                    got: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: n,
            cols,
            data,
        })
    }

    /// Builds from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> MlResult<Matrix> {
        if data.len() != rows * cols {
            return Err(MlError::DimensionMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Iterator over rows.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies column `c` out.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Flat data access.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data access (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Selects a subset of rows (by index, repeats allowed — bootstrap).
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Selects a subset of columns.
    pub fn select_cols(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, idx.len());
        for r in 0..self.rows {
            for (j, &c) in idx.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Horizontally concatenates two matrices with equal row counts.
    pub fn hcat(&self, other: &Matrix) -> MlResult<Matrix> {
        if self.rows != other.rows {
            return Err(MlError::DimensionMismatch {
                expected: self.rows,
                got: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Vertically concatenates two matrices with equal column counts.
    pub fn vcat(&self, other: &Matrix) -> MlResult<Matrix> {
        if self.cols != other.cols {
            return Err(MlError::DimensionMismatch {
                expected: self.cols,
                got: other.cols,
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Transpose (cache-blocked, via [`crate::kernels::transpose`]).
    pub fn transpose(&self) -> Matrix {
        crate::kernels::transpose(self)
    }

    /// Matrix product `self × other`, delegated to the transpose-packed
    /// kernel ([`crate::kernels::matmul`]) at the process-default thread
    /// count. Results are bit-identical at any thread count.
    pub fn matmul(&self, other: &Matrix) -> MlResult<Matrix> {
        crate::kernels::matmul(self, other, crate::kernels::resolve_threads(0))
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.cols];
        if self.rows == 0 {
            return m;
        }
        for row in self.rows_iter() {
            for (c, &v) in row.iter().enumerate() {
                m[c] += v;
            }
        }
        for v in &mut m {
            *v /= self.rows as f64;
        }
        m
    }

    /// Per-column population standard deviations.
    pub fn col_stds(&self) -> Vec<f64> {
        let means = self.col_means();
        let mut s = vec![0.0; self.cols];
        if self.rows == 0 {
            return s;
        }
        for row in self.rows_iter() {
            for (c, &v) in row.iter().enumerate() {
                let d = v - means[c];
                s[c] += d * d;
            }
        }
        for v in &mut s {
            *v = (*v / self.rows as f64).sqrt();
        }
        s
    }

    /// Symmetric eigendecomposition by cyclic Jacobi rotations.
    ///
    /// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
    /// eigenvector `i` is column `i` of the returned matrix. The input must
    /// be square and (numerically) symmetric.
    pub fn eigh_symmetric(&self) -> MlResult<(Vec<f64>, Matrix)> {
        if self.rows != self.cols {
            return Err(MlError::DimensionMismatch {
                expected: self.rows,
                got: self.cols,
            });
        }
        let n = self.rows;
        if n == 0 {
            return Err(MlError::EmptyInput);
        }
        let mut a = self.clone();
        let mut v = Matrix::identity(n);

        for _sweep in 0..100 {
            // Off-diagonal Frobenius norm.
            let mut off = 0.0;
            for r in 0..n {
                for c in (r + 1)..n {
                    off += a.get(r, c) * a.get(r, c);
                }
            }
            if off.sqrt() < 1e-12 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() < 1e-15 {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Rotate rows/cols p and q of A.
                    for k in 0..n {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                    for k in 0..n {
                        let apk = a.get(p, k);
                        let aqk = a.get(q, k);
                        a.set(p, k, c * apk - s * aqk);
                        a.set(q, k, s * apk + c * aqk);
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }

        let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a.get(i, i), i)).collect();
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).unwrap_or(std::cmp::Ordering::Equal));
        let eigenvalues: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_c, &(_, old_c)) in pairs.iter().enumerate() {
            for r in 0..n {
                vectors.set(r, new_c, v.get(r, old_c));
            }
        }
        Ok((eigenvalues, vectors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_access() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(vec![vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn select_rows_with_repeats() {
        let a = Matrix::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let s = a.select_rows(&[2, 2, 0]);
        assert_eq!(s.col(0), vec![3.0, 3.0, 1.0]);
    }

    #[test]
    fn select_cols_subset() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let s = a.select_cols(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn hcat_vcat() {
        let a = Matrix::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        let b = Matrix::from_rows(vec![vec![3.0], vec![4.0]]).unwrap();
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.row(0), &[1.0, 3.0]);
        let v = a.vcat(&b).unwrap();
        assert_eq!(v.col(0), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn col_stats() {
        let a = Matrix::from_rows(vec![vec![1.0, 10.0], vec![3.0, 10.0]]).unwrap();
        assert_eq!(a.col_means(), vec![2.0, 10.0]);
        let stds = a.col_stds();
        assert!((stds[0] - 1.0).abs() < 1e-12);
        assert_eq!(stds[1], 0.0);
    }

    #[test]
    fn eigh_diagonal() {
        let m = Matrix::from_rows(vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let (vals, _) = m.eigh_symmetric().unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 2.0).abs() < 1e-10);
        assert!((vals[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn eigh_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let (vals, vecs) = m.eigh_symmetric().unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2): components equal in magnitude.
        assert!((vecs.get(0, 0).abs() - vecs.get(1, 0).abs()).abs() < 1e-9);
    }

    #[test]
    fn eigh_reconstructs_matrix() {
        // A = V diag(L) V^T
        let m = Matrix::from_rows(vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ])
        .unwrap();
        let (vals, vecs) = m.eigh_symmetric().unwrap();
        let mut l = Matrix::zeros(3, 3);
        for i in 0..3 {
            l.set(i, i, vals[i]);
        }
        let recon = vecs.matmul(&l).unwrap().matmul(&vecs.transpose()).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                assert!((recon.get(r, c) - m.get(r, c)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn eigh_rejects_nonsquare() {
        assert!(Matrix::zeros(2, 3).eigh_symmetric().is_err());
    }
}
