//! Evaluation metrics: confusion counts, precision/recall/F1, ROC-AUC.
//!
//! Precision and recall are the paper's primary metrics (§5.1): precision is
//! the fraction of alarms that were real attacks; recall is the fraction of
//! attacks that raised alarms. AUC is reported for the OCSVM family (A07),
//! matching how its original paper evaluates.

/// Binary confusion counts (positive class = malicious = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    pub tp: u64,
    pub fp: u64,
    pub tn: u64,
    pub fn_: u64,
}

impl Confusion {
    /// Tallies predicted vs. true labels. Panics on length mismatch.
    pub fn tally(pred: &[u8], truth: &[u8]) -> Confusion {
        assert_eq!(pred.len(), truth.len(), "prediction/label length mismatch");
        let mut c = Confusion::default();
        for (&p, &t) in pred.iter().zip(truth) {
            match (p != 0, t != 0) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Precision = TP / (TP + FP); 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 0 when there were no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }

    /// F1 = harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all instances.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// False-positive rate = FP / (FP + TN).
    pub fn fpr(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            0.0
        } else {
            self.fp as f64 / denom as f64
        }
    }
}

/// Convenience: confusion from predictions and truth.
pub fn confusion(pred: &[u8], truth: &[u8]) -> Confusion {
    Confusion::tally(pred, truth)
}

/// Area under the ROC curve from continuous scores (higher score = more
/// malicious). Ties are handled by the Mann–Whitney formulation. Returns 0.5
/// when either class is absent.
pub fn roc_auc(scores: &[f64], truth: &[u8]) -> f64 {
    assert_eq!(scores.len(), truth.len());
    let n_pos = truth.iter().filter(|&&t| t != 0).count();
    let n_neg = truth.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank scores (average rank for ties).
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = truth
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t != 0)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let c = confusion(&[1, 0, 1, 0], &[1, 0, 1, 0]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.fpr(), 0.0);
    }

    #[test]
    fn all_wrong() {
        let c = confusion(&[0, 1], &[1, 0]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.fpr(), 1.0);
    }

    #[test]
    fn known_mixed_case() {
        // pred: 1 1 1 0 0, truth: 1 0 1 1 0 -> tp=2 fp=1 fn=1 tn=1
        let c = confusion(&[1, 1, 1, 0, 0], &[1, 0, 1, 1, 0]);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn no_positive_predictions_zero_precision() {
        let c = confusion(&[0, 0], &[1, 1]);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
    }

    #[test]
    fn auc_perfect_separation() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let truth = [0, 0, 1, 1];
        assert!((roc_auc(&scores, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auc_inverted_is_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let truth = [0, 0, 1, 1];
        assert!(roc_auc(&scores, &truth).abs() < 1e-12);
    }

    #[test]
    fn auc_random_ties_is_half() {
        let scores = [0.5; 10];
        let truth = [0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        assert!((roc_auc(&scores, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.2], &[0, 0]), 0.5);
    }

    #[test]
    fn auc_known_partial() {
        // scores 1,2,3,4 with labels 0,1,0,1: pairs (pos>neg): (2>1),(4>1),(4>3)=3 of 4 -> 0.75
        let scores = [1.0, 2.0, 3.0, 4.0];
        let truth = [0, 1, 0, 1];
        assert!((roc_auc(&scores, &truth) - 0.75).abs() < 1e-12);
    }
}
