//! Model traits shared by every learning algorithm in the crate.

use std::sync::Arc;

use crate::dataset::Dataset;
use crate::matrix::Matrix;
use crate::MlResult;

/// A supervised binary classifier (0 = benign, 1 = malicious).
pub trait Classifier: Send + Sync {
    /// Trains on a labeled dataset.
    fn fit(&mut self, data: &Dataset) -> MlResult<()>;

    /// Continues training from the current fitted state on new data.
    ///
    /// The default is a cold refit — correct for every model, warm for
    /// none. Models with a genuine warm start (SGD-trained linear models
    /// continuing from their current weights) override this; the serve
    /// retrain stage calls it so adaptation reuses fitted state instead of
    /// relearning from scratch.
    fn fit_incremental(&mut self, data: &Dataset) -> MlResult<()> {
        self.fit(data)
    }

    /// A boxed copy of this fitted model, when the implementation supports
    /// cloning its fitted state. The retrain stage snapshots before a
    /// warm-start so a failed validation gate can reinstate the untouched
    /// original; models without snapshot support force a cold retrain path.
    fn snapshot(&self) -> Option<Box<dyn Classifier>> {
        None
    }

    /// Predicts the label of one feature row.
    fn predict_row(&self, row: &[f64]) -> u8;

    /// Continuous maliciousness score for one row (higher = more likely
    /// malicious); used for ROC-AUC. Defaults to the hard label.
    fn score_row(&self, row: &[f64]) -> f64 {
        f64::from(self.predict_row(row))
    }

    /// Predicts labels for every row of `x`.
    fn predict(&self, x: &Matrix) -> Vec<u8> {
        x.rows_iter().map(|r| self.predict_row(r)).collect()
    }

    /// Scores every row of `x`.
    fn scores(&self, x: &Matrix) -> Vec<f64> {
        x.rows_iter().map(|r| self.score_row(r)).collect()
    }

    /// Short human-readable model name.
    fn name(&self) -> &'static str;
}

/// An unsupervised anomaly detector: fit on benign traffic only, score
/// unseen rows (higher = more anomalous).
pub trait AnomalyDetector: Send + Sync {
    /// Trains on benign instances only.
    fn fit_benign(&mut self, benign: &Matrix) -> MlResult<()>;

    /// Anomaly score for one row.
    fn anomaly_score(&self, row: &[f64]) -> f64;

    /// Anomaly scores for every row of `x`. Detectors with a batch hot
    /// path (kernelized or parallel scoring) override this; the default
    /// maps [`AnomalyDetector::anomaly_score`] row by row.
    fn anomaly_scores(&self, x: &Matrix) -> Vec<f64> {
        x.rows_iter().map(|r| self.anomaly_score(r)).collect()
    }

    /// Short human-readable model name.
    fn name(&self) -> &'static str;
}

/// Adapts an [`AnomalyDetector`] into the [`Classifier`] interface by
/// fitting on the benign subset of the training data and thresholding the
/// anomaly score at a quantile of the benign training scores.
///
/// This is how the benchmark runs Kitsune/OCSVM/GMM-style detectors
/// side-by-side with supervised models: the detector never sees attack
/// labels, but its alarms can still be tallied into precision/recall.
pub struct Calibrated<D: AnomalyDetector> {
    detector: D,
    /// Quantile of benign training scores used as the alarm threshold
    /// (e.g. 0.98 tolerates a 2% training false-positive rate).
    pub benign_quantile: f64,
    threshold: Option<f64>,
}

impl<D: AnomalyDetector> Calibrated<D> {
    /// Wraps a detector with the default 0.98 benign-quantile threshold.
    pub fn new(detector: D) -> Calibrated<D> {
        Calibrated {
            detector,
            benign_quantile: 0.98,
            threshold: None,
        }
    }

    /// Wraps with an explicit benign quantile.
    pub fn with_quantile(detector: D, q: f64) -> Calibrated<D> {
        Calibrated {
            detector,
            benign_quantile: q,
            threshold: None,
        }
    }

    /// The calibrated threshold, once fitted.
    pub fn threshold(&self) -> Option<f64> {
        self.threshold
    }

    /// Access to the wrapped detector.
    pub fn detector(&self) -> &D {
        &self.detector
    }
}

impl<D: AnomalyDetector> Classifier for Calibrated<D> {
    fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        let benign = data.rows_with_label(0);
        if benign.rows() == 0 {
            return Err(crate::MlError::EmptyInput);
        }
        self.detector.fit_benign(&benign)?;
        let scores = self.detector.anomaly_scores(&benign);
        self.threshold = Some(lumen_util::stats::quantile(&scores, self.benign_quantile));
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> u8 {
        let t = self.threshold.unwrap_or(f64::INFINITY);
        u8::from(self.detector.anomaly_score(row) > t)
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        self.detector.anomaly_score(row)
    }

    fn predict(&self, x: &Matrix) -> Vec<u8> {
        let t = self.threshold.unwrap_or(f64::INFINITY);
        self.detector
            .anomaly_scores(x)
            .into_iter()
            .map(|s| u8::from(s > t))
            .collect()
    }

    fn scores(&self, x: &Matrix) -> Vec<f64> {
        self.detector.anomaly_scores(x)
    }

    fn name(&self) -> &'static str {
        self.detector.name()
    }
}

/// A frozen, score-only view of an already-trained classifier.
///
/// The streaming daemon trains once at startup (or will eventually load a
/// persisted model) and then scores live slices for hours; nothing on that
/// path may mutate the model. `Pretrained` enforces score-only use at the
/// type level: it shares the underlying classifier through an [`Arc`]
/// (cloneable across scorer threads/restarts without copying weights), and
/// its [`Classifier::fit`] is a hard error rather than a silent retrain.
/// Prediction and scoring delegate to the wrapped model's own batched
/// overrides, so the kernelized hot paths are preserved.
///
/// The freeze is reversible, but only *checked*: [`Pretrained::into_inner`]
/// thaws the classifier back out when this is the last handle, so the
/// serve retrain stage can warm-start from fitted state without ever
/// racing a live scorer that still shares the weights.
#[derive(Clone)]
pub struct Pretrained {
    inner: FrozenInner,
}

#[derive(Clone)]
enum FrozenInner {
    /// Frozen from an owned classifier; thawable once unique.
    Owned(Arc<Box<dyn Classifier>>),
    /// Frozen from an already-shared classifier (a pipeline `Trained`
    /// artifact); other owners may exist outside any `Pretrained`, so this
    /// is never thawable.
    Shared(Arc<dyn Classifier>),
}

impl Pretrained {
    /// Freezes an already-fitted classifier. The caller is responsible for
    /// having fitted it; an unfitted model stays unfitted forever.
    pub fn new<C: Classifier + 'static>(fitted: C) -> Pretrained {
        Pretrained::new_boxed(Box::new(fitted))
    }

    /// Freezes an already-boxed classifier (what [`Pretrained::into_inner`]
    /// hands back, so thaw → warm-start → refreeze round-trips).
    pub fn new_boxed(fitted: Box<dyn Classifier>) -> Pretrained {
        Pretrained {
            inner: FrozenInner::Owned(Arc::new(fitted)),
        }
    }

    /// Freezes a shared classifier (e.g. one already behind an `Arc` in a
    /// pipeline `Trained` artifact) without cloning the weights.
    pub fn from_shared(fitted: Arc<dyn Classifier>) -> Pretrained {
        Pretrained {
            inner: FrozenInner::Shared(fitted),
        }
    }

    /// Thaws the wrapped classifier back out for a warm-start retrain.
    ///
    /// Checked: succeeds only when this is the last handle to the weights
    /// — a clone still scoring in another thread, or a
    /// [`Pretrained::from_shared`] origin, gets the wrapper back unchanged
    /// as the `Err`. The freeze guarantee is therefore never violated:
    /// either nobody else can observe the model and it becomes mutable, or
    /// somebody can and it stays frozen.
    pub fn into_inner(self) -> Result<Box<dyn Classifier>, Pretrained> {
        match self.inner {
            FrozenInner::Owned(arc) => Arc::try_unwrap(arc).map_err(|arc| Pretrained {
                inner: FrozenInner::Owned(arc),
            }),
            FrozenInner::Shared(arc) => Err(Pretrained {
                inner: FrozenInner::Shared(arc),
            }),
        }
    }

    fn get(&self) -> &dyn Classifier {
        match &self.inner {
            FrozenInner::Owned(boxed) => boxed.as_ref().as_ref(),
            FrozenInner::Shared(arc) => arc.as_ref(),
        }
    }
}

impl Classifier for Pretrained {
    /// Always an error: a frozen model cannot be retrained in place.
    fn fit(&mut self, _data: &Dataset) -> MlResult<()> {
        Err(crate::MlError::BadConfig(
            "Pretrained models are frozen; thaw with into_inner() before retraining".into(),
        ))
    }

    /// Also an error: warm starts go through [`Pretrained::into_inner`].
    fn fit_incremental(&mut self, data: &Dataset) -> MlResult<()> {
        self.fit(data)
    }

    /// Snapshots the *inner* fitted state (when the wrapped model supports
    /// it) — the one mutation-free escape hatch that works even while the
    /// weights are shared.
    fn snapshot(&self) -> Option<Box<dyn Classifier>> {
        self.get().snapshot()
    }

    fn predict_row(&self, row: &[f64]) -> u8 {
        self.get().predict_row(row)
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        self.get().score_row(row)
    }

    fn predict(&self, x: &Matrix) -> Vec<u8> {
        self.get().predict(x)
    }

    fn scores(&self, x: &Matrix) -> Vec<f64> {
        self.get().scores(x)
    }

    fn name(&self) -> &'static str {
        self.get().name()
    }
}

/// A boxed classifier with convenience constructors — what pipeline
/// operations pass around.
pub struct AnyModel(pub Box<dyn Classifier>);

impl AnyModel {
    /// Wraps any classifier.
    pub fn new<C: Classifier + 'static>(c: C) -> AnyModel {
        AnyModel(Box::new(c))
    }

    /// Trains in place.
    pub fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        self.0.fit(data)
    }

    /// Predicts labels.
    pub fn predict(&self, x: &Matrix) -> Vec<u8> {
        self.0.predict(x)
    }

    /// Continuous scores.
    pub fn scores(&self, x: &Matrix) -> Vec<f64> {
        self.0.scores(x)
    }

    /// Model name.
    pub fn name(&self) -> &'static str {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MlError;

    /// Scores each row by its first feature; "benign" cluster near 0.
    struct DistanceDetector {
        center: f64,
    }

    impl AnomalyDetector for DistanceDetector {
        fn fit_benign(&mut self, benign: &Matrix) -> MlResult<()> {
            self.center = benign.col_means()[0];
            Ok(())
        }
        fn anomaly_score(&self, row: &[f64]) -> f64 {
            (row[0] - self.center).abs()
        }
        fn name(&self) -> &'static str {
            "distance"
        }
    }

    #[test]
    fn calibrated_flags_outliers_only() {
        // Benign near 0, one attack instance far away.
        let x = Matrix::from_rows(vec![
            vec![0.0],
            vec![0.1],
            vec![-0.1],
            vec![0.05],
            vec![9.0],
        ])
        .unwrap();
        let y = vec![0, 0, 0, 0, 1];
        let data = Dataset::new(x.clone(), y).unwrap();
        // Quantile 1.0: threshold at the max benign training score, so no
        // benign training point alarms (with only 4 benign rows, 0.98 would
        // land below the max).
        let mut model = Calibrated::with_quantile(DistanceDetector { center: f64::NAN }, 1.0);
        model.fit(&data).unwrap();
        let preds = model.predict(&x);
        assert_eq!(preds[4], 1);
        assert_eq!(&preds[..4], &[0, 0, 0, 0]);
    }

    #[test]
    fn calibrated_requires_benign_rows() {
        let x = Matrix::from_rows(vec![vec![1.0]]).unwrap();
        let data = Dataset::new(x, vec![1]).unwrap();
        let mut model = Calibrated::new(DistanceDetector { center: 0.0 });
        assert_eq!(model.fit(&data).unwrap_err(), MlError::EmptyInput);
    }

    #[test]
    fn unfitted_calibrated_never_alarms() {
        let model = Calibrated::new(DistanceDetector { center: 0.0 });
        assert_eq!(model.predict_row(&[100.0]), 0);
    }

    #[test]
    fn pretrained_scores_like_the_inner_model_but_refuses_fit() {
        let x = Matrix::from_rows(vec![
            vec![0.0],
            vec![0.1],
            vec![-0.1],
            vec![0.05],
            vec![9.0],
        ])
        .unwrap();
        let y = vec![0, 0, 0, 0, 1];
        let data = Dataset::new(x.clone(), y).unwrap();
        let mut inner = Calibrated::with_quantile(DistanceDetector { center: f64::NAN }, 1.0);
        inner.fit(&data).unwrap();
        let expected_preds = inner.predict(&x);
        let expected_scores = inner.scores(&x);

        let mut frozen = Pretrained::new(inner);
        assert_eq!(frozen.name(), "distance");
        assert_eq!(frozen.predict(&x), expected_preds);
        assert_eq!(frozen.scores(&x), expected_scores);
        assert_eq!(frozen.predict_row(&[9.0]), 1);
        assert!(
            matches!(frozen.fit(&data), Err(MlError::BadConfig(_))),
            "a frozen model must refuse retraining"
        );
        // Clones share the same weights: scoring agrees bit-for-bit.
        let clone = frozen.clone();
        assert_eq!(clone.scores(&x), expected_scores);
    }

    #[test]
    fn into_inner_thaws_only_the_last_handle() {
        let x = Matrix::from_rows(vec![vec![0.0], vec![0.1], vec![-0.1], vec![9.0]]).unwrap();
        let data = Dataset::new(x.clone(), vec![0, 0, 0, 1]).unwrap();
        let mut inner = Calibrated::with_quantile(DistanceDetector { center: f64::NAN }, 1.0);
        inner.fit(&data).unwrap();
        let frozen = Pretrained::new(inner);

        // A live clone blocks the thaw; the wrapper comes back intact and
        // still scores.
        let clone = frozen.clone();
        let frozen = match frozen.into_inner() {
            Ok(_) => panic!("thaw must fail while a clone holds the weights"),
            Err(p) => p,
        };
        assert_eq!(frozen.predict_row(&[9.0]), 1);
        drop(clone);

        // Last handle: the thaw succeeds and the model is mutable again.
        let Ok(mut thawed) = frozen.into_inner() else {
            panic!("unique handle must thaw");
        };
        assert_eq!(thawed.predict_row(&[9.0]), 1);
        thawed.fit(&data).expect("thawed model accepts training again");

        // Refreeze round-trips through the boxed constructor.
        let refrozen = Pretrained::new_boxed(thawed);
        assert_eq!(refrozen.predict_row(&[9.0]), 1);
    }

    #[test]
    fn shared_origin_is_never_thawable() {
        let mut inner = Calibrated::with_quantile(DistanceDetector { center: f64::NAN }, 1.0);
        let x = Matrix::from_rows(vec![vec![0.0], vec![0.1], vec![9.0]]).unwrap();
        let data = Dataset::new(x, vec![0, 0, 1]).unwrap();
        inner.fit(&data).unwrap();
        let shared: Arc<dyn Classifier> = Arc::new(inner);
        let frozen = Pretrained::from_shared(Arc::clone(&shared));
        // Even though this Pretrained is the only *wrapper*, the Arc has an
        // owner outside it — the freeze must hold.
        let Err(frozen) = frozen.into_inner() else {
            panic!("shared origin must stay frozen");
        };
        assert_eq!(frozen.predict_row(&[9.0]), 1);
    }
}
