//! Nystroem approximation of the RBF kernel feature map.
//!
//! The Efficient-One-Class-SVM paper (A08/A09) replaces exact kernel
//! machines with a Nystroem low-rank map: sample `m` landmarks, compute the
//! landmark kernel matrix `K_mm`, and map any point `x` to
//! `k(x, landmarks) · U Λ^{-1/2}` where `K_mm = U Λ Uᵀ`. Downstream linear
//! models (OCSVM) or density models (GMM) then behave like their kernelized
//! counterparts at a fraction of the cost.

use lumen_util::{par, Rng};

use crate::gmm::{Gmm, GmmConfig};
use crate::kernels::{self, KernelOp};
use crate::matrix::Matrix;
use crate::model::AnomalyDetector;
use crate::ocsvm::{OcsvmConfig, OneClassSvm};
use crate::preprocess::Transform;
use crate::{MlError, MlResult};

/// Nystroem hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct NystroemConfig {
    /// Landmark count (output dimensionality upper bound).
    pub n_components: usize,
    /// RBF γ; `None` selects `1 / (d · mean column variance)` ("scale").
    pub gamma: Option<f64>,
    /// Landmark sampling seed.
    pub seed: u64,
    /// Worker threads for kernel-matrix work (0 = process default).
    pub threads: usize,
}

impl Default for NystroemConfig {
    fn default() -> Self {
        NystroemConfig {
            n_components: 64,
            gamma: None,
            seed: 0,
            threads: 0,
        }
    }
}

/// A fitted Nystroem feature map.
pub struct Nystroem {
    /// Hyperparameters.
    pub config: NystroemConfig,
    landmarks: Option<Matrix>,
    /// Projection `U Λ^{-1/2}` (m × k).
    projection: Option<Matrix>,
    gamma: f64,
}

impl Nystroem {
    /// Creates an unfitted map.
    pub fn new(config: NystroemConfig) -> Nystroem {
        Nystroem {
            config,
            landmarks: None,
            projection: None,
            gamma: 1.0,
        }
    }

    fn rbf(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        (-self.gamma * d2).exp()
    }

    /// RBF kernel matrix between the rows of `a` and the rows of `b`,
    /// built from one Gram-expansion distance pass.
    fn rbf_matrix(&self, a: &Matrix, b: &Matrix, threads: usize) -> MlResult<Matrix> {
        let mut k = kernels::pairwise_sq_dists(a, b, threads)?;
        let gamma = self.gamma;
        let cols = k.cols();
        par::par_rows_mut(k.as_mut_slice(), cols, threads, |_, row| {
            for v in row {
                *v = (-gamma * *v).exp();
            }
        });
        Ok(k)
    }

    /// Output dimensionality after fitting.
    pub fn out_dim(&self) -> usize {
        self.projection.as_ref().map_or(0, Matrix::cols)
    }
}

impl Transform for Nystroem {
    fn fit(&mut self, x: &Matrix) -> MlResult<()> {
        let n = x.rows();
        if n == 0 {
            return Err(MlError::EmptyInput);
        }
        let m = self.config.n_components.min(n).max(1);
        let d = x.cols();

        self.gamma = self.config.gamma.unwrap_or_else(|| {
            let mean_var = x.col_stds().iter().map(|s| s * s).sum::<f64>() / d.max(1) as f64;
            if mean_var > 1e-12 {
                1.0 / (d as f64 * mean_var)
            } else {
                1.0
            }
        });

        let mut rng = Rng::new(self.config.seed);
        let idx = rng.sample_indices(n, m);
        let landmarks = x.select_rows(&idx);

        // K_mm and its inverse square root via eigendecomposition. The
        // Gram-expansion distance kernel keeps K_mm exactly symmetric:
        // both the norms sum and the dot product commute bitwise.
        let threads = kernels::resolve_threads(self.config.threads);
        let kmm = kernels::timed(KernelOp::Nystroem, || {
            self.rbf_matrix(&landmarks, &landmarks, threads)
        })?;
        let (vals, vecs) = kmm.eigh_symmetric()?;
        // Keep components with meaningfully positive eigenvalues.
        let keep: Vec<usize> = (0..m).filter(|&i| vals[i] > 1e-10).collect();
        if keep.is_empty() {
            return Err(MlError::Degenerate("kernel matrix numerically zero".into()));
        }
        let mut projection = Matrix::zeros(m, keep.len());
        for (out_c, &c) in keep.iter().enumerate() {
            let scale = 1.0 / vals[c].sqrt();
            for r in 0..m {
                projection.set(r, out_c, vecs.get(r, c) * scale);
            }
        }
        self.landmarks = Some(landmarks);
        self.projection = Some(projection);
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let landmarks = self.landmarks.as_ref().expect("transform before fit");
        let projection = self.projection.as_ref().expect("transform before fit");
        let threads = kernels::resolve_threads(self.config.threads);
        kernels::timed(KernelOp::Nystroem, || {
            let kx = self.rbf_matrix(x, landmarks, threads).expect("shapes agree");
            kernels::matmul(&kx, projection, threads).expect("shapes agree")
        })
    }
}

/// Nystroem feature map followed by an inner anomaly detector — the A08/A09
/// composition.
pub struct NystroemDetector<D: AnomalyDetector> {
    map: Nystroem,
    inner: D,
    name: &'static str,
}

impl NystroemDetector<Gmm> {
    /// Nystroem → GMM (A08).
    pub fn gmm(nys: NystroemConfig, gmm: GmmConfig) -> NystroemDetector<Gmm> {
        NystroemDetector {
            map: Nystroem::new(nys),
            inner: Gmm::new(gmm),
            name: "nystroem-gmm",
        }
    }
}

impl NystroemDetector<OneClassSvm> {
    /// Nystroem → one-class SVM (A09). The inner SVM is forced to the
    /// linear kernel: the Nystroem map already supplies the kernel geometry.
    pub fn ocsvm(nys: NystroemConfig, svm: OcsvmConfig) -> NystroemDetector<OneClassSvm> {
        let svm = OcsvmConfig {
            kernel: crate::ocsvm::OcsvmKernel::Linear,
            ..svm
        };
        NystroemDetector {
            map: Nystroem::new(nys),
            inner: OneClassSvm::new(svm),
            name: "nystroem-ocsvm",
        }
    }
}

impl<D: AnomalyDetector> AnomalyDetector for NystroemDetector<D> {
    fn fit_benign(&mut self, benign: &Matrix) -> MlResult<()> {
        let mapped = self.map.fit_transform(benign)?;
        self.inner.fit_benign(&mapped)
    }

    fn anomaly_score(&self, row: &[f64]) -> f64 {
        let probe = Matrix::from_rows(vec![row.to_vec()]).expect("row");
        let mapped = self.map.transform(&probe);
        self.inner.anomaly_score(mapped.row(0))
    }

    fn anomaly_scores(&self, x: &Matrix) -> Vec<f64> {
        // One batched map + the inner detector's own batch path.
        let mapped = self.map.transform(x);
        self.inner.anomaly_scores(&mapped)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(seed: u64, n: usize) -> Matrix {
        // Benign data on a ring of radius 5 — linearly inseparable from its
        // center, exactly the case where a kernel map beats a linear model.
        let mut rng = Rng::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let theta = rng.f64() * std::f64::consts::TAU;
                let r = 5.0 + rng.normal_with(0.0, 0.2);
                vec![r * theta.cos(), r * theta.sin()]
            })
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn approximates_kernel_inner_products() {
        // <phi(x), phi(y)> should approximate k(x, y) when landmarks cover
        // the data.
        let x = ring(1, 150);
        let mut nys = Nystroem::new(NystroemConfig {
            n_components: 150, // all points as landmarks -> near-exact
            gamma: Some(0.1),
            seed: 2,
            ..NystroemConfig::default()
        });
        let mapped = nys.fit_transform(&x).unwrap();
        for (i, j) in [(0, 1), (5, 40), (10, 120)] {
            let exact = nys.rbf(x.row(i), x.row(j));
            let approx: f64 = mapped
                .row(i)
                .iter()
                .zip(mapped.row(j))
                .map(|(a, b)| a * b)
                .sum();
            assert!(
                (exact - approx).abs() < 1e-6,
                "pair ({i},{j}): exact {exact} approx {approx}"
            );
        }
    }

    #[test]
    fn nystroem_gmm_flags_ring_center() {
        let x = ring(3, 300);
        let mut det = NystroemDetector::gmm(
            NystroemConfig {
                n_components: 48,
                ..NystroemConfig::default()
            },
            GmmConfig {
                n_components: 3,
                ..GmmConfig::default()
            },
        );
        det.fit_benign(&x).unwrap();
        let on_ring = det.anomaly_score(&[5.0, 0.0]);
        let center = det.anomaly_score(&[0.0, 0.0]);
        assert!(
            center > on_ring,
            "center {center} should be more anomalous than ring {on_ring}"
        );
    }

    #[test]
    fn nystroem_ocsvm_flags_far_points() {
        let x = ring(4, 300);
        let mut det = NystroemDetector::ocsvm(
            NystroemConfig {
                n_components: 48,
                ..NystroemConfig::default()
            },
            OcsvmConfig::default(),
        );
        det.fit_benign(&x).unwrap();
        let on_ring = det.anomaly_score(&[0.0, 5.0]);
        let far = det.anomaly_score(&[30.0, 30.0]);
        assert!(far > on_ring);
    }

    #[test]
    fn out_dim_bounded_by_components() {
        let x = ring(5, 100);
        let mut nys = Nystroem::new(NystroemConfig {
            n_components: 16,
            ..NystroemConfig::default()
        });
        nys.fit(&x).unwrap();
        assert!(nys.out_dim() <= 16);
        assert!(nys.out_dim() > 0);
        assert_eq!(nys.transform(&x).cols(), nys.out_dim());
    }

    #[test]
    fn rejects_empty() {
        let mut nys = Nystroem::new(NystroemConfig::default());
        assert!(nys.fit(&Matrix::zeros(0, 3)).is_err());
    }
}
