//! One-class SVM (ν-formulation) trained by SGD.
//!
//! This is A07's model. The published algorithm is a *kernel* OCSVM, so the
//! default configuration approximates the RBF kernel with random Fourier
//! features (Rahimi–Recht) before fitting the linear ν-SVM; far-away points
//! decorrelate from every training point, fall toward the origin of the
//! feature space, and land below the separating hyperplane.
//!
//! The `Linear` kernel skips the map entirely — that is the inner model of
//! the Nystroem composition (A09), where [`crate::nystroem::Nystroem`]
//! supplies the feature map instead.

use lumen_util::{par, Rng};

use crate::kernels::{self, KernelOp};
use crate::matrix::Matrix;
use crate::model::AnomalyDetector;
use crate::preprocess::{StandardScaler, Transform};
use crate::{MlError, MlResult};

/// Kernel selection for [`OneClassSvm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OcsvmKernel {
    /// Raw features, no map. Use when composing with an external feature
    /// map (Nystroem) whose geometry already encodes similarity.
    Linear,
    /// RBF kernel approximated by random Fourier features. Input is
    /// standardized first; `gamma = None` selects `1/d`.
    Rbf {
        /// Number of random Fourier features.
        n_features: usize,
        /// Kernel width; `None` = `1 / n_input_dims`.
        gamma: Option<f64>,
    },
}

/// One-class SVM hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct OcsvmConfig {
    /// Upper bound on the training outlier fraction (ν ∈ (0, 1]).
    pub nu: f64,
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Kernel.
    pub kernel: OcsvmKernel,
    /// Shuffle / projection seed.
    pub seed: u64,
    /// Worker threads for feature mapping and batch scoring (0 = process
    /// default). Training SGD itself stays sequential.
    pub threads: usize,
}

impl Default for OcsvmConfig {
    fn default() -> Self {
        OcsvmConfig {
            nu: 0.05,
            epochs: 40,
            learning_rate: 0.05,
            kernel: OcsvmKernel::Rbf {
                n_features: 128,
                gamma: None,
            },
            seed: 0,
            threads: 0,
        }
    }
}

/// The fitted random-Fourier-feature map for the RBF kernel.
struct RffMap {
    scaler: StandardScaler,
    /// Transpose-packed D × d projection: row `c` holds the frequency
    /// vector of output feature `c`, so mapping a batch is one
    /// [`kernels::matmul_bt`] with contiguous inner loops.
    wt: Matrix,
    /// D phase offsets.
    b: Vec<f64>,
    norm: f64,
}

impl RffMap {
    fn fit(x: &Matrix, n_features: usize, gamma: Option<f64>, seed: u64) -> MlResult<RffMap> {
        let mut scaler = StandardScaler::default();
        let scaled = scaler.fit_transform(x)?;
        let d = scaled.cols();
        let gamma = gamma.unwrap_or(1.0 / d.max(1) as f64);
        let mut rng = Rng::new(seed ^ 0x5EED_0C5F);
        let mut wt = Matrix::zeros(n_features, d);
        let sd = (2.0 * gamma).sqrt();
        for c in 0..n_features {
            let row = wt.row_mut(c);
            for v in row.iter_mut() {
                *v = rng.normal() * sd;
            }
        }
        let b: Vec<f64> = (0..n_features)
            .map(|_| rng.f64() * std::f64::consts::TAU)
            .collect();
        Ok(RffMap {
            scaler,
            wt,
            b,
            norm: (2.0 / n_features as f64).sqrt(),
        })
    }

    /// Maps a whole batch: `cos(x·Wᵀ + b)·norm`, one matmul plus an
    /// element-wise pass (both row-parallel, bit-identical at any thread
    /// count).
    fn map_matrix(&self, x: &Matrix, threads: usize) -> Matrix {
        kernels::timed(KernelOp::RffMap, || {
            let scaled = self.scaler.transform(x);
            let mut z = kernels::matmul_bt(&scaled, &self.wt, threads).expect("shapes agree");
            let d_out = self.b.len();
            let b = &self.b;
            let norm = self.norm;
            par::par_rows_mut(z.as_mut_slice(), d_out, threads, |_, row| {
                for (v, &bc) in row.iter_mut().zip(b) {
                    *v = norm * (*v + bc).cos();
                }
            });
            z
        })
    }

    fn map_row(&self, row: &[f64]) -> Vec<f64> {
        let probe = Matrix::from_rows(vec![row.to_vec()]).expect("row");
        self.map_matrix(&probe, 1).row(0).to_vec()
    }
}

/// A fitted one-class SVM.
pub struct OneClassSvm {
    /// Hyperparameters.
    pub config: OcsvmConfig,
    rff: Option<RffMap>,
    weights: Vec<f64>,
    rho: f64,
    fitted: bool,
}

impl OneClassSvm {
    /// Creates an unfitted model.
    pub fn new(config: OcsvmConfig) -> OneClassSvm {
        OneClassSvm {
            config,
            rff: None,
            weights: Vec::new(),
            rho: 0.0,
            fitted: false,
        }
    }

    /// Convenience: linear kernel for use behind an external feature map.
    pub fn linear(nu: f64, seed: u64) -> OneClassSvm {
        OneClassSvm::new(OcsvmConfig {
            nu,
            kernel: OcsvmKernel::Linear,
            seed,
            ..OcsvmConfig::default()
        })
    }

    /// Decision function `⟨w, φ(x)⟩ − ρ` on mapped features (negative =
    /// anomalous).
    fn decision(&self, mapped: &[f64]) -> f64 {
        kernels::dot(mapped, &self.weights) - self.rho
    }

    fn map_row(&self, row: &[f64]) -> Vec<f64> {
        match &self.rff {
            Some(map) => map.map_row(row),
            None => row.to_vec(),
        }
    }

    /// Maps a whole batch through the configured kernel.
    fn map_matrix(&self, x: &Matrix, threads: usize) -> Matrix {
        match &self.rff {
            Some(map) => map.map_matrix(x, threads),
            None => x.clone(),
        }
    }
}

impl AnomalyDetector for OneClassSvm {
    fn fit_benign(&mut self, benign: &Matrix) -> MlResult<()> {
        if benign.rows() == 0 {
            return Err(MlError::EmptyInput);
        }
        if !(0.0 < self.config.nu && self.config.nu <= 1.0) {
            return Err(MlError::BadConfig("nu must be in (0, 1]".into()));
        }
        self.rff = match self.config.kernel {
            OcsvmKernel::Linear => None,
            OcsvmKernel::Rbf { n_features, gamma } => Some(RffMap::fit(
                benign,
                n_features.max(4),
                gamma,
                self.config.seed,
            )?),
        };

        // Pre-map all training rows once (batched, row-parallel).
        let threads = kernels::resolve_threads(self.config.threads);
        let mapped = self.map_matrix(benign, threads);
        let d = mapped.cols();
        self.weights = vec![0.0; d];
        self.rho = 0.0;
        let inv_nu = 1.0 / self.config.nu;

        let mut rng = Rng::new(self.config.seed);
        let mut order: Vec<usize> = (0..mapped.rows()).collect();
        let mut t = 1.0;
        for _ in 0..self.config.epochs {
            // Cooperative deadline check, once per SGD epoch.
            if lumen_util::cancel::CancelToken::current_cancelled() {
                return Err(MlError::Cancelled);
            }
            rng.shuffle(&mut order);
            for &i in &order {
                let row = mapped.row(i);
                let lr = self.config.learning_rate / (1.0 + 0.005 * t);
                // Subgradient of (1/2)||w||² − ρ + (1/ν) max(0, ρ − ⟨w,x⟩).
                if self.decision(row) >= 0.0 {
                    for w in self.weights.iter_mut() {
                        *w -= lr * *w;
                    }
                    self.rho += lr;
                } else {
                    for (w, &a) in self.weights.iter_mut().zip(row) {
                        *w -= lr * (*w - inv_nu * a);
                    }
                    self.rho -= lr * (inv_nu - 1.0);
                }
                t += 1.0;
            }
        }
        self.fitted = true;
        Ok(())
    }

    fn anomaly_score(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.0;
        }
        // Higher = more anomalous.
        -self.decision(&self.map_row(row))
    }

    fn anomaly_scores(&self, x: &Matrix) -> Vec<f64> {
        if !self.fitted {
            return vec![0.0; x.rows()];
        }
        let threads = kernels::resolve_threads(self.config.threads);
        let mapped = self.map_matrix(x, threads);
        mapped.rows_iter().map(|r| -self.decision(r)).collect()
    }

    fn name(&self) -> &'static str {
        "ocsvm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn benign_blob(seed: u64, n: usize) -> Matrix {
        let mut rng = Rng::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.normal_with(5.0, 1.0), rng.normal_with(-2.0, 1.0)])
            .collect();
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn rbf_flags_outliers_in_any_direction() {
        let x = benign_blob(1, 400);
        let mut svm = OneClassSvm::new(OcsvmConfig::default());
        svm.fit_benign(&x).unwrap();
        let inlier = svm.anomaly_score(&[5.0, -2.0]);
        for outlier_pt in [[50.0, 40.0], [-40.0, -40.0], [5.0, 30.0]] {
            let s = svm.anomaly_score(&outlier_pt);
            assert!(s > inlier, "outlier {outlier_pt:?}: {s} vs inlier {inlier}");
        }
    }

    #[test]
    fn most_training_points_are_inside() {
        let x = benign_blob(2, 300);
        let mut svm = OneClassSvm::new(OcsvmConfig::default());
        svm.fit_benign(&x).unwrap();
        let inside = x
            .rows_iter()
            .filter(|r| svm.anomaly_score(r) <= 0.0)
            .count();
        // ν = 0.05 tolerates ~5% outliers; allow slack for SGD noise.
        assert!(inside as f64 / 300.0 > 0.8, "only {inside}/300 inside");
    }

    #[test]
    fn scores_grow_with_distance() {
        let x = benign_blob(3, 300);
        let mut svm = OneClassSvm::new(OcsvmConfig::default());
        svm.fit_benign(&x).unwrap();
        let near = svm.anomaly_score(&[7.0, 0.0]);
        let far = svm.anomaly_score(&[20.0, 13.0]);
        assert!(far > near, "far {far} near {near}");
    }

    #[test]
    fn linear_kernel_separates_from_origin() {
        // Linear OCSVM pushes a hyperplane between the data and the origin —
        // meaningful when the features live in the positive orthant, as
        // Nystroem-mapped features do.
        let mut rng = Rng::new(4);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.f64_range(0.8, 1.2), rng.f64_range(0.8, 1.2)])
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let mut svm = OneClassSvm::linear(0.05, 0);
        svm.fit_benign(&x).unwrap();
        let inlier = svm.anomaly_score(&[1.0, 1.0]);
        let toward_origin = svm.anomaly_score(&[0.0, 0.0]);
        assert!(toward_origin > inlier);
    }

    #[test]
    fn bad_nu_rejected() {
        let x = benign_blob(5, 10);
        let mut svm = OneClassSvm::new(OcsvmConfig {
            nu: 0.0,
            ..OcsvmConfig::default()
        });
        assert!(matches!(svm.fit_benign(&x), Err(MlError::BadConfig(_))));
    }

    #[test]
    fn rejects_empty() {
        let mut svm = OneClassSvm::new(OcsvmConfig::default());
        assert!(svm.fit_benign(&Matrix::zeros(0, 2)).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let x = benign_blob(6, 100);
        let mut a = OneClassSvm::new(OcsvmConfig::default());
        let mut b = OneClassSvm::new(OcsvmConfig::default());
        a.fit_benign(&x).unwrap();
        b.fit_benign(&x).unwrap();
        assert_eq!(a.anomaly_score(&[1.0, 1.0]), b.anomaly_score(&[1.0, 1.0]));
    }

    #[test]
    fn unfitted_scores_zero() {
        let svm = OneClassSvm::new(OcsvmConfig::default());
        assert_eq!(svm.anomaly_score(&[9.0, 9.0]), 0.0);
    }
}
