//! Feature preprocessing: scalers, correlation filtering, PCA, imputation.
//!
//! These are the "ML techniques that typically improve the performance of
//! classifiers" the paper folds into its algorithm-synthesis search (§5.4):
//! data normalization, removing correlated features, and dimensionality
//! reduction.

use lumen_util::stats::{pearson, quantile};

use crate::matrix::Matrix;
use crate::{MlError, MlResult};

/// A fitted column-wise transform.
pub trait Transform: Send + Sync {
    /// Learns parameters from training data.
    fn fit(&mut self, x: &Matrix) -> MlResult<()>;
    /// Applies the learned transform.
    fn transform(&self, x: &Matrix) -> Matrix;
    /// Fits then transforms.
    fn fit_transform(&mut self, x: &Matrix) -> MlResult<Matrix> {
        self.fit(x)?;
        Ok(self.transform(x))
    }
}

/// Z-score standardization: `(x - mean) / std` per column.
#[derive(Debug, Clone, Default)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Transform for StandardScaler {
    fn fit(&mut self, x: &Matrix) -> MlResult<()> {
        if x.rows() == 0 {
            return Err(MlError::EmptyInput);
        }
        self.means = x.col_means();
        self.stds = x
            .col_stds()
            .into_iter()
            .map(|s| if s < 1e-12 { 1.0 } else { s })
            .collect();
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.means[c]) / self.stds[c];
            }
        }
        out
    }
}

/// Min-max scaling to `[0, 1]` per column (constant columns map to 0).
#[derive(Debug, Clone, Default)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl Transform for MinMaxScaler {
    fn fit(&mut self, x: &Matrix) -> MlResult<()> {
        if x.rows() == 0 {
            return Err(MlError::EmptyInput);
        }
        let cols = x.cols();
        let mut mins = vec![f64::INFINITY; cols];
        let mut maxs = vec![f64::NEG_INFINITY; cols];
        for row in x.rows_iter() {
            for (c, &v) in row.iter().enumerate() {
                mins[c] = mins[c].min(v);
                maxs[c] = maxs[c].max(v);
            }
        }
        self.ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| if hi - lo < 1e-12 { 1.0 } else { hi - lo })
            .collect();
        self.mins = mins;
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.mins[c]) / self.ranges[c];
            }
        }
        out
    }
}

/// Robust scaling: `(x - median) / IQR` per column — resists the extreme
/// outliers flood traffic produces.
#[derive(Debug, Clone, Default)]
pub struct RobustScaler {
    medians: Vec<f64>,
    iqrs: Vec<f64>,
}

impl Transform for RobustScaler {
    fn fit(&mut self, x: &Matrix) -> MlResult<()> {
        if x.rows() == 0 {
            return Err(MlError::EmptyInput);
        }
        self.medians.clear();
        self.iqrs.clear();
        for c in 0..x.cols() {
            let col = x.col(c);
            self.medians.push(quantile(&col, 0.5));
            let iqr = quantile(&col, 0.75) - quantile(&col, 0.25);
            self.iqrs.push(if iqr < 1e-12 { 1.0 } else { iqr });
        }
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = (*v - self.medians[c]) / self.iqrs[c];
            }
        }
        out
    }
}

/// Drops all but one of each group of features whose pairwise Pearson
/// correlation exceeds `threshold` (keeping the earliest column).
#[derive(Debug, Clone)]
pub struct CorrelationFilter {
    /// Absolute-correlation threshold above which a column is dropped.
    pub threshold: f64,
    keep: Vec<usize>,
}

impl CorrelationFilter {
    /// Creates a filter with the given threshold (paper uses ~0.95).
    pub fn new(threshold: f64) -> CorrelationFilter {
        CorrelationFilter {
            threshold,
            keep: Vec::new(),
        }
    }

    /// Indices of retained columns after fitting.
    pub fn kept(&self) -> &[usize] {
        &self.keep
    }
}

impl Transform for CorrelationFilter {
    fn fit(&mut self, x: &Matrix) -> MlResult<()> {
        if x.rows() == 0 {
            return Err(MlError::EmptyInput);
        }
        let cols: Vec<Vec<f64>> = (0..x.cols()).map(|c| x.col(c)).collect();
        let mut keep: Vec<usize> = Vec::new();
        for c in 0..x.cols() {
            let redundant = keep
                .iter()
                .any(|&k| pearson(&cols[k], &cols[c]).abs() > self.threshold);
            if !redundant {
                keep.push(c);
            }
        }
        self.keep = keep;
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        x.select_cols(&self.keep)
    }
}

/// PCA via eigendecomposition of the covariance matrix. Projects onto the
/// top `n_components` principal directions (centered).
#[derive(Debug, Clone)]
pub struct Pca {
    /// Number of output dimensions.
    pub n_components: usize,
    means: Vec<f64>,
    components: Option<Matrix>,
}

impl Pca {
    /// Creates a PCA transform with `n_components` outputs.
    pub fn new(n_components: usize) -> Pca {
        Pca {
            n_components,
            means: Vec::new(),
            components: None,
        }
    }
}

impl Transform for Pca {
    fn fit(&mut self, x: &Matrix) -> MlResult<()> {
        if x.rows() < 2 {
            return Err(MlError::EmptyInput);
        }
        let d = x.cols();
        let k = self.n_components.min(d);
        self.means = x.col_means();
        // Covariance matrix (d × d).
        let mut cov = Matrix::zeros(d, d);
        for row in x.rows_iter() {
            for i in 0..d {
                let di = row[i] - self.means[i];
                for j in i..d {
                    let dj = row[j] - self.means[j];
                    cov.set(i, j, cov.get(i, j) + di * dj);
                }
            }
        }
        let n = x.rows() as f64;
        for i in 0..d {
            for j in i..d {
                let v = cov.get(i, j) / n;
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }
        let (_, vectors) = cov.eigh_symmetric()?;
        // Keep top-k eigenvector columns as a d × k projection.
        let idx: Vec<usize> = (0..k).collect();
        self.components = Some(vectors.select_cols(&idx));
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let comp = self.components.as_ref().expect("Pca::transform before fit");
        let mut centered = x.clone();
        for r in 0..centered.rows() {
            let row = centered.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v -= self.means[c];
            }
        }
        centered.matmul(comp).expect("projection shapes agree")
    }
}

/// Replaces non-finite entries (NaN/inf from degenerate aggregates) with the
/// column's training mean over finite values.
#[derive(Debug, Clone, Default)]
pub struct Imputer {
    fills: Vec<f64>,
}

impl Transform for Imputer {
    fn fit(&mut self, x: &Matrix) -> MlResult<()> {
        if x.rows() == 0 {
            return Err(MlError::EmptyInput);
        }
        self.fills = (0..x.cols())
            .map(|c| {
                let col = x.col(c);
                let finite: Vec<f64> = col.into_iter().filter(|v| v.is_finite()).collect();
                if finite.is_empty() {
                    0.0
                } else {
                    finite.iter().sum::<f64>() / finite.len() as f64
                }
            })
            .collect();
        Ok(())
    }

    fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                if !v.is_finite() {
                    *v = self.fills[c];
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Matrix {
        Matrix::from_rows(vec![
            vec![1.0, 10.0, 1.0],
            vec![2.0, 20.0, 1.0],
            vec![3.0, 30.0, 1.0],
            vec![4.0, 40.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn standard_scaler_zero_mean_unit_std() {
        let x = toy();
        let mut s = StandardScaler::default();
        let t = s.fit_transform(&x).unwrap();
        let means = t.col_means();
        let stds = t.col_stds();
        assert!(means[0].abs() < 1e-12);
        assert!((stds[0] - 1.0).abs() < 1e-12);
        // Constant column untouched numerically (std forced to 1).
        assert!(t.col(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn minmax_maps_to_unit_interval() {
        let x = toy();
        let mut s = MinMaxScaler::default();
        let t = s.fit_transform(&x).unwrap();
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(3, 0), 1.0);
        assert!((t.get(1, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_handles_unseen_extremes() {
        let x = toy();
        let mut s = MinMaxScaler::default();
        s.fit(&x).unwrap();
        let probe = Matrix::from_rows(vec![vec![10.0, 0.0, 1.0]]).unwrap();
        let t = s.transform(&probe);
        assert!(t.get(0, 0) > 1.0); // extrapolates, by design
    }

    #[test]
    fn robust_scaler_centers_on_median() {
        let x = Matrix::from_rows(vec![
            vec![1.0],
            vec![2.0],
            vec![3.0],
            vec![4.0],
            vec![1000.0], // outlier
        ])
        .unwrap();
        let mut s = RobustScaler::default();
        let t = s.fit_transform(&x).unwrap();
        // Median (3.0) maps to 0.
        assert!(t.get(2, 0).abs() < 1e-12);
    }

    #[test]
    fn correlation_filter_drops_duplicate() {
        // Column 1 = 10 × column 0 (perfectly correlated); column 2 noise.
        let x = Matrix::from_rows(vec![
            vec![1.0, 10.0, 5.0],
            vec![2.0, 20.0, -3.0],
            vec![3.0, 30.0, 7.0],
            vec![4.0, 40.0, 0.0],
        ])
        .unwrap();
        let mut f = CorrelationFilter::new(0.95);
        let t = f.fit_transform(&x).unwrap();
        assert_eq!(f.kept(), &[0, 2]);
        assert_eq!(t.cols(), 2);
    }

    #[test]
    fn pca_recovers_dominant_direction() {
        // Points along y = 2x with small noise; first component captures it.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                vec![t, 2.0 * t + 0.01 * ((i % 3) as f64)]
            })
            .collect();
        let x = Matrix::from_rows(rows).unwrap();
        let mut pca = Pca::new(1);
        let t = pca.fit_transform(&x).unwrap();
        assert_eq!(t.cols(), 1);
        // Projected variance should be nearly the total variance.
        let total_var: f64 = x.col_stds().iter().map(|s| s * s).sum();
        let proj_var = t.col_stds()[0].powi(2);
        assert!(proj_var / total_var > 0.99);
    }

    #[test]
    fn imputer_fills_nan_with_mean() {
        let x = Matrix::from_rows(vec![vec![1.0], vec![f64::NAN], vec![3.0]]).unwrap();
        let mut im = Imputer::default();
        let t = im.fit_transform(&x).unwrap();
        assert_eq!(t.get(1, 0), 2.0);
    }

    #[test]
    fn imputer_all_nan_column_becomes_zero() {
        let x = Matrix::from_rows(vec![vec![f64::NAN], vec![f64::INFINITY]]).unwrap();
        let mut im = Imputer::default();
        let t = im.fit_transform(&x).unwrap();
        assert_eq!(t.col(0), vec![0.0, 0.0]);
    }

    #[test]
    fn scalers_reject_empty() {
        let empty = Matrix::zeros(0, 3);
        assert!(StandardScaler::default().fit(&empty).is_err());
        assert!(MinMaxScaler::default().fit(&empty).is_err());
        assert!(RobustScaler::default().fit(&empty).is_err());
    }
}
