//! Grid-search model selection ("autoML-lite").
//!
//! nPrint's published pipeline hands its packet encodings to AutoML; the
//! paper's algorithm-synthesis experiment (§5.4) does a greedy brute-force
//! search over feature blocks × models. Both are served by this module: a
//! declarative [`ModelSpec`] grid evaluated with stratified k-fold
//! cross-validation on F1, returning the best refitted model.

use lumen_util::Rng;

use crate::bayes::GaussianNb;
use crate::dataset::{kfold, Dataset};
use crate::ensemble::VotingEnsemble;
use crate::forest::{ForestConfig, RandomForest};
use crate::knn::{Knn, KnnConfig};
use crate::linear::{LinearSvm, LogisticRegression, SgdConfig};
use crate::metrics::confusion;
use crate::model::Classifier;
use crate::tree::{DecisionTree, TreeConfig};
use crate::{MlError, MlResult};

/// A buildable model description — the unit the search iterates over.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    DecisionTree {
        max_depth: usize,
    },
    RandomForest {
        n_trees: usize,
        max_depth: usize,
    },
    GaussianNb,
    Knn {
        k: usize,
    },
    LogisticRegression {
        epochs: usize,
    },
    LinearSvm {
        epochs: usize,
    },
    /// RF + DT + KNN + SVM committee (the ML-DDoS shape).
    Committee,
}

impl ModelSpec {
    /// Instantiates a fresh unfitted classifier.
    pub fn build(&self, seed: u64) -> Box<dyn Classifier> {
        match *self {
            ModelSpec::DecisionTree { max_depth } => Box::new(DecisionTree::new(TreeConfig {
                max_depth,
                seed,
                ..TreeConfig::default()
            })),
            ModelSpec::RandomForest { n_trees, max_depth } => {
                Box::new(RandomForest::new(ForestConfig {
                    n_trees,
                    max_depth,
                    seed,
                    ..ForestConfig::default()
                }))
            }
            ModelSpec::GaussianNb => Box::new(GaussianNb::new()),
            ModelSpec::Knn { k } => Box::new(Knn::new(KnnConfig {
                k,
                ..KnnConfig::default()
            })),
            ModelSpec::LogisticRegression { epochs } => {
                Box::new(LogisticRegression::new(SgdConfig {
                    epochs,
                    seed,
                    ..SgdConfig::default()
                }))
            }
            ModelSpec::LinearSvm { epochs } => Box::new(LinearSvm::new(SgdConfig {
                epochs,
                seed,
                ..SgdConfig::default()
            })),
            ModelSpec::Committee => Box::new(VotingEnsemble::new(vec![
                Box::new(RandomForest::new(ForestConfig {
                    n_trees: 15,
                    seed,
                    ..ForestConfig::default()
                })),
                Box::new(DecisionTree::new(TreeConfig {
                    seed: seed.wrapping_add(1),
                    ..TreeConfig::default()
                })),
                Box::new(Knn::new(KnnConfig::default())),
                Box::new(LinearSvm::new(SgdConfig {
                    seed: seed.wrapping_add(2),
                    ..SgdConfig::default()
                })),
            ])),
        }
    }

    /// Short display name.
    pub fn label(&self) -> String {
        match self {
            ModelSpec::DecisionTree { max_depth } => format!("dt(d={max_depth})"),
            ModelSpec::RandomForest { n_trees, max_depth } => {
                format!("rf(t={n_trees},d={max_depth})")
            }
            ModelSpec::GaussianNb => "gnb".into(),
            ModelSpec::Knn { k } => format!("knn(k={k})"),
            ModelSpec::LogisticRegression { epochs } => format!("logreg(e={epochs})"),
            ModelSpec::LinearSvm { epochs } => format!("svm(e={epochs})"),
            ModelSpec::Committee => "committee".into(),
        }
    }
}

/// The default grid nPrint-style autoML sweeps.
pub fn default_grid() -> Vec<ModelSpec> {
    vec![
        ModelSpec::DecisionTree { max_depth: 8 },
        ModelSpec::DecisionTree { max_depth: 14 },
        ModelSpec::RandomForest {
            n_trees: 20,
            max_depth: 10,
        },
        ModelSpec::RandomForest {
            n_trees: 40,
            max_depth: 14,
        },
        ModelSpec::GaussianNb,
        ModelSpec::Knn { k: 5 },
        ModelSpec::LogisticRegression { epochs: 30 },
    ]
}

/// Result of a grid search.
pub struct SearchResult {
    /// Winning spec.
    pub best_spec: ModelSpec,
    /// Cross-validated F1 of the winner.
    pub best_score: f64,
    /// Winner refitted on the full training data.
    pub model: Box<dyn Classifier>,
    /// (spec label, CV F1) for every candidate, in grid order.
    pub leaderboard: Vec<(String, f64)>,
}

/// Cross-validated F1 of one spec.
pub fn cv_f1(spec: &ModelSpec, data: &Dataset, folds: usize, seed: u64) -> MlResult<f64> {
    let mut rng = Rng::new(seed);
    let mut total = 0.0;
    let mut used = 0;
    for (train_idx, val_idx) in kfold(data.len(), folds, &mut rng) {
        let train = data.select(&train_idx);
        let val = data.select(&val_idx);
        if train.positives() == 0 || train.positives() == train.len() || val.is_empty() {
            continue;
        }
        let mut model = spec.build(seed);
        model.fit(&train)?;
        let preds = model.predict(&val.x);
        total += confusion(&preds, &val.y).f1();
        used += 1;
    }
    if used == 0 {
        return Err(MlError::Degenerate(
            "no usable folds (single-class data?)".into(),
        ));
    }
    Ok(total / used as f64)
}

/// Samples a random hyperparameter configuration for one model family —
/// the sampling distributions behind [`random_search`].
pub fn sample_spec(family: &str, rng: &mut Rng) -> ModelSpec {
    match family {
        "RandomForest" => ModelSpec::RandomForest {
            n_trees: 10 + rng.range(0, 60),
            max_depth: 4 + rng.range(0, 16),
        },
        "DecisionTree" => ModelSpec::DecisionTree {
            max_depth: 3 + rng.range(0, 18),
        },
        "KNN" => ModelSpec::Knn {
            k: 1 + 2 * rng.range(0, 8), // odd k
        },
        "LogisticRegression" => ModelSpec::LogisticRegression {
            epochs: 10 + rng.range(0, 60),
        },
        "LinearSVM" => ModelSpec::LinearSvm {
            epochs: 10 + rng.range(0, 60),
        },
        _ => ModelSpec::GaussianNb,
    }
}

/// Random hyperparameter search (the paper's §6 "automatic hyper-parameter
/// tuning with Lumen", grid-search flavour): draws `n_iter` configurations
/// from `sampler`, scores each by k-fold CV F1, refits the winner.
pub fn random_search(
    sampler: impl Fn(&mut Rng) -> ModelSpec,
    data: &Dataset,
    n_iter: usize,
    folds: usize,
    seed: u64,
) -> MlResult<SearchResult> {
    if n_iter == 0 {
        return Err(MlError::BadConfig("n_iter must be positive".into()));
    }
    let mut rng = Rng::new(seed ^ 0x7A2E_5EED);
    let grid: Vec<ModelSpec> = (0..n_iter).map(|_| sampler(&mut rng)).collect();
    grid_search(&grid, data, folds, seed)
}

/// Successive halving (Hyperband's inner loop): starts many configurations
/// on a small data subsample, keeps the better half at each rung, and
/// doubles the data until one configuration remains. Much cheaper than full
/// CV on every candidate when `n_configs` is large.
pub fn successive_halving(
    sampler: impl Fn(&mut Rng) -> ModelSpec,
    data: &Dataset,
    n_configs: usize,
    folds: usize,
    seed: u64,
) -> MlResult<SearchResult> {
    if n_configs == 0 {
        return Err(MlError::BadConfig("n_configs must be positive".into()));
    }
    if data.is_empty() {
        return Err(MlError::EmptyInput);
    }
    let mut rng = Rng::new(seed ^ 0x5A1F_0CAD);
    let mut alive: Vec<ModelSpec> = (0..n_configs).map(|_| sampler(&mut rng)).collect();
    // Deduplicate identical draws so rungs don't waste work.
    alive.dedup_by(|a, b| a == b);

    // Initial rung size: enough data that CV folds see both classes.
    let n = data.len();
    let mut rung_n = (n / (1 << alive.len().ilog2().min(4))).max(40).min(n);
    let mut leaderboard: Vec<(String, f64)> = Vec::new();
    while alive.len() > 1 && rung_n < n {
        let idx: Vec<usize> = (0..rung_n).map(|i| i * n / rung_n).collect();
        let subset = data.select(&idx);
        let mut scored: Vec<(ModelSpec, f64)> = alive
            .drain(..)
            .map(|spec| {
                let score = cv_f1(&spec, &subset, folds, seed).unwrap_or(0.0);
                (spec, score)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (spec, score) in &scored {
            leaderboard.push((format!("{} @n={rung_n}", spec.label()), *score));
        }
        let keep = scored.len().div_ceil(2);
        alive = scored.into_iter().take(keep).map(|(s, _)| s).collect();
        rung_n = (rung_n * 2).min(n);
    }
    // Final: full-data CV over the survivors (usually 1-2 configs).
    let mut result = grid_search(&alive, data, folds, seed)?;
    leaderboard.extend(result.leaderboard.clone());
    result.leaderboard = leaderboard;
    Ok(result)
}

/// Runs the grid search and refits the winner on all data.
pub fn grid_search(
    grid: &[ModelSpec],
    data: &Dataset,
    folds: usize,
    seed: u64,
) -> MlResult<SearchResult> {
    if grid.is_empty() {
        return Err(MlError::BadConfig("empty model grid".into()));
    }
    if data.is_empty() {
        return Err(MlError::EmptyInput);
    }
    let mut leaderboard = Vec::with_capacity(grid.len());
    let mut best: Option<(usize, f64)> = None;
    for (i, spec) in grid.iter().enumerate() {
        let score = cv_f1(spec, data, folds, seed)?;
        leaderboard.push((spec.label(), score));
        if best.is_none_or(|(_, s)| score > s) {
            best = Some((i, score));
        }
    }
    let (best_i, best_score) = best.expect("non-empty grid");
    let mut model = grid[best_i].build(seed);
    model.fit(data)?;
    Ok(SearchResult {
        best_spec: grid[best_i].clone(),
        best_score,
        model,
        leaderboard,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn nonlinear(seed: u64, n: usize) -> Dataset {
        // Label = inside a band — trees handle it, linear models struggle.
        let mut rng = Rng::new(seed);
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let a = rng.f64_range(-3.0, 3.0);
            let b = rng.f64_range(-3.0, 3.0);
            rows.push(vec![a, b]);
            y.push(u8::from(a.abs() < 1.0 && b.abs() < 1.0));
        }
        Dataset::new(Matrix::from_rows(rows).unwrap(), y).unwrap()
    }

    #[test]
    fn search_picks_a_capable_model() {
        let data = nonlinear(1, 300);
        let result = grid_search(&default_grid(), &data, 3, 7).unwrap();
        assert!(result.best_score > 0.8, "best {}", result.best_score);
        // A tree-based model should beat linear ones on this geometry.
        assert!(matches!(
            result.best_spec,
            ModelSpec::DecisionTree { .. } | ModelSpec::RandomForest { .. } | ModelSpec::Knn { .. }
        ));
    }

    #[test]
    fn leaderboard_covers_grid() {
        let data = nonlinear(2, 200);
        let result = grid_search(&default_grid(), &data, 3, 1).unwrap();
        assert_eq!(result.leaderboard.len(), default_grid().len());
    }

    #[test]
    fn refit_model_predicts() {
        let data = nonlinear(3, 200);
        let result = grid_search(&default_grid(), &data, 3, 1).unwrap();
        assert_eq!(result.model.predict_row(&[0.0, 0.0]), 1);
        assert_eq!(result.model.predict_row(&[2.5, 2.5]), 0);
    }

    #[test]
    fn empty_grid_rejected() {
        let data = nonlinear(4, 50);
        assert!(grid_search(&[], &data, 3, 1).is_err());
    }

    #[test]
    fn single_class_data_is_degenerate() {
        let x = Matrix::from_rows(vec![vec![1.0]; 10]).unwrap();
        let data = Dataset::new(x, vec![0; 10]).unwrap();
        assert!(cv_f1(&ModelSpec::GaussianNb, &data, 3, 1).is_err());
    }

    #[test]
    fn random_search_finds_a_working_forest() {
        let data = nonlinear(7, 250);
        let result =
            random_search(|rng| sample_spec("RandomForest", rng), &data, 6, 3, 11).unwrap();
        assert!(result.best_score > 0.8, "best {}", result.best_score);
        assert!(matches!(result.best_spec, ModelSpec::RandomForest { .. }));
        assert_eq!(result.leaderboard.len(), 6);
    }

    #[test]
    fn successive_halving_converges_to_one_winner() {
        let data = nonlinear(8, 400);
        let result =
            successive_halving(|rng| sample_spec("DecisionTree", rng), &data, 8, 3, 13).unwrap();
        assert!(result.best_score > 0.8, "best {}", result.best_score);
        // Rungs were recorded.
        assert!(result.leaderboard.iter().any(|(l, _)| l.contains("@n=")));
    }

    #[test]
    fn search_rejects_zero_iterations() {
        let data = nonlinear(9, 50);
        assert!(random_search(|rng| sample_spec("KNN", rng), &data, 0, 3, 1).is_err());
        assert!(successive_halving(|rng| sample_spec("KNN", rng), &data, 0, 3, 1).is_err());
    }

    #[test]
    fn sample_spec_is_deterministic_per_seed() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        assert_eq!(
            sample_spec("RandomForest", &mut a),
            sample_spec("RandomForest", &mut b)
        );
    }

    #[test]
    fn committee_spec_builds_and_fits() {
        let data = nonlinear(5, 150);
        let mut model = ModelSpec::Committee.build(9);
        model.fit(&data).unwrap();
        let preds = model.predict(&data.x);
        let f1 = confusion(&preds, &data.y).f1();
        assert!(f1 > 0.7, "committee f1 {f1}");
    }
}
