//! CART decision trees (Gini impurity, binary splits on numeric features).

use lumen_util::Rng;

use crate::dataset::Dataset;
use crate::matrix::Matrix;
use crate::model::Classifier;
use crate::{MlError, MlResult};

/// Decision-tree hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must receive.
    pub min_samples_leaf: usize,
    /// Features considered per split; `None` = all (set by forests).
    pub max_features: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 1,
            max_features: None,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// P(label == 1) among training rows that reached this leaf.
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Index of the left child (`<= threshold`).
        left: usize,
        /// Index of the right child (`> threshold`).
        right: usize,
    },
}

/// A fitted CART classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Hyperparameters.
    pub config: TreeConfig,
    nodes: Vec<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree.
    pub fn new(config: TreeConfig) -> DecisionTree {
        DecisionTree {
            config,
            nodes: Vec::new(),
            n_features: 0,
        }
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Gini impurity of a (pos, total) count pair.
    fn gini(pos: f64, total: f64) -> f64 {
        if total <= 0.0 {
            return 0.0;
        }
        let p = pos / total;
        2.0 * p * (1.0 - p)
    }

    /// Finds the best (feature, threshold, weighted-gini) split for the rows
    /// in `idx`, or `None` when no valid split exists.
    fn best_split(
        &self,
        x: &Matrix,
        y: &[u8],
        idx: &[usize],
        rng: &mut Rng,
    ) -> Option<(usize, f64, f64)> {
        let n = idx.len() as f64;
        let total_pos: f64 = idx.iter().map(|&i| f64::from(y[i])).sum();
        if total_pos == 0.0 || total_pos == n {
            return None; // pure node
        }

        let features: Vec<usize> = match self.config.max_features {
            Some(k) if k < self.n_features => rng.sample_indices(self.n_features, k),
            _ => (0..self.n_features).collect(),
        };

        let mut best: Option<(usize, f64, f64)> = None;
        let min_leaf = self.config.min_samples_leaf as f64;
        // Reusable buffer of (value, label) pairs.
        let mut pairs: Vec<(f64, u8)> = Vec::with_capacity(idx.len());
        for &f in &features {
            pairs.clear();
            pairs.extend(idx.iter().map(|&i| (x.get(i, f), y[i])));
            pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut left_n = 0.0;
            let mut left_pos = 0.0;
            for w in 0..pairs.len() - 1 {
                left_n += 1.0;
                left_pos += f64::from(pairs[w].1);
                // Only split between distinct values.
                if pairs[w].0 == pairs[w + 1].0 {
                    continue;
                }
                let right_n = n - left_n;
                if left_n < min_leaf || right_n < min_leaf {
                    continue;
                }
                let right_pos = total_pos - left_pos;
                let score = (left_n / n) * Self::gini(left_pos, left_n)
                    + (right_n / n) * Self::gini(right_pos, right_n);
                if best.is_none_or(|(_, _, b)| score < b - 1e-15) {
                    let threshold = (pairs[w].0 + pairs[w + 1].0) / 2.0;
                    best = Some((f, threshold, score));
                }
            }
        }
        // Allow zero-gain splits (CART with min_impurity_decrease = 0):
        // greedy XOR-style structure only pays off two levels down.
        // Termination is safe — every split strictly shrinks both children.
        let parent = Self::gini(total_pos, n);
        best.filter(|&(_, _, s)| s <= parent + 1e-12)
    }

    fn build(
        &mut self,
        x: &Matrix,
        y: &[u8],
        idx: Vec<usize>,
        depth: usize,
        rng: &mut Rng,
    ) -> usize {
        let n = idx.len();
        let pos: usize = idx.iter().filter(|&&i| y[i] == 1).count();
        let make_leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf {
                prob: pos as f64 / n.max(1) as f64,
            });
            nodes.len() - 1
        };

        if depth >= self.config.max_depth || n < self.config.min_samples_split {
            return make_leaf(&mut self.nodes);
        }
        let Some((feature, threshold, _)) = self.best_split(x, y, &idx, rng) else {
            return make_leaf(&mut self.nodes);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .into_iter()
            .partition(|&i| x.get(i, feature) <= threshold);

        // Reserve this node's slot, then build children.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { prob: 0.0 });
        let left = self.build(x, y, left_idx, depth + 1, rng);
        let right = self.build(x, y, right_idx, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, data: &Dataset) -> MlResult<()> {
        if data.is_empty() {
            return Err(MlError::EmptyInput);
        }
        self.nodes.clear();
        self.n_features = data.x.cols();
        let mut rng = Rng::new(self.config.seed);
        let idx: Vec<usize> = (0..data.len()).collect();
        self.build(&data.x, &data.y, idx, 0, &mut rng);
        Ok(())
    }

    fn predict_row(&self, row: &[f64]) -> u8 {
        u8::from(self.score_row(row) >= 0.5)
    }

    fn score_row(&self, row: &[f64]) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "decision-tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Labels are 1 iff feature0 > 5 (with margin).
    fn separable() -> Dataset {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let v = i as f64;
            rows.push(vec![v, (i % 3) as f64]);
            y.push(u8::from(v > 5.0));
        }
        Dataset::new(Matrix::from_rows(rows).unwrap(), y).unwrap()
    }

    #[test]
    fn learns_threshold_rule() {
        let data = separable();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&data).unwrap();
        assert_eq!(t.predict_row(&[0.0, 0.0]), 0);
        assert_eq!(t.predict_row(&[100.0, 0.0]), 1);
        assert_eq!(t.predict_row(&[5.4, 1.0]), 0);
        assert_eq!(t.predict_row(&[5.6, 1.0]), 1);
    }

    #[test]
    fn perfect_training_accuracy_on_separable() {
        let data = separable();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&data).unwrap();
        let preds = t.predict(&data.x);
        assert_eq!(preds, data.y);
    }

    #[test]
    fn learns_xor_with_depth() {
        let rows = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0, 1, 1, 0];
        let data = Dataset::new(Matrix::from_rows(rows).unwrap(), y.clone()).unwrap();
        let mut t = DecisionTree::new(TreeConfig {
            min_samples_split: 2,
            ..TreeConfig::default()
        });
        t.fit(&data).unwrap();
        assert_eq!(t.predict(&data.x), y);
    }

    #[test]
    fn depth_zero_is_single_leaf_majority() {
        let data = separable();
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        });
        t.fit(&data).unwrap();
        assert_eq!(t.node_count(), 1);
        // 14 of 20 positive -> predicts 1 everywhere.
        assert_eq!(t.predict_row(&[0.0, 0.0]), 1);
    }

    #[test]
    fn pure_node_does_not_split() {
        let rows = vec![vec![1.0], vec![2.0], vec![3.0]];
        let data = Dataset::new(Matrix::from_rows(rows).unwrap(), vec![0, 0, 0]).unwrap();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&data).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict_row(&[2.0]), 0);
    }

    #[test]
    fn rejects_empty() {
        let data = Dataset::new(Matrix::zeros(0, 2), vec![]).unwrap();
        let mut t = DecisionTree::new(TreeConfig::default());
        assert_eq!(t.fit(&data).unwrap_err(), MlError::EmptyInput);
    }

    #[test]
    fn score_is_leaf_probability() {
        // Overlapping region: 3 pos, 1 neg at same x -> leaf prob 0.75.
        let rows = vec![vec![1.0]; 4];
        let data = Dataset::new(Matrix::from_rows(rows).unwrap(), vec![1, 1, 1, 0]).unwrap();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&data).unwrap();
        assert!((t.score_row(&[1.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let data = separable();
        let mut t = DecisionTree::new(TreeConfig {
            min_samples_leaf: 8,
            ..TreeConfig::default()
        });
        t.fit(&data).unwrap();
        // With 20 rows and >=8 per leaf, at most one split is possible.
        assert!(t.node_count() <= 3);
    }
}
