//! Batch-vs-row and scalar-vs-SIMD equivalence over the model zoo.
//!
//! The batched inference contract (DESIGN.md §4j) is *bitwise*: for every
//! model family, `predict`/`scores`/`anomaly_scores` on a whole matrix must
//! return exactly the same bits as the row-at-a-time path, and the answer
//! must not depend on which kernel backend (scalar, AVX2, NEON) or thread
//! count executed it. These tests pin the contract with plain deterministic
//! sweeps — shapes chosen to hit every SIMD remainder lane — rather than
//! sampled property tests, so the file runs identically everywhere
//! (including hosts without AVX2/NEON, where the dispatcher falls back to
//! scalar and the cross-backend assertions degenerate to scalar == scalar).

use lumen_ml::autoencoder::{Autoencoder, AutoencoderConfig};
use lumen_ml::gmm::{Gmm, GmmConfig};
use lumen_ml::kernels::{self, Backend, BackendMode};
use lumen_ml::kitnet::{Kitnet, KitnetConfig};
use lumen_ml::knn::{Knn, KnnConfig};
use lumen_ml::linear::{LinearSvm, LogisticRegression, SgdConfig};
use lumen_ml::nystroem::{NystroemConfig, NystroemDetector};
use lumen_ml::ocsvm::{OcsvmConfig, OneClassSvm};
use lumen_ml::{AnomalyDetector, Classifier, Dataset, Matrix};
use std::sync::Mutex;

/// Serializes tests that flip the process-global backend mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Restores `BackendMode::Auto` even if the test panics, so a failure here
/// cannot leak a forced-scalar mode into unrelated tests.
struct ModeGuard;
impl Drop for ModeGuard {
    fn drop(&mut self) {
        kernels::set_backend_mode(BackendMode::Auto);
    }
}

/// xorshift64* — deterministic test-data generator, no external deps.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Benign manifold: each row sits near a 1-D curve through `d`-space with
/// small iid noise, so one-class detectors fit something non-degenerate.
fn benign_matrix(seed: u64, n: usize, d: usize) -> Matrix {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let t = rng.next_f64();
        let mut row = Vec::with_capacity(d);
        for j in 0..d {
            let base = if j % 2 == 0 { t } else { 1.0 - t };
            row.push(base * (1.0 + j as f64 * 0.1) + 0.01 * (rng.next_f64() - 0.5));
        }
        rows.push(row);
    }
    Matrix::from_rows(rows).expect("benign matrix")
}

/// Query set: benign-like rows plus off-manifold outliers, so scores span
/// both sides of any calibrated threshold.
fn query_matrix(seed: u64, n: usize, d: usize) -> Matrix {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let mut row = Vec::with_capacity(d);
        if i % 4 == 3 {
            for _ in 0..d {
                row.push(4.0 * rng.next_f64() - 2.0);
            }
        } else {
            let t = rng.next_f64();
            for j in 0..d {
                let base = if j % 2 == 0 { t } else { 1.0 - t };
                row.push(base * (1.0 + j as f64 * 0.1) + 0.01 * (rng.next_f64() - 0.5));
            }
        }
        rows.push(row);
    }
    Matrix::from_rows(rows).expect("query matrix")
}

/// Linearly separable labeled problem (with margin) for the classifiers.
fn labeled_dataset(seed: u64, n: usize, d: usize) -> Dataset {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut i = 0;
    while rows.len() < n {
        let mut row: Vec<f64> = (0..d).map(|_| 2.0 * rng.next_f64() - 1.0).collect();
        let margin = 2.0 * row[0] - row[1 % d];
        if margin.abs() < 0.2 {
            i += 1;
            assert!(i < 100 * n, "rejection sampling stalled");
            continue;
        }
        row[0] += 0.05; // break exact symmetry between the classes
        y.push(u8::from(margin > 0.0));
        rows.push(row);
    }
    Dataset::new(Matrix::from_rows(rows).expect("x"), y).expect("dataset")
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Kernel primitives: the detected SIMD backend must agree bitwise with the
/// scalar reference on shapes covering every remainder width (d mod 8 and
/// m mod 4), at more than one thread count.
#[test]
fn kernel_ops_bit_identical_scalar_vs_detected_backend() {
    let det = kernels::detected_backend();
    for &d in &[1usize, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33] {
        let a = benign_matrix(11 + d as u64, 13, d);
        let b = query_matrix(23 + d as u64, 18, d);
        for &threads in &[1usize, 3] {
            let sn_s = kernels::sq_norms_with(Backend::Scalar, &a);
            let sn_v = kernels::sq_norms_with(det, &a);
            assert_eq!(bits(&sn_s), bits(&sn_v), "sq_norms d={d}");

            let mm_s = kernels::matmul_bt_with(Backend::Scalar, &a, &b, threads).expect("mm");
            let mm_v = kernels::matmul_bt_with(det, &a, &b, threads).expect("mm");
            assert_eq!(
                bits(mm_s.as_slice()),
                bits(mm_v.as_slice()),
                "matmul_bt d={d} threads={threads}"
            );

            let pd_s =
                kernels::pairwise_sq_dists_with(Backend::Scalar, &a, &b, threads).expect("pd");
            let pd_v = kernels::pairwise_sq_dists_with(det, &a, &b, threads).expect("pd");
            assert_eq!(
                bits(pd_s.as_slice()),
                bits(pd_v.as_slice()),
                "pairwise d={d} threads={threads}"
            );
        }
    }
}

fn detector_zoo() -> Vec<Box<dyn AnomalyDetector>> {
    vec![
        Box::new(Gmm::new(GmmConfig {
            n_components: 2,
            max_iter: 10,
            ..GmmConfig::default()
        })),
        Box::new(OneClassSvm::new(OcsvmConfig {
            epochs: 10,
            ..OcsvmConfig::default()
        })),
        Box::new(Autoencoder::new(AutoencoderConfig {
            hidden: vec![3],
            epochs: 15,
            ..AutoencoderConfig::default()
        })),
        Box::new(Kitnet::new(KitnetConfig {
            epochs: 8,
            ..KitnetConfig::default()
        })),
        Box::new(NystroemDetector::ocsvm(
            NystroemConfig {
                n_components: 16,
                ..NystroemConfig::default()
            },
            OcsvmConfig {
                epochs: 10,
                kernel: lumen_ml::ocsvm::OcsvmKernel::Linear,
                ..OcsvmConfig::default()
            },
        )),
    ]
}

fn classifier_zoo() -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(Knn::new(KnnConfig {
            k: 3,
            ..KnnConfig::default()
        })),
        Box::new(LogisticRegression::new(SgdConfig::default())),
        Box::new(LinearSvm::new(SgdConfig::default())),
    ]
}

/// For every anomaly detector: batch scoring equals row-at-a-time scoring
/// bitwise, and the whole fit+score pipeline produces identical bits under
/// forced-scalar and auto (SIMD) dispatch.
#[test]
fn detector_batch_equals_rows_and_backends_agree() {
    let _lock = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ModeGuard;

    let d = 7; // odd width: every dot product exercises the remainder tail
    let train = benign_matrix(101, 160, d);
    let query = query_matrix(202, 57, d);

    let mut per_mode: Vec<Vec<Vec<u64>>> = Vec::new();
    for mode in [BackendMode::ForceScalar, BackendMode::Auto] {
        kernels::set_backend_mode(mode);
        let mut mode_bits = Vec::new();
        for mut det in detector_zoo() {
            det.fit_benign(&train).expect("fit_benign");
            let batch = det.anomaly_scores(&query);
            assert_eq!(batch.len(), query.rows(), "{} batch len", det.name());
            let rowwise: Vec<f64> = query.rows_iter().map(|r| det.anomaly_score(r)).collect();
            assert_eq!(
                bits(&batch),
                bits(&rowwise),
                "{} batch != row under {mode:?}",
                det.name()
            );
            mode_bits.push(bits(&batch));
        }
        per_mode.push(mode_bits);
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "detector scores differ between forced-scalar and auto dispatch"
    );
}

/// For every classifier: batch `predict`/`scores` equal the row-at-a-time
/// path bitwise, and labels are identical across backend modes.
#[test]
fn classifier_batch_equals_rows_and_backends_agree() {
    let _lock = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ModeGuard;

    let d = 5;
    let data = labeled_dataset(303, 180, d);
    let query = query_matrix(404, 49, d);

    let mut per_mode: Vec<Vec<(Vec<u8>, Vec<u64>)>> = Vec::new();
    for mode in [BackendMode::ForceScalar, BackendMode::Auto] {
        kernels::set_backend_mode(mode);
        let mut mode_out = Vec::new();
        for mut clf in classifier_zoo() {
            clf.fit(&data).expect("fit");
            let labels = clf.predict(&query);
            let scores = clf.scores(&query);
            let row_labels: Vec<u8> = query.rows_iter().map(|r| clf.predict_row(r)).collect();
            let row_scores: Vec<f64> = query.rows_iter().map(|r| clf.score_row(r)).collect();
            assert_eq!(labels, row_labels, "{} labels batch != row", clf.name());
            assert_eq!(
                bits(&scores),
                bits(&row_scores),
                "{} scores batch != row under {mode:?}",
                clf.name()
            );
            mode_out.push((labels, bits(&scores)));
        }
        per_mode.push(mode_out);
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "classifier output differs between forced-scalar and auto dispatch"
    );
}

/// Batch scores must not depend on the worker-thread count, in either
/// backend mode: the block-deterministic reductions make (backend, threads)
/// a pure performance knob.
#[test]
fn batch_scores_bit_identical_across_thread_counts_and_modes() {
    let _lock = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _guard = ModeGuard;

    let d = 9;
    let train = benign_matrix(505, 120, d);
    let query = query_matrix(606, 41, d);
    let data = labeled_dataset(707, 150, d);

    for mode in [BackendMode::ForceScalar, BackendMode::Auto] {
        kernels::set_backend_mode(mode);
        let mut gmm_runs = Vec::new();
        let mut knn_runs = Vec::new();
        for &threads in &[1usize, 2, 5] {
            let mut gmm = Gmm::new(GmmConfig {
                n_components: 2,
                max_iter: 8,
                threads,
                ..GmmConfig::default()
            });
            gmm.fit_benign(&train).expect("gmm fit");
            gmm_runs.push(bits(&gmm.anomaly_scores(&query)));

            let mut knn = Knn::new(KnnConfig {
                k: 3,
                threads,
                ..KnnConfig::default()
            });
            knn.fit(&data).expect("knn fit");
            knn_runs.push(bits(&knn.scores(&query)));
        }
        for run in &gmm_runs[1..] {
            assert_eq!(&gmm_runs[0], run, "gmm scores vary with threads in {mode:?}");
        }
        for run in &knn_runs[1..] {
            assert_eq!(&knn_runs[0], run, "knn scores vary with threads in {mode:?}");
        }
    }
}
