//! Property-based tests for the shared compute-kernel layer: the blocked
//! kernels must agree with the naive scalar references on arbitrary shapes
//! (including empty, 1×1, non-square, and k > n), and every parallel model
//! must produce bit-identical predictions at any thread count.

use proptest::prelude::*;

use lumen_ml::dataset::Dataset;
use lumen_ml::gmm::{Gmm, GmmConfig};
use lumen_ml::kernels::{self, reference};
use lumen_ml::knn::{Knn, KnnConfig};
use lumen_ml::matrix::Matrix;
use lumen_ml::model::{AnomalyDetector, Classifier};
use lumen_ml::nystroem::{Nystroem, NystroemConfig};
use lumen_ml::ocsvm::{OcsvmConfig, OneClassSvm};
use lumen_ml::preprocess::Transform;
use lumen_util::Rng;

/// Arbitrary matrix of any shape from 0×0 up — empty and degenerate
/// shapes included on purpose.
fn arb_any_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (0..=max_rows, 0..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1e3f64..1e3, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::new(seed);
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.f64_range(-3.0, 3.0))
        .collect();
    Matrix::from_vec(rows, cols, data).unwrap()
}

proptest! {
    /// Blocked, transpose-packed matmul agrees with the triple loop on any
    /// conformable shapes at any thread count.
    #[test]
    fn matmul_matches_reference(
        (a, b) in (0usize..14, 0usize..10, 0usize..12).prop_flat_map(|(n, k, m)| {
            (
                proptest::collection::vec(-1e3f64..1e3, n * k)
                    .prop_map(move |d| Matrix::from_vec(n, k, d).unwrap()),
                proptest::collection::vec(-1e3f64..1e3, k * m)
                    .prop_map(move |d| Matrix::from_vec(k, m, d).unwrap()),
            )
        }),
        threads in 1usize..9,
    ) {
        let fast = kernels::matmul(&a, &b, threads).unwrap();
        let slow = reference::matmul(&a, &b).unwrap();
        prop_assert_eq!((fast.rows(), fast.cols()), (slow.rows(), slow.cols()));
        for i in 0..fast.rows() {
            for j in 0..fast.cols() {
                prop_assert!(
                    (fast.get(i, j) - slow.get(i, j)).abs() <= 1e-9,
                    "cell ({i},{j}): {} vs {}", fast.get(i, j), slow.get(i, j)
                );
            }
        }
    }

    /// The Gram-expansion distance kernel agrees with the per-element
    /// difference loop and never returns a negative value.
    #[test]
    fn pairwise_matches_reference(
        a in arb_any_matrix(12, 8),
        b_rows in 0usize..10,
        seed in any::<u64>(),
        threads in 1usize..9,
    ) {
        let b = {
            let mut rng = Rng::new(seed);
            let data: Vec<f64> = (0..b_rows * a.cols())
                .map(|_| rng.f64_range(-1e3, 1e3))
                .collect();
            Matrix::from_vec(b_rows, a.cols(), data).unwrap()
        };
        let fast = kernels::pairwise_sq_dists(&a, &b, threads).unwrap();
        let slow = reference::pairwise_sq_dists(&a, &b).unwrap();
        prop_assert_eq!((fast.rows(), fast.cols()), (a.rows(), b.rows()));
        let norm = |m: &Matrix, i: usize| m.row(i).iter().map(|v| v * v).sum::<f64>();
        for i in 0..fast.rows() {
            for j in 0..fast.cols() {
                prop_assert!(fast.get(i, j) >= 0.0);
                // The expansion's absolute error scales with the Gram
                // terms' magnitude (the row norms), not the distance.
                let scale = 1.0 + norm(&a, i) + norm(&b, j);
                prop_assert!(
                    (fast.get(i, j) - slow.get(i, j)).abs() <= 1e-9 * scale,
                    "cell ({i},{j}): {} vs {}", fast.get(i, j), slow.get(i, j)
                );
            }
        }
    }

    /// Blocked transpose round-trips and matches per-element access.
    #[test]
    fn transpose_matches_naive(m in arb_any_matrix(40, 40)) {
        let t = kernels::transpose(&m);
        prop_assert_eq!((t.rows(), t.cols()), (m.cols(), m.rows()));
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                prop_assert_eq!(t.get(j, i), m.get(i, j));
            }
        }
        prop_assert_eq!(kernels::transpose(&t), m);
    }

    /// kNN scoring survives k larger than the stored training set (k is
    /// clamped) and stays bit-identical across thread counts.
    #[test]
    fn knn_k_exceeding_n_is_clamped(
        n in 1usize..8,
        k in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let x = random_matrix(n, 3, seed);
        let y: Vec<u8> = (0..n).map(|_| u8::from(rng.chance(0.5))).collect();
        let mut knn = Knn::new(KnnConfig { k, max_train: 64, threads: 1 });
        knn.fit(&Dataset::new(x.clone(), y).unwrap()).unwrap();
        let s1 = knn.scores(&x);
        prop_assert_eq!(s1.len(), n);
        prop_assert!(s1.iter().all(|s| (0.0..=1.0).contains(s)));
        for threads in [2usize, 8] {
            let mut knn_t = Knn::new(KnnConfig { k, max_train: 64, threads });
            knn_t.fit(&Dataset::new(x.clone(), {
                let mut rng = Rng::new(seed);
                (0..n).map(|_| u8::from(rng.chance(0.5))).collect()
            }).unwrap()).unwrap();
            let st = knn_t.scores(&x);
            prop_assert_eq!(&st, &s1);
        }
    }
}

/// Fits each model at the given worker count and returns its scores on a
/// held-out batch. Seeds are fixed so any score difference can only come
/// from the thread count.
fn model_scores(threads: usize) -> Vec<Vec<f64>> {
    let train = random_matrix(300, 6, 11);
    let test = random_matrix(80, 6, 12);
    let mut out = Vec::new();

    let mut rng = Rng::new(13);
    let labels: Vec<u8> = (0..train.rows()).map(|_| u8::from(rng.chance(0.5))).collect();
    let mut knn = Knn::new(KnnConfig { k: 5, max_train: 1000, threads });
    knn.fit(&Dataset::new(train.clone(), labels).unwrap()).unwrap();
    out.push(knn.scores(&test));

    let mut gmm = Gmm::new(GmmConfig { n_components: 3, threads, ..GmmConfig::default() });
    gmm.fit_benign(&train).unwrap();
    out.push(gmm.anomaly_scores(&test));

    let mut svm = OneClassSvm::new(OcsvmConfig { epochs: 10, threads, ..OcsvmConfig::default() });
    svm.fit_benign(&train).unwrap();
    out.push(svm.anomaly_scores(&test));

    let mut nys = Nystroem::new(NystroemConfig { n_components: 24, threads, ..NystroemConfig::default() });
    let mapped = nys.fit_transform(&train).unwrap();
    out.push(mapped.as_slice().to_vec());
    out.push(nys.transform(&test).as_slice().to_vec());
    out
}

/// The headline determinism guarantee: model predictions are bit-identical
/// for 1, 2 and 8 worker threads.
#[test]
fn model_scores_bit_identical_across_threads() {
    let base = model_scores(1);
    for threads in [2usize, 8] {
        let other = model_scores(threads);
        assert_eq!(base.len(), other.len());
        for (mi, (a, b)) in base.iter().zip(&other).enumerate() {
            assert_eq!(a.len(), b.len(), "model {mi} length");
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "model {mi} score {i}: {x} vs {y} at {threads} threads"
                );
            }
        }
    }
}
