//! Property-based tests for the ML substrate's core invariants.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;

use lumen_ml::dataset::Dataset;
use lumen_ml::matrix::Matrix;
use lumen_ml::metrics::{confusion, roc_auc};
use lumen_ml::model::Classifier;
use lumen_ml::preprocess::{MinMaxScaler, StandardScaler, Transform};
use lumen_ml::tree::{DecisionTree, TreeConfig};
use lumen_util::Rng;

fn arb_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix> {
    (2usize..max_rows, 1usize..max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-1e4f64..1e4, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    /// Transpose is an involution and matmul with identity is identity.
    #[test]
    fn matrix_algebra_identities(m in arb_matrix(12, 8)) {
        prop_assert_eq!(m.transpose().transpose(), m.clone());
        let id = Matrix::identity(m.cols());
        let prod = m.matmul(&id).unwrap();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                prop_assert!((prod.get(r, c) - m.get(r, c)).abs() < 1e-9);
            }
        }
    }

    /// The symmetric eigensolver reconstructs its input: A = V Λ Vᵀ.
    #[test]
    fn eigh_reconstruction(seed in any::<u64>(), n in 2usize..6) {
        let mut rng = Rng::new(seed);
        // Build a random symmetric matrix.
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = rng.normal_with(0.0, 2.0);
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        let (vals, vecs) = a.eigh_symmetric().unwrap();
        // Eigenvalues descending.
        for w in vals.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l.set(i, i, vals[i]);
        }
        let recon = vecs.matmul(&l).unwrap().matmul(&vecs.transpose()).unwrap();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((recon.get(i, j) - a.get(i, j)).abs() < 1e-6,
                    "cell ({i},{j}): {} vs {}", recon.get(i, j), a.get(i, j));
            }
        }
    }

    /// Scalers are shape-preserving and min-max lands training data in
    /// [0, 1] for any input.
    #[test]
    fn scalers_preserve_shape_and_range(m in arb_matrix(20, 6)) {
        let z = StandardScaler::default().fit_transform(&m).unwrap();
        prop_assert_eq!(z.rows(), m.rows());
        prop_assert_eq!(z.cols(), m.cols());
        let mm = MinMaxScaler::default().fit_transform(&m).unwrap();
        for r in 0..mm.rows() {
            for c in 0..mm.cols() {
                let v = mm.get(r, c);
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "minmax {v}");
            }
        }
    }

    /// A decision tree achieves perfect training accuracy whenever the data
    /// is consistent (no two identical rows with different labels) — here
    /// guaranteed by labeling with a function of the features.
    #[test]
    fn tree_fits_consistent_data(seed in any::<u64>(), n in 4usize..60) {
        let mut rng = Rng::new(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.f64_range(-5.0, 5.0), rng.f64_range(-5.0, 5.0)])
            .collect();
        let y: Vec<u8> = rows
            .iter()
            .map(|r| u8::from(r[0] + r[1] > 0.0))
            .collect();
        let data = Dataset::new(Matrix::from_rows(rows).unwrap(), y.clone()).unwrap();
        let mut tree = DecisionTree::new(TreeConfig {
            max_depth: 64,
            min_samples_split: 2,
            ..TreeConfig::default()
        });
        tree.fit(&data).unwrap();
        prop_assert_eq!(tree.predict(&data.x), y);
    }

    /// AUC is invariant under any strictly monotone transform of scores.
    #[test]
    fn auc_monotone_invariance(
        scores in proptest::collection::vec(-10.0f64..10.0, 4..60),
        seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(seed);
        let truth: Vec<u8> = scores.iter().map(|_| u8::from(rng.chance(0.4))).collect();
        let a = roc_auc(&scores, &truth);
        let transformed: Vec<f64> = scores.iter().map(|s| (s * 0.3).exp() + 5.0).collect();
        let b = roc_auc(&transformed, &truth);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// Confusion counts always total the instance count, and accuracy is
    /// consistent with them.
    #[test]
    fn confusion_totals(
        pred in proptest::collection::vec(0u8..=1, 1..80),
        truth_seed in any::<u64>(),
    ) {
        let mut rng = Rng::new(truth_seed);
        let truth: Vec<u8> = pred.iter().map(|_| u8::from(rng.chance(0.5))).collect();
        let c = confusion(&pred, &truth);
        prop_assert_eq!((c.tp + c.fp + c.tn + c.fn_) as usize, pred.len());
        let acc = (c.tp + c.tn) as f64 / pred.len() as f64;
        prop_assert!((c.accuracy() - acc).abs() < 1e-12);
    }

    /// k-fold CV index sets are a partition for any n, k.
    #[test]
    fn kfold_partitions(n in 2usize..200, k in 2usize..8, seed in any::<u64>()) {
        let folds = lumen_ml::dataset::kfold(n, k, &mut Rng::new(seed));
        let mut seen = vec![0u32; n];
        for (train, val) in &folds {
            prop_assert_eq!(train.len() + val.len(), n);
            for &i in val {
                seen[i] += 1;
            }
            // Train and validation are disjoint.
            let tset: std::collections::HashSet<_> = train.iter().collect();
            prop_assert!(val.iter().all(|i| !tset.contains(i)));
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }
}
