//! Whole-frame constructors with correct lengths and checksums.
//!
//! The traffic synthesizer builds every packet through these helpers, so all
//! generated captures are byte-valid: parseable by this crate's checked
//! wrappers and by external tools (tcpdump/Wireshark) alike.

use std::net::Ipv4Addr;

use crate::wire::{
    arp::{ArpOperation, ArpPacket, PACKET_LEN as ARP_LEN},
    dot11::{subtype, Dot11Frame, Dot11Type, HEADER_LEN as DOT11_HDR},
    ethernet::{EtherType, EthernetFrame, HEADER_LEN as ETH_HDR},
    icmpv4::{icmp_type, Icmpv4Packet, HEADER_LEN as ICMP_HDR},
    ipv4::{protocol, Ipv4Packet, MIN_HEADER_LEN as IP_HDR},
    tcp::{TcpFlags, TcpSegment, MIN_HEADER_LEN as TCP_HDR},
    udp::{UdpDatagram, HEADER_LEN as UDP_HDR},
    MacAddr,
};

/// Parameters for [`tcp_packet`].
#[derive(Debug, Clone, Copy)]
pub struct TcpParams<'a> {
    pub src_mac: MacAddr,
    pub dst_mac: MacAddr,
    pub src_ip: Ipv4Addr,
    pub dst_ip: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub seq: u32,
    pub ack: u32,
    pub flags: TcpFlags,
    pub window: u16,
    pub ttl: u8,
    pub payload: &'a [u8],
}

/// Builds a complete Ethernet/IPv4/TCP frame.
pub fn tcp_packet(p: TcpParams<'_>) -> Vec<u8> {
    let ip_total = IP_HDR + TCP_HDR + p.payload.len();
    let mut buf = vec![0u8; ETH_HDR + ip_total];

    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_dst(p.dst_mac);
    eth.set_src(p.src_mac);
    eth.set_ethertype(EtherType::Ipv4);

    let mut ip = Ipv4Packet::new_unchecked(eth.payload_mut());
    ip.set_version_and_header_len(IP_HDR)
        .expect("IP_HDR is a valid header length"); // panic-audit: allowed (const header length)
    ip.set_dscp(0);
    ip.set_total_length(ip_total as u16);
    ip.set_identification((p.seq & 0xFFFF) as u16);
    ip.set_dont_frag(true);
    ip.set_ttl(p.ttl);
    ip.set_protocol(protocol::TCP);
    ip.set_src(p.src_ip);
    ip.set_dst(p.dst_ip);
    ip.fill_checksum();

    let mut tcp = TcpSegment::new_unchecked(ip.payload_mut());
    tcp.set_src_port(p.src_port);
    tcp.set_dst_port(p.dst_port);
    tcp.set_seq(p.seq);
    tcp.set_ack(p.ack);
    tcp.set_header_len(TCP_HDR)
        .expect("TCP_HDR is a valid header length"); // panic-audit: allowed (const header length)
    tcp.set_flags(p.flags);
    tcp.set_window(p.window);
    tcp.payload_mut().copy_from_slice(p.payload);
    tcp.fill_checksum(p.src_ip, p.dst_ip);

    buf
}

/// Parameters for [`udp_packet`].
#[derive(Debug, Clone, Copy)]
pub struct UdpParams<'a> {
    pub src_mac: MacAddr,
    pub dst_mac: MacAddr,
    pub src_ip: Ipv4Addr,
    pub dst_ip: Ipv4Addr,
    pub src_port: u16,
    pub dst_port: u16,
    pub ttl: u8,
    pub payload: &'a [u8],
}

/// Builds a complete Ethernet/IPv4/UDP frame.
pub fn udp_packet(p: UdpParams<'_>) -> Vec<u8> {
    let udp_len = UDP_HDR + p.payload.len();
    let ip_total = IP_HDR + udp_len;
    let mut buf = vec![0u8; ETH_HDR + ip_total];

    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_dst(p.dst_mac);
    eth.set_src(p.src_mac);
    eth.set_ethertype(EtherType::Ipv4);

    let mut ip = Ipv4Packet::new_unchecked(eth.payload_mut());
    ip.set_version_and_header_len(IP_HDR)
        .expect("IP_HDR is a valid header length"); // panic-audit: allowed (const header length)
    ip.set_total_length(ip_total as u16);
    ip.set_identification((p.payload.len() as u16).wrapping_mul(31));
    ip.set_dont_frag(true);
    ip.set_ttl(p.ttl);
    ip.set_protocol(protocol::UDP);
    ip.set_src(p.src_ip);
    ip.set_dst(p.dst_ip);
    ip.fill_checksum();

    let mut udp = UdpDatagram::new_unchecked(ip.payload_mut());
    udp.set_src_port(p.src_port);
    udp.set_dst_port(p.dst_port);
    udp.set_length(udp_len as u16);
    udp.payload_mut().copy_from_slice(p.payload);
    udp.fill_checksum(p.src_ip, p.dst_ip);

    buf
}

/// Builds an Ethernet/IPv4/ICMP echo request or reply.
#[allow(clippy::too_many_arguments)] // mirrors the wire fields one-to-one
pub fn icmp_echo(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    reply: bool,
    id: u16,
    seq: u16,
    payload: &[u8],
) -> Vec<u8> {
    let icmp_len = ICMP_HDR + payload.len();
    let ip_total = IP_HDR + icmp_len;
    let mut buf = vec![0u8; ETH_HDR + ip_total];

    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_dst(dst_mac);
    eth.set_src(src_mac);
    eth.set_ethertype(EtherType::Ipv4);

    let mut ip = Ipv4Packet::new_unchecked(eth.payload_mut());
    ip.set_version_and_header_len(IP_HDR)
        .expect("IP_HDR is a valid header length"); // panic-audit: allowed (const header length)
    ip.set_total_length(ip_total as u16);
    ip.set_identification(id ^ seq);
    ip.set_dont_frag(false);
    ip.set_ttl(64);
    ip.set_protocol(protocol::ICMP);
    ip.set_src(src_ip);
    ip.set_dst(dst_ip);
    ip.fill_checksum();

    let mut icmp = Icmpv4Packet::new_unchecked(ip.payload_mut());
    icmp.set_msg_type(if reply {
        icmp_type::ECHO_REPLY
    } else {
        icmp_type::ECHO_REQUEST
    });
    icmp.set_code(0);
    icmp.set_echo_id(id);
    icmp.set_echo_seq(seq);
    icmp.payload_mut().copy_from_slice(payload);
    icmp.fill_checksum();

    buf
}

/// Builds an Ethernet/ARP frame. For requests, `dst_mac` is typically
/// broadcast and the target MAC is zero; for (spoofed) replies both sides are
/// unicast.
pub fn arp_packet(
    sender_mac: MacAddr,
    sender_ip: Ipv4Addr,
    dst_mac: MacAddr,
    target_ip: Ipv4Addr,
    op: ArpOperation,
) -> Vec<u8> {
    let mut buf = vec![0u8; ETH_HDR + ARP_LEN];
    let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
    eth.set_dst(dst_mac);
    eth.set_src(sender_mac);
    eth.set_ethertype(EtherType::Arp);

    let mut arp = ArpPacket::new_unchecked(eth.payload_mut());
    arp.fill_preamble();
    arp.set_operation(op);
    arp.set_sender_mac(sender_mac);
    arp.set_sender_ip(sender_ip);
    arp.set_target_mac(if op == ArpOperation::Request {
        MacAddr::ZERO
    } else {
        dst_mac
    });
    arp.set_target_ip(target_ip);
    buf
}

/// Builds an 802.11 deauthentication frame.
pub fn dot11_deauth(victim: MacAddr, bssid: MacAddr, reason: u16, seq: u16) -> Vec<u8> {
    let mut buf = vec![0u8; DOT11_HDR + 2];
    let mut f = Dot11Frame::new_unchecked(&mut buf[..]);
    f.set_frame_control(Dot11Type::Management, subtype::DEAUTHENTICATION);
    f.set_duration(314);
    f.set_addr1(victim);
    f.set_addr2(bssid);
    f.set_addr3(bssid);
    f.set_sequence(seq);
    f.body_mut().copy_from_slice(&reason.to_le_bytes());
    buf
}

/// Builds an 802.11 beacon with an SSID information element.
pub fn dot11_beacon(bssid: MacAddr, ssid: &[u8], seq: u16) -> Vec<u8> {
    // Fixed params: 8B timestamp, 2B interval, 2B capabilities; then IE 0.
    let body_len = 12 + 2 + ssid.len();
    let mut buf = vec![0u8; DOT11_HDR + body_len];
    let mut f = Dot11Frame::new_unchecked(&mut buf[..]);
    f.set_frame_control(Dot11Type::Management, subtype::BEACON);
    f.set_addr1(MacAddr::BROADCAST);
    f.set_addr2(bssid);
    f.set_addr3(bssid);
    f.set_sequence(seq);
    let body = f.body_mut();
    body[8..10].copy_from_slice(&100u16.to_le_bytes()); // beacon interval
    body[10..12].copy_from_slice(&0x0431u16.to_le_bytes()); // capabilities
    body[12] = 0; // IE: SSID
    body[13] = ssid.len() as u8;
    body[14..].copy_from_slice(ssid);
    buf
}

/// Builds an 802.11 data frame with an opaque body.
pub fn dot11_data(src: MacAddr, dst: MacAddr, bssid: MacAddr, seq: u16, body: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; DOT11_HDR + body.len()];
    let mut f = Dot11Frame::new_unchecked(&mut buf[..]);
    f.set_frame_control(Dot11Type::Data, subtype::DATA);
    f.set_addr1(dst);
    f.set_addr2(src);
    f.set_addr3(bssid);
    f.set_sequence(seq);
    f.body_mut().copy_from_slice(body);
    buf
}

/// Application-layer payload builders. These produce plausible bytes for the
/// protocols the benchmark datasets feature (DNS/HTTP/MQTT/NTP/SSDP), enough
/// for payload-sensitive features (lengths, byte entropy, leading bytes) to
/// behave realistically.
pub mod payloads {
    /// Encodes a DNS query for `name` (A record, recursion desired).
    pub fn dns_query(txid: u16, name: &str) -> Vec<u8> {
        let mut p = Vec::with_capacity(17 + name.len());
        p.extend_from_slice(&txid.to_be_bytes());
        p.extend_from_slice(&0x0100u16.to_be_bytes()); // RD
        p.extend_from_slice(&1u16.to_be_bytes()); // QDCOUNT
        p.extend_from_slice(&[0; 6]); // AN/NS/AR
        for label in name.split('.') {
            p.push(label.len() as u8);
            p.extend_from_slice(label.as_bytes());
        }
        p.push(0);
        p.extend_from_slice(&1u16.to_be_bytes()); // QTYPE A
        p.extend_from_slice(&1u16.to_be_bytes()); // QCLASS IN
        p
    }

    /// Encodes a minimal DNS response mirroring a query's transaction id.
    pub fn dns_response(txid: u16, name: &str, addr: [u8; 4]) -> Vec<u8> {
        let mut p = dns_query(txid, name);
        p[2] = 0x81; // QR + RD
        p[3] = 0x80; // RA
        p[7] = 1; // ANCOUNT = 1
        p.extend_from_slice(&[0xC0, 0x0C]); // name pointer
        p.extend_from_slice(&1u16.to_be_bytes());
        p.extend_from_slice(&1u16.to_be_bytes());
        p.extend_from_slice(&300u32.to_be_bytes());
        p.extend_from_slice(&4u16.to_be_bytes());
        p.extend_from_slice(&addr);
        p
    }

    /// An HTTP/1.1 GET request line + headers.
    pub fn http_get(host: &str, path: &str) -> Vec<u8> {
        format!("GET {path} HTTP/1.1\r\nHost: {host}\r\nUser-Agent: lumen-iot/1.0\r\nAccept: */*\r\nConnection: keep-alive\r\n\r\n")
            .into_bytes()
    }

    /// An HTTP/1.1 POST (used by web-attack traffic with injected bodies).
    pub fn http_post(host: &str, path: &str, body: &str) -> Vec<u8> {
        format!(
            "POST {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    /// A 200 OK response with `len` body bytes of the given fill.
    pub fn http_ok(len: usize, fill: u8) -> Vec<u8> {
        let mut p =
            format!("HTTP/1.1 200 OK\r\nServer: lumen-httpd\r\nContent-Length: {len}\r\n\r\n")
                .into_bytes();
        p.extend(std::iter::repeat_n(fill, len));
        p
    }

    /// An MQTT PUBLISH packet (QoS 0) to `topic`.
    pub fn mqtt_publish(topic: &str, message: &[u8]) -> Vec<u8> {
        let remaining = 2 + topic.len() + message.len();
        assert!(remaining < 128, "single-byte remaining-length only");
        let mut p = Vec::with_capacity(2 + remaining);
        p.push(0x30); // PUBLISH, QoS 0
        p.push(remaining as u8);
        p.extend_from_slice(&(topic.len() as u16).to_be_bytes());
        p.extend_from_slice(topic.as_bytes());
        p.extend_from_slice(message);
        p
    }

    /// An MQTT CONNECT packet with the given client id.
    pub fn mqtt_connect(client_id: &str) -> Vec<u8> {
        let remaining = 10 + 2 + client_id.len();
        assert!(remaining < 128);
        let mut p = vec![0x10, remaining as u8];
        p.extend_from_slice(&4u16.to_be_bytes());
        p.extend_from_slice(b"MQTT");
        p.push(4); // protocol level 3.1.1
        p.push(0x02); // clean session
        p.extend_from_slice(&60u16.to_be_bytes()); // keepalive
        p.extend_from_slice(&(client_id.len() as u16).to_be_bytes());
        p.extend_from_slice(client_id.as_bytes());
        p
    }

    /// An NTP v4 client request (48 bytes).
    pub fn ntp_request() -> Vec<u8> {
        let mut p = vec![0u8; 48];
        p[0] = 0x23; // LI=0, VN=4, mode=3 (client)
        p
    }

    /// An NTP monlist-style amplification response of `len` bytes.
    pub fn ntp_monlist_response(len: usize) -> Vec<u8> {
        let mut p = vec![0u8; len.max(8)];
        p[0] = 0xD7; // mode 7 (private), response
        p[3] = 0x2A; // MON_GETLIST_1
        p
    }

    /// An SSDP M-SEARCH request.
    pub fn ssdp_msearch() -> Vec<u8> {
        b"M-SEARCH * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\nMAN: \"ssdp:discover\"\r\nMX: 1\r\nST: ssdp:all\r\n\r\n"
            .to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{LinkType, PacketMeta};

    #[test]
    fn tcp_builder_produces_valid_checksums() {
        let src_ip = Ipv4Addr::new(10, 1, 1, 1);
        let dst_ip = Ipv4Addr::new(10, 1, 1, 2);
        let pkt = tcp_packet(TcpParams {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip,
            dst_ip,
            src_port: 1,
            dst_port: 2,
            seq: 3,
            ack: 4,
            flags: TcpFlags::SYN,
            window: 512,
            ttl: 64,
            payload: b"abc",
        });
        let eth = EthernetFrame::new_checked(&pkt[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let tcp = TcpSegment::new_checked(ip.payload()).unwrap();
        assert!(tcp.verify_checksum(src_ip, dst_ip));
    }

    #[test]
    fn udp_builder_produces_valid_checksums() {
        let src_ip = Ipv4Addr::new(10, 1, 1, 1);
        let dst_ip = Ipv4Addr::new(10, 1, 1, 2);
        let pkt = udp_packet(UdpParams {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip,
            dst_ip,
            src_port: 9,
            dst_port: 10,
            ttl: 60,
            payload: &payloads::dns_query(7, "iot.example.com"),
        });
        let eth = EthernetFrame::new_checked(&pkt[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        let udp = UdpDatagram::new_checked(ip.payload()).unwrap();
        assert!(udp.verify_checksum(src_ip, dst_ip));
    }

    #[test]
    fn icmp_builder_verifies() {
        let pkt = icmp_echo(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            false,
            42,
            1,
            b"pingdata",
        );
        let meta = PacketMeta::parse(LinkType::Ethernet, 0, &pkt).unwrap();
        assert!(meta.is_icmp());
    }

    #[test]
    fn beacon_carries_ssid() {
        let pkt = dot11_beacon(MacAddr::from_id(5), b"SmartHome", 1);
        let meta = PacketMeta::parse(LinkType::Ieee80211, 0, &pkt).unwrap();
        let d = meta.dot11.unwrap();
        assert_eq!(d.subtype, subtype::BEACON);
        assert!(meta.payload.windows(9).any(|w| w == b"SmartHome"));
    }

    #[test]
    fn dns_query_has_question() {
        let q = payloads::dns_query(1, "a.bc");
        // header(12) + 1+1 + 1+2 + 1 root + 4 = 22
        assert_eq!(q.len(), 12 + 2 + 3 + 1 + 4);
        assert_eq!(q[12], 1);
        assert_eq!(&q[13..14], b"a");
    }

    #[test]
    fn dns_response_longer_than_query() {
        let q = payloads::dns_query(1, "x.y");
        let r = payloads::dns_response(1, "x.y", [1, 2, 3, 4]);
        assert!(r.len() > q.len());
        assert_eq!(r[0..2], q[0..2]);
    }

    #[test]
    fn mqtt_publish_wire_shape() {
        let p = payloads::mqtt_publish("home/temp", b"21.5");
        assert_eq!(p[0], 0x30);
        assert_eq!(p[1] as usize, p.len() - 2);
    }

    #[test]
    fn ntp_request_is_48_bytes() {
        assert_eq!(payloads::ntp_request().len(), 48);
    }
}
