//! RFC 1071 Internet checksum and the TCP/UDP pseudo-header variant.

use std::net::Ipv4Addr;

/// One's-complement sum over `data`, folding carries.
fn ones_complement_sum(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    acc
}

/// Internet checksum of `data` (e.g. an IPv4 header with its checksum field
/// zeroed, or an ICMP message).
pub fn internet(data: &[u8]) -> u16 {
    !(ones_complement_sum(0, data) as u16)
}

/// Verifies that `data` (including its embedded checksum field) sums to the
/// all-ones pattern.
pub fn verify(data: &[u8]) -> bool {
    ones_complement_sum(0, data) as u16 == 0xFFFF
}

/// TCP/UDP checksum over the IPv4 pseudo-header plus the segment bytes
/// (header + payload, with the checksum field zeroed).
pub fn pseudo_ipv4(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&src.octets());
    pseudo[4..8].copy_from_slice(&dst.octets());
    pseudo[9] = protocol;
    pseudo[10..12].copy_from_slice(&(segment.len() as u16).to_be_bytes());
    let acc = ones_complement_sum(0, &pseudo);
    let acc = ones_complement_sum(acc, segment);
    !(acc as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_worked_example() {
        // Example from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7 -> sum 2 f2 05 ec f6 ed,
        // checksum is its complement 0x220d... compute directly instead.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = internet(&data);
        // Verify by re-summing with the checksum appended.
        let mut with = data.to_vec();
        with.extend_from_slice(&sum.to_be_bytes());
        assert!(verify(&with));
    }

    #[test]
    fn odd_length_padding() {
        let data = [0xAB, 0xCD, 0xEF];
        let sum = internet(&data);
        let mut with = data.to_vec();
        // Pad to even before appending checksum for verification.
        with.push(0x00);
        with.extend_from_slice(&sum.to_be_bytes());
        assert!(verify(&with));
    }

    #[test]
    fn known_ipv4_header_checksum() {
        // Classic example header from Wikipedia's IPv4 checksum article.
        let header = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet(&header), 0xb861);
    }

    #[test]
    fn pseudo_header_roundtrip() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut seg = vec![
            0x04, 0xd2, 0x16, 0x2e, // ports 1234 -> 5678
            0x00, 0x0c, 0x00, 0x00, // len 12, cksum 0
            0xde, 0xad, 0xbe, 0xef, // payload
        ];
        let ck = pseudo_ipv4(src, dst, 17, &seg);
        seg[6..8].copy_from_slice(&ck.to_be_bytes());
        // Re-sum including pseudo header: must be all ones -> pseudo_ipv4 == 0.
        assert_eq!(pseudo_ipv4(src, dst, 17, &seg), 0);
    }
}
