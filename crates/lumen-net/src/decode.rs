//! Structured decode-error taxonomy and quarantine accounting.
//!
//! Every `new_checked` constructor in [`crate::wire`] reports failures as a
//! [`DecodeError`]: which protocol layer refused the bytes, which wire
//! format it was speaking, the byte offset of the offending field, and a
//! structured [`DecodeReason`]. The taxonomy backs the no-panic guarantee —
//! arbitrary bytes fed to any checked constructor or to
//! [`crate::PacketMeta::parse`] produce an `Err`, never a panic — and feeds
//! [`DecodeStats`], the quarantine ledger the ingestion path uses to *count
//! and keep going* instead of aborting on hostile captures.

use std::fmt;

/// The protocol layer at which a decode failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// The capture container itself (pcap record framing).
    Capture,
    /// Link layer: Ethernet, 802.11.
    Link,
    /// Network layer: IPv4, IPv6, ARP.
    Net,
    /// Transport layer: TCP, UDP, ICMP.
    Transport,
    /// Application payload interpretation.
    App,
}

impl Layer {
    /// Stable lowercase name, used in journals and log lines.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Capture => "capture",
            Layer::Link => "link",
            Layer::Net => "net",
            Layer::Transport => "transport",
            Layer::App => "app",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a buffer was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeReason {
    /// Fewer bytes than the format's minimum (or declared) length.
    Truncated { needed: usize, have: usize },
    /// A version field did not match the format.
    BadVersion { expected: u8, got: u8 },
    /// A header-length field (IHL, TCP data offset) below the format
    /// minimum or pointing past the end of the buffer.
    BadHeaderLen { len: usize, min: usize, max: usize },
    /// A total/payload-length field outside its allowed range.
    BadLength { len: usize, min: usize, max: usize },
    /// Any other field holding a value the format does not allow.
    BadField { field: &'static str, value: u64 },
}

impl fmt::Display for DecodeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DecodeReason::Truncated { needed, have } => {
                write!(f, "truncated: need {needed} bytes, have {have}")
            }
            DecodeReason::BadVersion { expected, got } => {
                write!(f, "bad version: expected {expected}, got {got}")
            }
            DecodeReason::BadHeaderLen { len, min, max } => {
                write!(f, "bad header length {len} (allowed {min}..={max})")
            }
            DecodeReason::BadLength { len, min, max } => {
                write!(f, "bad length {len} (allowed {min}..={max})")
            }
            DecodeReason::BadField { field, value } => {
                write!(f, "bad {field} ({value})")
            }
        }
    }
}

/// A structured decode failure: layer + wire format + byte offset + reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// Layer that refused the bytes.
    pub layer: Layer,
    /// Wire-format name (`"ipv4"`, `"tcp"`, ...).
    pub proto: &'static str,
    /// Byte offset of the offending field within the parsed buffer.
    pub offset: usize,
    /// Structured reason.
    pub reason: DecodeReason,
}

impl DecodeError {
    /// A truncation error (offset 0: the buffer as a whole is short).
    pub fn truncated(layer: Layer, proto: &'static str, needed: usize, have: usize) -> DecodeError {
        DecodeError {
            layer,
            proto,
            offset: 0,
            reason: DecodeReason::Truncated { needed, have },
        }
    }

    /// An arbitrary structured error at a field offset.
    pub fn new(
        layer: Layer,
        proto: &'static str,
        offset: usize,
        reason: DecodeReason,
    ) -> DecodeError {
        DecodeError {
            layer,
            proto,
            offset,
            reason,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} @+{}: {}",
            self.layer, self.proto, self.offset, self.reason
        )
    }
}

impl std::error::Error for DecodeError {}

/// Bytes of the offending buffer kept per quarantine sample.
pub const QUARANTINE_PREFIX: usize = 16;

/// Quarantine ring-buffer capacity (newest samples win).
pub const QUARANTINE_CAP: usize = 8;

/// One quarantined frame: the structured error plus a short byte prefix of
/// the buffer that triggered it, for postmortems without storing payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineSample {
    pub error: DecodeError,
    /// First [`QUARANTINE_PREFIX`] bytes of the offending buffer.
    pub prefix: Vec<u8>,
}

impl QuarantineSample {
    /// Lowercase hex rendering of the byte prefix.
    pub fn prefix_hex(&self) -> String {
        let mut s = String::with_capacity(self.prefix.len() * 2);
        for b in &self.prefix {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }
}

/// Quarantine ledger accumulated while ingesting a capture: per-layer error
/// counts plus a small ring buffer of offending byte prefixes.
///
/// A frame whose *link* header cannot be parsed is dropped (`link_errors`);
/// frames with unparseable inner layers are kept with partial metadata and
/// counted under `net_errors` / `transport_errors`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Frames offered to the parser.
    pub frames: u64,
    /// Frames kept (possibly with partial inner-layer metadata).
    pub parsed: u64,
    /// Frames dropped: link header unparseable.
    pub link_errors: u64,
    /// Kept frames whose network-layer header was refused.
    pub net_errors: u64,
    /// Kept frames whose transport-layer header was refused.
    pub transport_errors: u64,
    /// Ring buffer (capacity [`QUARANTINE_CAP`]) of recent offenders.
    pub quarantine: Vec<QuarantineSample>,
}

impl DecodeStats {
    /// Records one decode failure and quarantines a prefix of `bytes`.
    pub fn record(&mut self, error: DecodeError, bytes: &[u8]) {
        match error.layer {
            Layer::Link | Layer::Capture => self.link_errors += 1,
            Layer::Net => self.net_errors += 1,
            Layer::Transport | Layer::App => self.transport_errors += 1,
        }
        if self.quarantine.len() == QUARANTINE_CAP {
            self.quarantine.remove(0);
        }
        self.quarantine.push(QuarantineSample {
            error,
            prefix: bytes[..bytes.len().min(QUARANTINE_PREFIX)].to_vec(),
        });
    }

    /// Total decode errors at any layer.
    pub fn total_errors(&self) -> u64 {
        self.link_errors + self.net_errors + self.transport_errors
    }

    /// Frames dropped outright (link layer refused them).
    pub fn dropped(&self) -> u64 {
        self.link_errors
    }

    /// True when every offered frame parsed cleanly at every layer.
    pub fn is_clean(&self) -> bool {
        self.total_errors() == 0
    }

    /// Folds another ledger into this one (chunk-parallel ingestion).
    /// Quarantine samples concatenate in argument order, keeping the
    /// newest [`QUARANTINE_CAP`].
    pub fn merge(&mut self, other: &DecodeStats) {
        self.frames += other.frames;
        self.parsed += other.parsed;
        self.link_errors += other.link_errors;
        self.net_errors += other.net_errors;
        self.transport_errors += other.transport_errors;
        self.quarantine.extend(other.quarantine.iter().cloned());
        let excess = self.quarantine.len().saturating_sub(QUARANTINE_CAP);
        if excess > 0 {
            self.quarantine.drain(..excess);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_structured() {
        let e = DecodeError::new(
            Layer::Net,
            "ipv4",
            0,
            DecodeReason::BadHeaderLen {
                len: 8,
                min: 20,
                max: 60,
            },
        );
        assert_eq!(e.to_string(), "net/ipv4 @+0: bad header length 8 (allowed 20..=60)");
        let t = DecodeError::truncated(Layer::Transport, "tcp", 20, 3);
        assert_eq!(t.to_string(), "transport/tcp @+0: truncated: need 20 bytes, have 3");
    }

    #[test]
    fn stats_count_per_layer_and_ring_caps() {
        let mut s = DecodeStats::default();
        for i in 0..(QUARANTINE_CAP as u64 + 4) {
            s.record(
                DecodeError::truncated(Layer::Net, "ipv4", 20, i as usize),
                &[i as u8; 32],
            );
        }
        s.record(DecodeError::truncated(Layer::Link, "ethernet", 14, 0), &[]);
        s.record(DecodeError::truncated(Layer::Transport, "udp", 8, 1), &[0xAB]);
        assert_eq!(s.net_errors, QUARANTINE_CAP as u64 + 4);
        assert_eq!(s.link_errors, 1);
        assert_eq!(s.transport_errors, 1);
        assert_eq!(s.quarantine.len(), QUARANTINE_CAP);
        // Newest samples win; prefixes are clipped.
        let last = s.quarantine.last().unwrap();
        assert_eq!(last.prefix, vec![0xAB]);
        assert_eq!(last.prefix_hex(), "ab");
        assert!(s.quarantine[0].prefix.len() <= QUARANTINE_PREFIX);
    }

    #[test]
    fn merge_adds_counts_and_keeps_newest_samples() {
        let mut a = DecodeStats::default();
        let mut b = DecodeStats::default();
        for i in 0..6u8 {
            a.record(DecodeError::truncated(Layer::Net, "ipv4", 20, 0), &[i]);
            b.record(DecodeError::truncated(Layer::Transport, "tcp", 20, 0), &[0x10 + i]);
        }
        a.frames = 10;
        a.parsed = 9;
        b.frames = 4;
        b.parsed = 4;
        a.merge(&b);
        assert_eq!(a.frames, 14);
        assert_eq!(a.parsed, 13);
        assert_eq!(a.net_errors, 6);
        assert_eq!(a.transport_errors, 6);
        assert_eq!(a.quarantine.len(), QUARANTINE_CAP);
        // The newest of the merged stream are b's samples.
        assert_eq!(a.quarantine.last().unwrap().prefix, vec![0x15]);
        assert!(!a.is_clean());
        assert_eq!(a.total_errors(), 12);
        assert_eq!(a.dropped(), 0);
    }
}
