//! Packet substrate for Lumen.
//!
//! Provides everything the framework's feature-engineering operations need to
//! work over *real packet bytes* rather than pre-extracted CSVs:
//!
//! * [`wire`] — byte-exact wire formats with checked wrapper types in the
//!   smoltcp idiom: a `Packet<T: AsRef<[u8]>>` wraps a buffer, `new_checked`
//!   validates length/version invariants, typed accessors read fields at
//!   their wire offsets, and `AsMut` impls provide setters. Checksums
//!   (IPv4/TCP/UDP/ICMP) are computed and verified.
//! * [`pcap`] — classic libpcap capture-file reader/writer (the benchmark
//!   suite stores every synthetic dataset as a real `.pcap`).
//! * [`meta`] — a one-pass parser that summarizes a raw frame into a
//!   [`meta::PacketMeta`] record consumed by Lumen's `FieldExtract`.
//! * [`builder`] — convenience constructors that assemble full frames
//!   (Ethernet/IP/TCP/UDP/ICMP/ARP/802.11) with correct checksums; used by
//!   the traffic synthesizer.

#![forbid(unsafe_code)]

pub mod builder;
pub mod checksum;
pub mod decode;
pub mod meta;
pub mod pcap;
pub mod wire;

pub use decode::{DecodeError, DecodeReason, DecodeStats, Layer, QuarantineSample};
pub use meta::{LinkType, PacketMeta, TransportMeta};
pub use pcap::{
    CaptureStats, CapturedPacket, PcapLimits, PcapReader, PcapWriter, RecoveringReader,
};
pub use wire::MacAddr;

/// Errors produced by the packet substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A wire format refused the bytes (structured: layer, protocol, byte
    /// offset, reason). Replaces the old bare `Truncated`/`Malformed`.
    Decode(DecodeError),
    /// A checksum did not verify.
    Checksum,
    /// The pcap file is not in a supported format.
    BadPcap(String),
    /// An underlying I/O failure.
    Io(String),
}

impl NetError {
    /// The structured decode error, when this is a decode failure.
    pub fn decode(&self) -> Option<&DecodeError> {
        match self {
            NetError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Decode(e) => write!(f, "decode error: {e}"),
            NetError::Checksum => write!(f, "checksum mismatch"),
            NetError::BadPcap(why) => write!(f, "bad pcap: {why}"),
            NetError::Io(why) => write!(f, "i/o error: {why}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e.to_string())
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> Self {
        NetError::Decode(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;
