//! One-pass packet summarization.
//!
//! [`PacketMeta`] is the record handed to Lumen's `FieldExtract` operation:
//! a single parse of the raw frame pulls out every field any of the 16
//! implemented algorithms might ask for, so the (often shared) extraction
//! pass over a dataset happens exactly once.

use std::net::Ipv4Addr;

use crate::wire::{
    arp::{ArpOperation, ArpPacket},
    dot11::{Dot11Frame, Dot11Type},
    ethernet::{EtherType, EthernetFrame},
    icmpv4::Icmpv4Packet,
    ipv4::{protocol, Ipv4Packet},
    ipv6::Ipv6Packet,
    tcp::{TcpFlags, TcpSegment},
    udp::UdpDatagram,
    MacAddr,
};
use crate::decode::DecodeStats;
use crate::{NetError, Result};

/// How many leading payload bytes are retained in a [`PacketMeta`].
///
/// nPrint-with-payload (A03) uses the first 32 payload bytes; the
/// early-detection algorithm (A12) uses up to 64. 96 covers both with slack.
pub const PAYLOAD_SNIPPET: usize = 96;

/// Link-layer types Lumen's pcap files use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkType {
    /// DLT_EN10MB.
    Ethernet,
    /// DLT_IEEE802_11 (no radiotap header).
    Ieee80211,
}

impl LinkType {
    /// The libpcap DLT number.
    pub fn dlt(self) -> u32 {
        match self {
            LinkType::Ethernet => 1,
            LinkType::Ieee80211 => 105,
        }
    }

    /// Maps a DLT number back; `None` for unsupported types.
    pub fn from_dlt(dlt: u32) -> Option<LinkType> {
        match dlt {
            1 => Some(LinkType::Ethernet),
            105 => Some(LinkType::Ieee80211),
            _ => None,
        }
    }
}

/// IPv4 header summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Meta {
    pub src: Ipv4Addr,
    pub dst: Ipv4Addr,
    pub ttl: u8,
    pub dscp: u8,
    pub total_len: u16,
    pub ident: u16,
    pub dont_frag: bool,
    pub protocol: u8,
    /// Verbatim copy of the 20-byte fixed header (nPrint bit encoding).
    pub header: [u8; 20],
}

/// Transport-layer summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportMeta {
    Tcp {
        src_port: u16,
        dst_port: u16,
        seq: u32,
        ack: u32,
        flags: TcpFlags,
        window: u16,
        header_len: u8,
        payload_len: u16,
        /// First 20 bytes of the TCP header (options excluded), for nPrint.
        header: [u8; 20],
    },
    Udp {
        src_port: u16,
        dst_port: u16,
        payload_len: u16,
        /// The 8-byte UDP header, for nPrint.
        header: [u8; 8],
    },
    Icmp {
        msg_type: u8,
        code: u8,
        /// The first 8 bytes of the ICMP message, for nPrint.
        header: [u8; 8],
    },
    /// Transport not parsed (non-IP, unknown protocol, or truncated).
    None,
}

impl TransportMeta {
    /// Source port if the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match self {
            TransportMeta::Tcp { src_port, .. } | TransportMeta::Udp { src_port, .. } => {
                Some(*src_port)
            }
            _ => None,
        }
    }

    /// Destination port if the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match self {
            TransportMeta::Tcp { dst_port, .. } | TransportMeta::Udp { dst_port, .. } => {
                Some(*dst_port)
            }
            _ => None,
        }
    }

    /// TCP flags if this is TCP.
    pub fn tcp_flags(&self) -> Option<TcpFlags> {
        match self {
            TransportMeta::Tcp { flags, .. } => Some(*flags),
            _ => None,
        }
    }

    /// Transport payload length in bytes.
    pub fn payload_len(&self) -> u16 {
        match self {
            TransportMeta::Tcp { payload_len, .. } | TransportMeta::Udp { payload_len, .. } => {
                *payload_len
            }
            _ => 0,
        }
    }
}

/// ARP summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpMeta {
    pub operation: ArpOperation,
    pub sender_mac: MacAddr,
    pub sender_ip: Ipv4Addr,
    pub target_ip: Ipv4Addr,
}

/// 802.11 summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dot11Meta {
    pub frame_type: Dot11Type,
    pub subtype: u8,
    pub addr1: MacAddr,
    pub addr2: MacAddr,
    pub bssid: MacAddr,
    pub duration: u16,
    pub sequence: u16,
    pub reason_code: Option<u16>,
    pub body_len: u16,
}

/// A fully-summarized packet.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketMeta {
    /// Capture timestamp, microseconds.
    pub ts_us: u64,
    /// Total frame length on the wire.
    pub wire_len: u32,
    /// Link type of the capture.
    pub link: LinkType,
    /// Link-layer source (Ethernet src or 802.11 transmitter).
    pub src_mac: MacAddr,
    /// Link-layer destination (Ethernet dst or 802.11 receiver).
    pub dst_mac: MacAddr,
    /// Raw EtherType (0 for non-Ethernet links).
    pub ethertype: u16,
    /// IPv4 summary when present.
    pub ipv4: Option<Ipv4Meta>,
    /// True when the frame carries IPv6 (summary fields folded into
    /// transport; Lumen's feature sets only need the transport for v6).
    pub is_ipv6: bool,
    /// Transport summary.
    pub transport: TransportMeta,
    /// ARP summary when present.
    pub arp: Option<ArpMeta>,
    /// 802.11 summary when the link is wireless.
    pub dot11: Option<Dot11Meta>,
    /// First [`PAYLOAD_SNIPPET`] bytes of the transport payload.
    pub payload: Vec<u8>,
    /// Full transport payload length.
    pub payload_len: u32,
}

impl PacketMeta {
    /// Parses one captured frame into a summary.
    ///
    /// Frames whose link-layer header is unparseable are an error; higher
    /// layers that fail to parse simply leave their summaries empty — an IDS
    /// must tolerate weird packets, not crash on them.
    pub fn parse(link: LinkType, ts_us: u64, data: &[u8]) -> Result<PacketMeta> {
        let mut stats = DecodeStats::default();
        Self::parse_recorded(link, ts_us, data, &mut stats)
    }

    /// [`PacketMeta::parse`] with quarantine accounting: every frame
    /// offered bumps `stats.frames`; link failures (the `Err` path) and
    /// tolerated inner-layer failures (empty summaries on the `Ok` path)
    /// are counted per layer, with a byte-prefix sample quarantined.
    pub fn parse_recorded(
        link: LinkType,
        ts_us: u64,
        data: &[u8],
        stats: &mut DecodeStats,
    ) -> Result<PacketMeta> {
        stats.frames += 1;
        let result = match link {
            LinkType::Ethernet => Self::parse_ethernet(ts_us, data, stats),
            LinkType::Ieee80211 => Self::parse_dot11(ts_us, data),
        };
        match &result {
            Ok(_) => stats.parsed += 1,
            Err(NetError::Decode(d)) => stats.record(*d, data),
            Err(_) => stats.link_errors += 1,
        }
        result
    }

    fn parse_ethernet(ts_us: u64, data: &[u8], stats: &mut DecodeStats) -> Result<PacketMeta> {
        let frame = EthernetFrame::new_checked(data)?;
        let mut meta = PacketMeta {
            ts_us,
            wire_len: data.len() as u32,
            link: LinkType::Ethernet,
            src_mac: frame.src(),
            dst_mac: frame.dst(),
            ethertype: u16::from(frame.ethertype()),
            ipv4: None,
            is_ipv6: false,
            transport: TransportMeta::None,
            arp: None,
            dot11: None,
            payload: Vec::new(),
            payload_len: 0,
        };
        match frame.ethertype() {
            EtherType::Ipv4 => meta.fill_ipv4(frame.payload(), stats),
            EtherType::Ipv6 => meta.fill_ipv6(frame.payload(), stats),
            EtherType::Arp => meta.fill_arp(frame.payload(), stats),
            EtherType::Other(_) => {}
        }
        Ok(meta)
    }

    fn parse_dot11(ts_us: u64, data: &[u8]) -> Result<PacketMeta> {
        let frame = Dot11Frame::new_checked(data)?;
        let meta = PacketMeta {
            ts_us,
            wire_len: data.len() as u32,
            link: LinkType::Ieee80211,
            src_mac: frame.addr2(),
            dst_mac: frame.addr1(),
            ethertype: 0,
            ipv4: None,
            is_ipv6: false,
            transport: TransportMeta::None,
            arp: None,
            dot11: Some(Dot11Meta {
                frame_type: frame.frame_type(),
                subtype: frame.frame_subtype(),
                addr1: frame.addr1(),
                addr2: frame.addr2(),
                bssid: frame.addr3(),
                duration: frame.duration(),
                sequence: frame.sequence(),
                reason_code: frame.reason_code(),
                body_len: frame.body().len() as u16,
            }),
            payload: frame.body().iter().copied().take(PAYLOAD_SNIPPET).collect(),
            payload_len: frame.body().len() as u32,
        };
        Ok(meta)
    }

    fn fill_ipv4(&mut self, bytes: &[u8], stats: &mut DecodeStats) {
        let ip = match Ipv4Packet::new_checked(bytes) {
            Ok(ip) => ip,
            Err(e) => {
                if let Some(d) = e.decode() {
                    stats.record(*d, bytes);
                }
                return;
            }
        };
        let mut header = [0u8; 20];
        header.copy_from_slice(&bytes[..20]);
        self.ipv4 = Some(Ipv4Meta {
            src: ip.src(),
            dst: ip.dst(),
            ttl: ip.ttl(),
            dscp: ip.dscp(),
            total_len: ip.total_length(),
            ident: ip.identification(),
            dont_frag: ip.dont_frag(),
            protocol: ip.protocol(),
            header,
        });
        self.fill_transport(ip.protocol(), ip.payload(), stats);
    }

    fn fill_ipv6(&mut self, bytes: &[u8], stats: &mut DecodeStats) {
        let ip = match Ipv6Packet::new_checked(bytes) {
            Ok(ip) => ip,
            Err(e) => {
                if let Some(d) = e.decode() {
                    stats.record(*d, bytes);
                }
                return;
            }
        };
        self.is_ipv6 = true;
        // Copy the payload out: borrow of `bytes` ends here.
        let next = ip.next_header();
        let payload = ip.payload().to_vec();
        self.fill_transport(next, &payload, stats);
    }

    fn fill_arp(&mut self, bytes: &[u8], stats: &mut DecodeStats) {
        let arp = match ArpPacket::new_checked(bytes) {
            Ok(arp) => arp,
            Err(e) => {
                if let Some(d) = e.decode() {
                    stats.record(*d, bytes);
                }
                return;
            }
        };
        self.arp = Some(ArpMeta {
            operation: arp.operation(),
            sender_mac: arp.sender_mac(),
            sender_ip: arp.sender_ip(),
            target_ip: arp.target_ip(),
        });
    }

    fn fill_transport(&mut self, proto: u8, bytes: &[u8], stats: &mut DecodeStats) {
        match proto {
            protocol::TCP => {
                let tcp = match TcpSegment::new_checked(bytes) {
                    Ok(tcp) => tcp,
                    Err(e) => {
                        if let Some(d) = e.decode() {
                            stats.record(*d, bytes);
                        }
                        return;
                    }
                };
                let mut header = [0u8; 20];
                header.copy_from_slice(&bytes[..20]);
                let payload = tcp.payload();
                self.transport = TransportMeta::Tcp {
                    src_port: tcp.src_port(),
                    dst_port: tcp.dst_port(),
                    seq: tcp.seq(),
                    ack: tcp.ack(),
                    flags: tcp.flags(),
                    window: tcp.window(),
                    header_len: tcp.header_len() as u8,
                    payload_len: payload.len() as u16,
                    header,
                };
                self.set_payload(payload);
            }
            protocol::UDP => {
                let udp = match UdpDatagram::new_checked(bytes) {
                    Ok(udp) => udp,
                    Err(e) => {
                        if let Some(d) = e.decode() {
                            stats.record(*d, bytes);
                        }
                        return;
                    }
                };
                let mut header = [0u8; 8];
                header.copy_from_slice(&bytes[..8]);
                let payload = udp.payload();
                self.transport = TransportMeta::Udp {
                    src_port: udp.src_port(),
                    dst_port: udp.dst_port(),
                    payload_len: payload.len() as u16,
                    header,
                };
                self.set_payload(payload);
            }
            protocol::ICMP => {
                let icmp = match Icmpv4Packet::new_checked(bytes) {
                    Ok(icmp) => icmp,
                    Err(e) => {
                        if let Some(d) = e.decode() {
                            stats.record(*d, bytes);
                        }
                        return;
                    }
                };
                let mut header = [0u8; 8];
                header.copy_from_slice(&bytes[..8]);
                self.transport = TransportMeta::Icmp {
                    msg_type: icmp.msg_type(),
                    code: icmp.code(),
                    header,
                };
                self.set_payload(icmp.payload());
            }
            _ => {}
        }
    }

    fn set_payload(&mut self, payload: &[u8]) {
        self.payload_len = payload.len() as u32;
        self.payload = payload.iter().copied().take(PAYLOAD_SNIPPET).collect();
    }

    /// The canonical 5-tuple `(srcIP, dstIP, srcPort, dstPort, proto)` if the
    /// packet is IPv4 with ports; ICMP maps ports to zero.
    pub fn five_tuple(&self) -> Option<(Ipv4Addr, Ipv4Addr, u16, u16, u8)> {
        let ip = self.ipv4.as_ref()?;
        let (sp, dp) = match &self.transport {
            TransportMeta::Tcp {
                src_port, dst_port, ..
            }
            | TransportMeta::Udp {
                src_port, dst_port, ..
            } => (*src_port, *dst_port),
            TransportMeta::Icmp { .. } => (0, 0),
            TransportMeta::None => return None,
        };
        Some((ip.src, ip.dst, sp, dp, ip.protocol))
    }

    /// True when this is a TCP packet.
    pub fn is_tcp(&self) -> bool {
        matches!(self.transport, TransportMeta::Tcp { .. })
    }

    /// True when this is a UDP packet.
    pub fn is_udp(&self) -> bool {
        matches!(self.transport, TransportMeta::Udp { .. })
    }

    /// True when this is an ICMP packet.
    pub fn is_icmp(&self) -> bool {
        matches!(self.transport, TransportMeta::Icmp { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder;

    #[test]
    fn parses_tcp_frame() {
        let pkt = builder::tcp_packet(builder::TcpParams {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 40000,
            dst_port: 80,
            seq: 100,
            ack: 200,
            flags: TcpFlags::PSH_ACK,
            window: 1024,
            ttl: 63,
            payload: b"GET / HTTP/1.1\r\n",
        });
        let meta = PacketMeta::parse(LinkType::Ethernet, 5, &pkt).unwrap();
        assert_eq!(meta.ts_us, 5);
        assert_eq!(meta.src_mac, MacAddr::from_id(1));
        let ip = meta.ipv4.unwrap();
        assert_eq!(ip.src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(ip.ttl, 63);
        match meta.transport {
            TransportMeta::Tcp {
                src_port,
                dst_port,
                flags,
                payload_len,
                ..
            } => {
                assert_eq!(src_port, 40000);
                assert_eq!(dst_port, 80);
                assert!(flags.psh());
                assert_eq!(payload_len, 16);
            }
            other => panic!("wrong transport {other:?}"),
        }
        assert_eq!(meta.payload, b"GET / HTTP/1.1\r\n");
        assert_eq!(
            meta.five_tuple(),
            Some((
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                40000,
                80,
                6
            ))
        );
    }

    #[test]
    fn parses_udp_frame() {
        let pkt = builder::udp_packet(builder::UdpParams {
            src_mac: MacAddr::from_id(3),
            dst_mac: MacAddr::from_id(4),
            src_ip: Ipv4Addr::new(192, 168, 0, 9),
            dst_ip: Ipv4Addr::new(8, 8, 4, 4),
            src_port: 5353,
            dst_port: 53,
            ttl: 64,
            payload: &[0xAA; 300],
        });
        let meta = PacketMeta::parse(LinkType::Ethernet, 0, &pkt).unwrap();
        assert!(meta.is_udp());
        assert_eq!(meta.payload_len, 300);
        // Snippet is capped.
        assert_eq!(meta.payload.len(), PAYLOAD_SNIPPET);
    }

    #[test]
    fn parses_arp_frame() {
        let pkt = builder::arp_packet(
            MacAddr::from_id(9),
            Ipv4Addr::new(192, 168, 1, 1),
            MacAddr::BROADCAST,
            Ipv4Addr::new(192, 168, 1, 77),
            ArpOperation::Request,
        );
        let meta = PacketMeta::parse(LinkType::Ethernet, 0, &pkt).unwrap();
        let arp = meta.arp.unwrap();
        assert_eq!(arp.operation, ArpOperation::Request);
        assert_eq!(arp.target_ip, Ipv4Addr::new(192, 168, 1, 77));
        assert!(meta.five_tuple().is_none());
    }

    #[test]
    fn parses_deauth_frame() {
        let pkt = builder::dot11_deauth(MacAddr::from_id(1), MacAddr::from_id(2), 7, 3);
        let meta = PacketMeta::parse(LinkType::Ieee80211, 0, &pkt).unwrap();
        let d = meta.dot11.unwrap();
        assert_eq!(d.frame_type, Dot11Type::Management);
        assert_eq!(d.reason_code, Some(7));
        assert!(meta.ipv4.is_none());
    }

    #[test]
    fn parses_ipv6_udp_frame() {
        use crate::wire::ethernet::{EtherType, EthernetFrame, HEADER_LEN as ETH_HDR};
        use crate::wire::ipv6::{Ipv6Packet, HEADER_LEN as V6_HDR};
        use crate::wire::udp::{UdpDatagram, HEADER_LEN as UDP_HDR};
        use std::net::Ipv6Addr;

        let payload = b"v6 payload";
        let udp_len = UDP_HDR + payload.len();
        let mut buf = vec![0u8; ETH_HDR + V6_HDR + udp_len];
        let mut eth = EthernetFrame::new_unchecked(&mut buf[..]);
        eth.set_src(MacAddr::from_id(7));
        eth.set_dst(MacAddr::from_id(8));
        eth.set_ethertype(EtherType::Ipv6);
        let mut v6 = Ipv6Packet::new_unchecked(eth.payload_mut());
        v6.set_version();
        v6.set_payload_length(udp_len as u16);
        v6.set_next_header(17);
        v6.set_hop_limit(64);
        v6.set_src(Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 1));
        v6.set_dst(Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 2));
        let mut udp = UdpDatagram::new_unchecked(v6.payload_mut());
        udp.set_src_port(546);
        udp.set_dst_port(547);
        udp.set_length(udp_len as u16);
        udp.payload_mut().copy_from_slice(payload);

        let meta = PacketMeta::parse(LinkType::Ethernet, 3, &buf).unwrap();
        assert!(meta.is_ipv6);
        assert!(meta.ipv4.is_none());
        assert!(meta.is_udp());
        assert_eq!(meta.transport.src_port(), Some(546));
        assert_eq!(meta.payload, payload);
        // No IPv4 header means no five-tuple (Lumen groups v6 by MAC).
        assert!(meta.five_tuple().is_none());
    }

    #[test]
    fn garbage_l3_is_tolerated() {
        // Valid Ethernet header claiming IPv4, but garbage payload.
        let mut pkt = vec![0u8; 20];
        pkt[12] = 0x08;
        pkt[13] = 0x00;
        let meta = PacketMeta::parse(LinkType::Ethernet, 0, &pkt).unwrap();
        assert!(meta.ipv4.is_none());
        assert_eq!(meta.transport, TransportMeta::None);
    }

    #[test]
    fn short_frame_is_error() {
        assert!(PacketMeta::parse(LinkType::Ethernet, 0, &[0u8; 5]).is_err());
    }

    #[test]
    fn parse_recorded_accounts_per_layer() {
        let mut stats = DecodeStats::default();

        // Clean frame: counted as parsed, no errors.
        let good = builder::udp_packet(builder::UdpParams {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            src_port: 1,
            dst_port: 2,
            ttl: 64,
            payload: b"ok",
        });
        assert!(PacketMeta::parse_recorded(LinkType::Ethernet, 0, &good, &mut stats).is_ok());

        // Garbage L3 behind a valid Ethernet header: frame kept, net error.
        let mut bad_l3 = vec![0u8; 20];
        bad_l3[12] = 0x08;
        assert!(PacketMeta::parse_recorded(LinkType::Ethernet, 1, &bad_l3, &mut stats).is_ok());

        // Truncated TCP behind a valid IPv4 header: transport error.
        let mut bad_l4 = good.clone();
        bad_l4.truncate(14 + 20 + 5);
        // Re-stamp the IPv4 total length so only the TCP layer is short.
        {
            use crate::wire::ipv4::Ipv4Packet;
            let mut ip = Ipv4Packet::new_unchecked(&mut bad_l4[14..]);
            ip.set_total_length(25);
            ip.set_protocol(protocol::TCP);
            ip.fill_checksum();
        }
        assert!(PacketMeta::parse_recorded(LinkType::Ethernet, 2, &bad_l4, &mut stats).is_ok());

        // Short frame: dropped, link error.
        assert!(PacketMeta::parse_recorded(LinkType::Ethernet, 3, &[0u8; 5], &mut stats).is_err());

        assert_eq!(stats.frames, 4);
        assert_eq!(stats.parsed, 3);
        assert_eq!(stats.net_errors, 1);
        assert_eq!(stats.transport_errors, 1);
        assert_eq!(stats.link_errors, 1);
        assert_eq!(stats.dropped(), 1);
        assert_eq!(stats.quarantine.len(), 3);
    }
}
