//! Classic libpcap capture-file format (the `.pcap` written by tcpdump).
//!
//! The benchmarking suite stores every synthetic dataset as a real pcap so
//! the full production code path — file bytes → link-layer parse → features —
//! is exercised, exactly as it would be on a public dataset download.
//!
//! Both byte orders and both timestamp resolutions (microsecond magic
//! `0xa1b2c3d4`, nanosecond magic `0xa1b23c4d`) are read; files are written
//! native-microsecond little-endian, which is what tcpdump produces on x86.

use std::io::{Read, Write};

use crate::meta::LinkType;
use crate::{NetError, Result};

const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
const MAGIC_NANOS: u32 = 0xa1b2_3c4d;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
/// Default snap length: full packets.
pub const SNAPLEN: u32 = 262_144;

/// One captured packet: a timestamp (microseconds since the epoch of the
/// capture) and the raw link-layer bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedPacket {
    /// Capture timestamp in microseconds.
    pub ts_us: u64,
    /// Raw link-layer frame bytes.
    pub data: Vec<u8>,
}

impl CapturedPacket {
    /// Convenience constructor.
    pub fn new(ts_us: u64, data: Vec<u8>) -> CapturedPacket {
        CapturedPacket { ts_us, data }
    }

    /// Timestamp in seconds as a float.
    pub fn ts_secs(&self) -> f64 {
        self.ts_us as f64 / 1e6
    }
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    sink: W,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    pub fn new(mut sink: W, link: LinkType) -> Result<PcapWriter<W>> {
        sink.write_all(&MAGIC_MICROS.to_le_bytes())?;
        sink.write_all(&VERSION_MAJOR.to_le_bytes())?;
        sink.write_all(&VERSION_MINOR.to_le_bytes())?;
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&SNAPLEN.to_le_bytes())?;
        sink.write_all(&(link.dlt()).to_le_bytes())?;
        Ok(PcapWriter { sink })
    }

    /// Appends one packet record.
    pub fn write_packet(&mut self, pkt: &CapturedPacket) -> Result<()> {
        let secs = (pkt.ts_us / 1_000_000) as u32;
        let micros = (pkt.ts_us % 1_000_000) as u32;
        let len = pkt.data.len() as u32;
        self.sink.write_all(&secs.to_le_bytes())?;
        self.sink.write_all(&micros.to_le_bytes())?;
        self.sink.write_all(&len.to_le_bytes())?; // incl_len
        self.sink.write_all(&len.to_le_bytes())?; // orig_len
        self.sink.write_all(&pkt.data)?;
        Ok(())
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming pcap reader; iterate with [`PcapReader::next_packet`] or the
/// `Iterator` impl.
pub struct PcapReader<R: Read> {
    source: R,
    swapped: bool,
    nanos: bool,
    link: LinkType,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    pub fn new(mut source: R) -> Result<PcapReader<R>> {
        let mut header = [0u8; 24];
        source.read_exact(&mut header)?;
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let (swapped, nanos) = match magic {
            MAGIC_MICROS => (false, false),
            MAGIC_NANOS => (false, true),
            m if m.swap_bytes() == MAGIC_MICROS => (true, false),
            m if m.swap_bytes() == MAGIC_NANOS => (true, true),
            m => return Err(NetError::BadPcap(format!("unknown magic {m:#010x}"))),
        };
        let read_u32 = |b: &[u8]| {
            let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let dlt = read_u32(&header[20..24]);
        let link = LinkType::from_dlt(dlt)
            .ok_or_else(|| NetError::BadPcap(format!("unsupported link type {dlt}")))?;
        Ok(PcapReader {
            source,
            swapped,
            nanos,
            link,
        })
    }

    /// The file's link-layer type.
    pub fn link_type(&self) -> LinkType {
        self.link
    }

    /// Reads the next packet record; `Ok(None)` at clean EOF.
    pub fn next_packet(&mut self) -> Result<Option<CapturedPacket>> {
        let mut rec = [0u8; 16];
        // Distinguish clean EOF (no bytes at a record boundary) from a
        // truncated record header, which is a corrupt file.
        let mut filled = 0;
        while filled < rec.len() {
            let n = self.source.read(&mut rec[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(NetError::BadPcap("truncated record header".into()));
            }
            filled += n;
        }
        let read_u32 = |b: &[u8]| {
            let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let secs = u64::from(read_u32(&rec[0..4]));
        let frac = u64::from(read_u32(&rec[4..8]));
        let incl_len = read_u32(&rec[8..12]) as usize;
        if incl_len > SNAPLEN as usize * 4 {
            return Err(NetError::BadPcap(format!(
                "record length {incl_len} implausible"
            )));
        }
        let mut data = vec![0u8; incl_len];
        self.source.read_exact(&mut data)?;
        let micros = if self.nanos { frac / 1000 } else { frac };
        Ok(Some(CapturedPacket {
            ts_us: secs * 1_000_000 + micros,
            data,
        }))
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<CapturedPacket>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_packet().transpose()
    }
}

/// Writes a full capture to a byte vector.
pub fn to_bytes(link: LinkType, packets: &[CapturedPacket]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + packets.iter().map(|p| 16 + p.data.len()).sum::<usize>());
    let mut w = PcapWriter::new(&mut out, link).expect("vec write cannot fail");
    for p in packets {
        w.write_packet(p).expect("vec write cannot fail");
    }
    w.finish().expect("vec flush cannot fail");
    out
}

/// Reads a full capture from a byte slice.
pub fn from_bytes(bytes: &[u8]) -> Result<(LinkType, Vec<CapturedPacket>)> {
    let mut r = PcapReader::new(bytes)?;
    let link = r.link_type();
    let mut packets = Vec::new();
    while let Some(p) = r.next_packet()? {
        packets.push(p);
    }
    Ok((link, packets))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<CapturedPacket> {
        vec![
            CapturedPacket::new(1_000_000, vec![1, 2, 3]),
            CapturedPacket::new(1_000_500, vec![4; 64]),
            CapturedPacket::new(2_500_123, vec![]),
        ]
    }

    #[test]
    fn roundtrip_ethernet() {
        let pkts = sample();
        let bytes = to_bytes(LinkType::Ethernet, &pkts);
        let (link, read) = from_bytes(&bytes).unwrap();
        assert_eq!(link, LinkType::Ethernet);
        assert_eq!(read, pkts);
    }

    #[test]
    fn roundtrip_dot11() {
        let bytes = to_bytes(LinkType::Ieee80211, &sample());
        let (link, read) = from_bytes(&bytes).unwrap();
        assert_eq!(link, LinkType::Ieee80211);
        assert_eq!(read.len(), 3);
    }

    #[test]
    fn rejects_garbage_magic() {
        let err = from_bytes(&[0u8; 24]).unwrap_err();
        assert!(matches!(err, NetError::BadPcap(_)));
    }

    #[test]
    fn reads_big_endian_header() {
        // Hand-build a big-endian header with one empty packet at t=1s.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_MICROS.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes()); // Ethernet
        buf.extend_from_slice(&1u32.to_be_bytes()); // secs
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        let (link, pkts) = from_bytes(&buf).unwrap();
        assert_eq!(link, LinkType::Ethernet);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].ts_us, 1_000_000);
    }

    #[test]
    fn reads_nanosecond_resolution() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NANOS.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65535u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes()); // secs
        buf.extend_from_slice(&500_000_000u32.to_le_bytes()); // 0.5 s in ns
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let (_, pkts) = from_bytes(&buf).unwrap();
        assert_eq!(pkts[0].ts_us, 3_500_000);
    }

    #[test]
    fn truncated_record_is_error() {
        let mut bytes = to_bytes(LinkType::Ethernet, &sample());
        bytes.truncate(bytes.len() - 1);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_capture_roundtrip() {
        let bytes = to_bytes(LinkType::Ethernet, &[]);
        let (_, pkts) = from_bytes(&bytes).unwrap();
        assert!(pkts.is_empty());
    }
}
