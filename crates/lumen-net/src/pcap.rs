//! Classic libpcap capture-file format (the `.pcap` written by tcpdump).
//!
//! The benchmarking suite stores every synthetic dataset as a real pcap so
//! the full production code path — file bytes → link-layer parse → features —
//! is exercised, exactly as it would be on a public dataset download.
//!
//! Both byte orders and both timestamp resolutions (microsecond magic
//! `0xa1b2c3d4`, nanosecond magic `0xa1b23c4d`) are read; files are written
//! native-microsecond little-endian, which is what tcpdump produces on x86.

use std::io::{Read, Write};

use crate::meta::LinkType;
use crate::{NetError, Result};

const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
const MAGIC_NANOS: u32 = 0xa1b2_3c4d;
const VERSION_MAJOR: u16 = 2;
const VERSION_MINOR: u16 = 4;
/// Default snap length: full packets.
pub const SNAPLEN: u32 = 262_144;
/// Absolute per-record size bound, whatever the header's snaplen claims.
/// A record length above this is treated as corruption, never allocated.
pub const MAX_RECORD_BYTES: usize = SNAPLEN as usize * 4;
/// Allocation granted up-front per record; anything longer grows the vector
/// incrementally, so a lying length field cannot trigger a huge allocation.
const RECORD_PREALLOC: usize = 65_536;

/// Resource limits for capture ingestion (strict or recovering).
#[derive(Debug, Clone, Copy)]
pub struct PcapLimits {
    /// Stop after this many decoded records.
    pub max_packets: usize,
    /// Stop once this many packet-data bytes have been retained.
    pub max_total_bytes: u64,
}

impl Default for PcapLimits {
    fn default() -> PcapLimits {
        PcapLimits {
            max_packets: usize::MAX,
            max_total_bytes: u64::MAX,
        }
    }
}

/// Accounting from a recovering capture read: what was decoded, what was
/// skipped, and how the reader got back in sync after corruption.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Records decoded and kept.
    pub records: u64,
    /// Corrupt records dropped (implausible header or lying length).
    pub dropped_records: u64,
    /// Times the reader re-synchronized by scanning for a plausible
    /// record header.
    pub resyncs: u64,
    /// Bytes skipped over while out of sync.
    pub bytes_skipped: u64,
    /// Timestamps that went backwards between consecutive records
    /// (records are kept; the regression is only counted).
    pub ts_regressions: u64,
    /// The file ended mid-record.
    pub truncated_tail: bool,
    /// A [`PcapLimits`] bound stopped the read early.
    pub limit_hit: bool,
}

impl CaptureStats {
    /// True when the whole capture decoded without incident.
    pub fn is_clean(&self) -> bool {
        self.dropped_records == 0
            && self.resyncs == 0
            && self.bytes_skipped == 0
            && self.ts_regressions == 0
            && !self.truncated_tail
            && !self.limit_hit
    }
}

/// Result of [`from_bytes_recovering`]: whatever could be decoded, plus the
/// accounting of everything that could not.
#[derive(Debug, Clone)]
pub struct RecoveredCapture {
    pub link: LinkType,
    pub packets: Vec<CapturedPacket>,
    pub stats: CaptureStats,
}

/// One captured packet: a timestamp (microseconds since the epoch of the
/// capture) and the raw link-layer bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedPacket {
    /// Capture timestamp in microseconds.
    pub ts_us: u64,
    /// Raw link-layer frame bytes.
    pub data: Vec<u8>,
}

impl CapturedPacket {
    /// Convenience constructor.
    pub fn new(ts_us: u64, data: Vec<u8>) -> CapturedPacket {
        CapturedPacket { ts_us, data }
    }

    /// Timestamp in seconds as a float.
    pub fn ts_secs(&self) -> f64 {
        self.ts_us as f64 / 1e6
    }
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    sink: W,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    pub fn new(mut sink: W, link: LinkType) -> Result<PcapWriter<W>> {
        sink.write_all(&MAGIC_MICROS.to_le_bytes())?;
        sink.write_all(&VERSION_MAJOR.to_le_bytes())?;
        sink.write_all(&VERSION_MINOR.to_le_bytes())?;
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&SNAPLEN.to_le_bytes())?;
        sink.write_all(&(link.dlt()).to_le_bytes())?;
        Ok(PcapWriter { sink })
    }

    /// Appends one packet record.
    pub fn write_packet(&mut self, pkt: &CapturedPacket) -> Result<()> {
        let secs = (pkt.ts_us / 1_000_000) as u32;
        let micros = (pkt.ts_us % 1_000_000) as u32;
        let len = pkt.data.len() as u32;
        self.sink.write_all(&secs.to_le_bytes())?;
        self.sink.write_all(&micros.to_le_bytes())?;
        self.sink.write_all(&len.to_le_bytes())?; // incl_len
        self.sink.write_all(&len.to_le_bytes())?; // orig_len
        self.sink.write_all(&pkt.data)?;
        Ok(())
    }

    /// Flushes and returns the underlying sink.
    pub fn finish(mut self) -> Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// The decoded 24-byte global header.
struct GlobalHeader {
    swapped: bool,
    nanos: bool,
    link: LinkType,
    /// The header's snaplen as written (before clamping).
    snaplen: usize,
    /// Effective per-record bound: the header's snaplen, clamped into
    /// `[RECORD_PREALLOC, MAX_RECORD_BYTES]` so a zero or garbage snaplen
    /// neither rejects ordinary packets nor authorizes huge records.
    record_bound: usize,
}

fn parse_global_header(header: &[u8; 24]) -> Result<GlobalHeader> {
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let (swapped, nanos) = match magic {
        MAGIC_MICROS => (false, false),
        MAGIC_NANOS => (false, true),
        m if m.swap_bytes() == MAGIC_MICROS => (true, false),
        m if m.swap_bytes() == MAGIC_NANOS => (true, true),
        m => return Err(NetError::BadPcap(format!("unknown magic {m:#010x}"))),
    };
    let read_u32 = |b: &[u8]| {
        let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        if swapped {
            v.swap_bytes()
        } else {
            v
        }
    };
    let snaplen = read_u32(&header[16..20]) as usize;
    let dlt = read_u32(&header[20..24]);
    let link = LinkType::from_dlt(dlt)
        .ok_or_else(|| NetError::BadPcap(format!("unsupported link type {dlt}")))?;
    Ok(GlobalHeader {
        swapped,
        nanos,
        link,
        snaplen,
        record_bound: snaplen.clamp(RECORD_PREALLOC, MAX_RECORD_BYTES),
    })
}

/// Streaming pcap reader; iterate with [`PcapReader::next_packet`] or the
/// `Iterator` impl.
pub struct PcapReader<R: Read> {
    source: R,
    swapped: bool,
    nanos: bool,
    link: LinkType,
    record_bound: usize,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    pub fn new(mut source: R) -> Result<PcapReader<R>> {
        let mut header = [0u8; 24];
        source.read_exact(&mut header)?;
        let gh = parse_global_header(&header)?;
        Ok(PcapReader {
            source,
            swapped: gh.swapped,
            nanos: gh.nanos,
            link: gh.link,
            record_bound: gh.record_bound,
        })
    }

    /// The file's link-layer type.
    pub fn link_type(&self) -> LinkType {
        self.link
    }

    /// Reads the next packet record; `Ok(None)` at clean EOF.
    pub fn next_packet(&mut self) -> Result<Option<CapturedPacket>> {
        let mut rec = [0u8; 16];
        // Distinguish clean EOF (no bytes at a record boundary) from a
        // truncated record header, which is a corrupt file.
        let mut filled = 0;
        while filled < rec.len() {
            let n = self.source.read(&mut rec[filled..])?;
            if n == 0 {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(NetError::BadPcap("truncated record header".into()));
            }
            filled += n;
        }
        let read_u32 = |b: &[u8]| {
            let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let secs = u64::from(read_u32(&rec[0..4]));
        let frac = u64::from(read_u32(&rec[4..8]));
        let incl_len = read_u32(&rec[8..12]) as usize;
        if incl_len > self.record_bound {
            return Err(NetError::BadPcap(format!(
                "record length {incl_len} exceeds snap bound {}",
                self.record_bound
            )));
        }
        // Validate before allocating, and never grant more than
        // RECORD_PREALLOC up front: a hostile caplen (e.g. 0xFFFF_FFFF)
        // cannot trigger a huge allocation.
        let mut data = Vec::with_capacity(incl_len.min(RECORD_PREALLOC));
        let got = self
            .source
            .by_ref()
            .take(incl_len as u64)
            .read_to_end(&mut data)?;
        if got < incl_len {
            return Err(NetError::BadPcap(format!(
                "truncated record: header claims {incl_len} bytes, file has {got}"
            )));
        }
        let micros = if self.nanos { frac / 1000 } else { frac };
        Ok(Some(CapturedPacket {
            ts_us: secs * 1_000_000 + micros,
            data,
        }))
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<CapturedPacket>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_packet().transpose()
    }
}

/// Writes a full capture to a byte vector (infallible: no I/O involved).
pub fn to_bytes(link: LinkType, packets: &[CapturedPacket]) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + packets.iter().map(|p| 16 + p.data.len()).sum::<usize>());
    out.extend_from_slice(&MAGIC_MICROS.to_le_bytes());
    out.extend_from_slice(&VERSION_MAJOR.to_le_bytes());
    out.extend_from_slice(&VERSION_MINOR.to_le_bytes());
    out.extend_from_slice(&0i32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&SNAPLEN.to_le_bytes());
    out.extend_from_slice(&link.dlt().to_le_bytes());
    for p in packets {
        let secs = (p.ts_us / 1_000_000) as u32;
        let micros = (p.ts_us % 1_000_000) as u32;
        let len = p.data.len() as u32;
        out.extend_from_slice(&secs.to_le_bytes());
        out.extend_from_slice(&micros.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes()); // incl_len
        out.extend_from_slice(&len.to_le_bytes()); // orig_len
        out.extend_from_slice(&p.data);
    }
    out
}

/// Reads a full capture from a byte slice, strictly: the first corrupt
/// record aborts the read. Use [`from_bytes_recovering`] to quarantine
/// corruption instead.
pub fn from_bytes(bytes: &[u8]) -> Result<(LinkType, Vec<CapturedPacket>)> {
    let mut r = PcapReader::new(bytes)?;
    let link = r.link_type();
    let mut packets = Vec::new();
    while let Some(p) = r.next_packet()? {
        packets.push(p);
    }
    Ok((link, packets))
}

/// Is there a plausible record header at `o`? Plausible means: 16 header
/// bytes fit, the included length is within the snap bound, the
/// incl/orig pair satisfies the capture invariant
/// `incl_len == min(orig_len, snaplen)` every real writer obeys, and the
/// data fits the remaining bytes. The invariant is what keeps packet
/// payload bytes from masquerading as record boundaries: a false header
/// would need two equal (or snaplen-pinned) 32-bit fields in exactly the
/// right spot.
fn plausible_record(bytes: &[u8], o: usize, gh: &GlobalHeader) -> Option<usize> {
    if o + 16 > bytes.len() {
        return None;
    }
    let read_u32 = |at: usize| {
        let v = u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
        if gh.swapped {
            v.swap_bytes()
        } else {
            v
        }
    };
    let incl = read_u32(o + 8) as usize;
    let orig = read_u32(o + 12) as usize;
    if incl > gh.record_bound || orig > gh.record_bound || incl > orig {
        return None;
    }
    if incl != orig && incl != gh.snaplen {
        return None;
    }
    if o + 16 + incl > bytes.len() {
        return None;
    }
    Some(incl)
}

/// Lazy recovering reader over an in-memory capture: yields one decoded
/// packet at a time, skipping corruption and re-synchronizing exactly like
/// [`from_bytes_recovering`] (which is now a collect over this type).
/// Streaming consumers — the `lumen-serve` source stage — pull packets at
/// their own (backpressured) pace instead of materializing the whole
/// capture up front, and can snapshot the running [`CaptureStats`] at any
/// point for the no-packet-silently-lost accounting.
pub struct RecoveringReader<'a> {
    bytes: &'a [u8],
    gh: GlobalHeader,
    limits: PcapLimits,
    stats: CaptureStats,
    total_bytes: u64,
    prev_ts: u64,
    /// Cursor into `bytes`; past the end once the read has finished.
    o: usize,
}

impl<'a> RecoveringReader<'a> {
    /// Validates the 24-byte global header and positions the cursor at the
    /// first record. Only the global header must be intact — without a
    /// readable magic/linktype there is nothing to recover.
    pub fn new(bytes: &'a [u8], limits: PcapLimits) -> Result<RecoveringReader<'a>> {
        if bytes.len() < 24 {
            return Err(NetError::BadPcap(format!(
                "global header needs 24 bytes, file has {}",
                bytes.len()
            )));
        }
        let mut header = [0u8; 24];
        header.copy_from_slice(&bytes[..24]);
        let gh = parse_global_header(&header)?;
        Ok(RecoveringReader {
            bytes,
            gh,
            limits,
            stats: CaptureStats::default(),
            total_bytes: 0,
            prev_ts: 0,
            o: 24,
        })
    }

    /// The file's link-layer type.
    pub fn link_type(&self) -> LinkType {
        self.gh.link
    }

    /// Snapshot of the recovery accounting so far. Final once
    /// [`RecoveringReader::next_packet`] has returned `None`.
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }

    fn read_u32(&self, at: usize) -> u32 {
        let b = &self.bytes;
        let v = u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]]);
        if self.gh.swapped {
            v.swap_bytes()
        } else {
            v
        }
    }

    /// Decodes the next plausible record, dropping corruption and
    /// re-synchronizing as needed. `None` at end-of-capture (clean,
    /// truncated, or limit-stopped — consult [`RecoveringReader::stats`]).
    pub fn next_packet(&mut self) -> Option<CapturedPacket> {
        while self.o < self.bytes.len() {
            let o = self.o;
            let remaining = self.bytes.len() - o;
            if remaining < 16 {
                self.stats.truncated_tail = true;
                self.stats.bytes_skipped += remaining as u64;
                self.o = self.bytes.len();
                return None;
            }
            match plausible_record(self.bytes, o, &self.gh) {
                Some(incl) => {
                    if self.stats.records >= self.limits.max_packets as u64
                        || self.total_bytes + incl as u64 > self.limits.max_total_bytes
                    {
                        self.stats.limit_hit = true;
                        self.o = self.bytes.len();
                        return None;
                    }
                    let secs = u64::from(self.read_u32(o));
                    let frac = u64::from(self.read_u32(o + 4));
                    let micros = if self.gh.nanos { frac / 1000 } else { frac };
                    let ts_us = secs * 1_000_000 + micros;
                    if ts_us < self.prev_ts {
                        self.stats.ts_regressions += 1;
                    }
                    self.prev_ts = self.prev_ts.max(ts_us);
                    self.stats.records += 1;
                    self.total_bytes += incl as u64;
                    self.o = o + 16 + incl;
                    return Some(CapturedPacket {
                        ts_us,
                        data: self.bytes[o + 16..o + 16 + incl].to_vec(),
                    });
                }
                None => {
                    self.stats.dropped_records += 1;
                    // Resync: the next offset that both looks like a record
                    // header and chains (its successor is plausible too, or
                    // it ends the file exactly). Chaining keeps random
                    // payload bytes from masquerading as a record boundary.
                    let mut resumed = false;
                    for q in o + 1..self.bytes.len().saturating_sub(15) {
                        if let Some(incl) = plausible_record(self.bytes, q, &self.gh) {
                            let next = q + 16 + incl;
                            if next == self.bytes.len()
                                || plausible_record(self.bytes, next, &self.gh).is_some()
                            {
                                self.stats.resyncs += 1;
                                self.stats.bytes_skipped += (q - o) as u64;
                                self.o = q;
                                resumed = true;
                                break;
                            }
                        }
                    }
                    if !resumed {
                        self.stats.bytes_skipped += remaining as u64;
                        self.stats.truncated_tail = true;
                        self.o = self.bytes.len();
                        return None;
                    }
                }
            }
        }
        None
    }
}

impl Iterator for RecoveringReader<'_> {
    type Item = CapturedPacket;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_packet()
    }
}

/// Reads a capture from a byte slice, skipping corruption instead of
/// aborting: implausible or lying record headers are dropped and the reader
/// re-synchronizes by scanning forward for the next offset that looks like
/// a record header *and* chains to another plausible record (or ends the
/// file exactly). A strict collect over [`RecoveringReader`].
pub fn from_bytes_recovering(bytes: &[u8], limits: PcapLimits) -> Result<RecoveredCapture> {
    let mut reader = RecoveringReader::new(bytes, limits)?;
    let link = reader.link_type();
    let mut packets = Vec::new();
    while let Some(p) = reader.next_packet() {
        packets.push(p);
    }
    Ok(RecoveredCapture {
        link,
        packets,
        stats: reader.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<CapturedPacket> {
        vec![
            CapturedPacket::new(1_000_000, vec![1, 2, 3]),
            CapturedPacket::new(1_000_500, vec![4; 64]),
            CapturedPacket::new(2_500_123, vec![]),
        ]
    }

    #[test]
    fn roundtrip_ethernet() {
        let pkts = sample();
        let bytes = to_bytes(LinkType::Ethernet, &pkts);
        let (link, read) = from_bytes(&bytes).unwrap();
        assert_eq!(link, LinkType::Ethernet);
        assert_eq!(read, pkts);
    }

    #[test]
    fn roundtrip_dot11() {
        let bytes = to_bytes(LinkType::Ieee80211, &sample());
        let (link, read) = from_bytes(&bytes).unwrap();
        assert_eq!(link, LinkType::Ieee80211);
        assert_eq!(read.len(), 3);
    }

    #[test]
    fn rejects_garbage_magic() {
        let err = from_bytes(&[0u8; 24]).unwrap_err();
        assert!(matches!(err, NetError::BadPcap(_)));
    }

    #[test]
    fn reads_big_endian_header() {
        // Hand-build a big-endian header with one empty packet at t=1s.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_MICROS.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&65535u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes()); // Ethernet
        buf.extend_from_slice(&1u32.to_be_bytes()); // secs
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        buf.extend_from_slice(&0u32.to_be_bytes());
        let (link, pkts) = from_bytes(&buf).unwrap();
        assert_eq!(link, LinkType::Ethernet);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].ts_us, 1_000_000);
    }

    #[test]
    fn reads_nanosecond_resolution() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_NANOS.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&65535u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes()); // secs
        buf.extend_from_slice(&500_000_000u32.to_le_bytes()); // 0.5 s in ns
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let (_, pkts) = from_bytes(&buf).unwrap();
        assert_eq!(pkts[0].ts_us, 3_500_000);
    }

    #[test]
    fn truncated_record_is_error() {
        let mut bytes = to_bytes(LinkType::Ethernet, &sample());
        bytes.truncate(bytes.len() - 1);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_capture_roundtrip() {
        let bytes = to_bytes(LinkType::Ethernet, &[]);
        let (_, pkts) = from_bytes(&bytes).unwrap();
        assert!(pkts.is_empty());
    }

    fn corrupt_record_at(bytes: &mut [u8], record_index: usize, f: impl FnOnce(&mut [u8])) {
        // Walks well-formed records to find the header of `record_index`.
        let mut o = 24;
        for _ in 0..record_index {
            let incl =
                u32::from_le_bytes([bytes[o + 8], bytes[o + 9], bytes[o + 10], bytes[o + 11]])
                    as usize;
            o += 16 + incl;
        }
        f(&mut bytes[o..o + 16]);
    }

    #[test]
    fn hostile_caplen_is_rejected_without_allocation() {
        // caplen = 0xFFFF_FFFF: the strict reader must error on the length
        // field itself, never attempt a 4 GiB allocation.
        let mut bytes = to_bytes(LinkType::Ethernet, &sample());
        corrupt_record_at(&mut bytes, 0, |rec| {
            rec[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        });
        let err = from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("snap bound"), "{err}");
    }

    #[test]
    fn recovering_reader_skips_hostile_caplen() {
        let mut bytes = to_bytes(LinkType::Ethernet, &sample());
        corrupt_record_at(&mut bytes, 0, |rec| {
            rec[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        });
        let rec = from_bytes_recovering(&bytes, PcapLimits::default()).unwrap();
        assert_eq!(rec.packets.len(), sample().len() - 1);
        assert_eq!(rec.stats.dropped_records, 1);
        assert_eq!(rec.stats.resyncs, 1);
        assert!(rec.stats.bytes_skipped > 0);
        assert!(!rec.stats.is_clean());
    }

    #[test]
    fn recovering_reader_resyncs_after_bitflipped_length() {
        let mut bytes = to_bytes(LinkType::Ethernet, &sample());
        // Lie modestly: claim more bytes than the record has, so the reader
        // mis-frames and must resync on the following record header.
        corrupt_record_at(&mut bytes, 1, |rec| {
            rec[8..12].copy_from_slice(&9_000u32.to_le_bytes());
        });
        let rec = from_bytes_recovering(&bytes, PcapLimits::default()).unwrap();
        assert_eq!(rec.packets.len(), sample().len() - 1);
        assert_eq!(rec.stats.records, (sample().len() - 1) as u64);
        assert_eq!(rec.stats.dropped_records, 1);
        assert_eq!(rec.stats.resyncs, 1);
    }

    #[test]
    fn recovering_reader_handles_clean_capture() {
        let bytes = to_bytes(LinkType::Ethernet, &sample());
        let rec = from_bytes_recovering(&bytes, PcapLimits::default()).unwrap();
        assert_eq!(rec.link, LinkType::Ethernet);
        assert_eq!(rec.packets.len(), sample().len());
        assert!(rec.stats.is_clean());
        let strict = from_bytes(&bytes).unwrap().1;
        assert_eq!(rec.packets, strict);
    }

    #[test]
    fn lazy_reader_matches_batch_recovery_under_corruption() {
        // The streaming source stage pulls packets one at a time; the
        // incremental path must see exactly what the batch collect sees —
        // same packets, same final accounting — even through a resync.
        let mut bytes = to_bytes(LinkType::Ethernet, &sample());
        corrupt_record_at(&mut bytes, 1, |rec| {
            rec[8..12].copy_from_slice(&9_000u32.to_le_bytes());
        });
        let batch = from_bytes_recovering(&bytes, PcapLimits::default()).unwrap();

        let mut lazy = RecoveringReader::new(&bytes, PcapLimits::default()).unwrap();
        assert_eq!(lazy.link_type(), batch.link);
        assert!(lazy.stats().is_clean(), "no accounting before any pull");
        let mut pulled = Vec::new();
        while let Some(p) = lazy.next_packet() {
            // The running snapshot counts every packet yielded so far.
            pulled.push(p);
            assert_eq!(lazy.stats().records, pulled.len() as u64);
        }
        assert_eq!(pulled, batch.packets);
        assert_eq!(lazy.stats(), batch.stats);
        assert_eq!(lazy.next_packet(), None, "exhausted reader stays done");
    }

    #[test]
    fn lazy_reader_stops_at_packet_limit() {
        let bytes = to_bytes(LinkType::Ethernet, &sample());
        let limits = PcapLimits {
            max_packets: 2,
            ..PcapLimits::default()
        };
        let lazy: Vec<_> = RecoveringReader::new(&bytes, limits).unwrap().collect();
        let batch = from_bytes_recovering(&bytes, limits).unwrap();
        assert_eq!(lazy.len(), 2);
        assert_eq!(lazy, batch.packets);
        assert!(batch.stats.limit_hit);
    }

    #[test]
    fn zero_length_records_are_legal() {
        let pkts = vec![
            CapturedPacket::new(1, vec![]),
            CapturedPacket::new(2, vec![0xAA; 40]),
            CapturedPacket::new(3, vec![]),
        ];
        let bytes = to_bytes(LinkType::Ethernet, &pkts);
        let (_, strict) = from_bytes(&bytes).unwrap();
        assert_eq!(strict, pkts);
        let rec = from_bytes_recovering(&bytes, PcapLimits::default()).unwrap();
        assert_eq!(rec.packets, pkts);
        assert!(rec.stats.is_clean());
    }

    #[test]
    fn recovering_reader_counts_timestamp_regressions() {
        let pkts = vec![
            CapturedPacket::new(5_000_000, vec![1; 10]),
            CapturedPacket::new(2_000_000, vec![2; 10]),
            CapturedPacket::new(6_000_000, vec![3; 10]),
        ];
        let bytes = to_bytes(LinkType::Ethernet, &pkts);
        let rec = from_bytes_recovering(&bytes, PcapLimits::default()).unwrap();
        assert_eq!(rec.packets.len(), 3);
        assert_eq!(rec.stats.ts_regressions, 1);
    }

    #[test]
    fn recovering_reader_flags_truncated_tail() {
        let mut bytes = to_bytes(LinkType::Ethernet, &sample());
        bytes.truncate(bytes.len() - 3);
        let rec = from_bytes_recovering(&bytes, PcapLimits::default()).unwrap();
        assert_eq!(rec.packets.len(), sample().len() - 1);
        assert!(rec.stats.truncated_tail);
        assert!(rec.stats.bytes_skipped > 0);
    }

    #[test]
    fn limits_stop_the_read_early() {
        let bytes = to_bytes(LinkType::Ethernet, &sample());
        let rec = from_bytes_recovering(
            &bytes,
            PcapLimits {
                max_packets: 1,
                ..PcapLimits::default()
            },
        )
        .unwrap();
        assert_eq!(rec.packets.len(), 1);
        assert!(rec.stats.limit_hit);

        let rec = from_bytes_recovering(
            &bytes,
            PcapLimits {
                max_total_bytes: 1,
                ..PcapLimits::default()
            },
        )
        .unwrap();
        assert!(rec.packets.is_empty());
        assert!(rec.stats.limit_hit);
    }

    #[test]
    fn recovering_reader_rejects_garbage_header() {
        assert!(from_bytes_recovering(&[0u8; 10], PcapLimits::default()).is_err());
        assert!(from_bytes_recovering(&[0xAB; 64], PcapLimits::default()).is_err());
    }

    #[test]
    fn snaplen_bound_is_clamped() {
        // A capture whose header advertises snaplen = 16 must still accept
        // ordinary packets: the effective bound never drops below 64 KiB.
        let mut bytes = to_bytes(LinkType::Ethernet, &sample());
        bytes[16..20].copy_from_slice(&16u32.to_le_bytes());
        let (_, pkts) = from_bytes(&bytes).unwrap();
        assert_eq!(pkts.len(), sample().len());
    }
}
