//! ARP packets for Ethernet/IPv4 (RFC 826).
//!
//! ARP matters for the benchmark suite because the IEEE IoT dataset's
//! man-in-the-middle scenario is an ARP-spoofing attack: gratuitous replies
//! claiming the gateway's IP with the attacker's MAC.

use std::net::Ipv4Addr;

use super::MacAddr;
use crate::decode::{DecodeError, DecodeReason, Layer};
use crate::Result;

/// ARP packet length for the Ethernet/IPv4 combination.
pub const PACKET_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOperation {
    Request,
    Reply,
    Other(u16),
}

impl From<u16> for ArpOperation {
    fn from(v: u16) -> Self {
        match v {
            1 => ArpOperation::Request,
            2 => ArpOperation::Reply,
            other => ArpOperation::Other(other),
        }
    }
}

impl From<ArpOperation> for u16 {
    fn from(op: ArpOperation) -> u16 {
        match op {
            ArpOperation::Request => 1,
            ArpOperation::Reply => 2,
            ArpOperation::Other(v) => v,
        }
    }
}

/// A read/write wrapper over an Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone)]
pub struct ArpPacket<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> ArpPacket<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> ArpPacket<T> {
        ArpPacket { buffer }
    }

    /// Wraps a buffer, verifying length and the Ethernet/IPv4 hardware and
    /// protocol types.
    pub fn new_checked(buffer: T) -> Result<ArpPacket<T>> {
        let len = buffer.as_ref().len();
        if len < PACKET_LEN {
            return Err(DecodeError::truncated(Layer::Net, "arp", PACKET_LEN, len).into());
        }
        let p = ArpPacket { buffer };
        let b = p.buffer.as_ref();
        let htype = u16::from_be_bytes([b[0], b[1]]);
        if htype != 1 {
            return Err(DecodeError::new(
                Layer::Net,
                "arp",
                0,
                DecodeReason::BadField {
                    field: "hardware type",
                    value: u64::from(htype),
                },
            )
            .into());
        }
        let ptype = u16::from_be_bytes([b[2], b[3]]);
        if ptype != 0x0800 {
            return Err(DecodeError::new(
                Layer::Net,
                "arp",
                2,
                DecodeReason::BadField {
                    field: "protocol type",
                    value: u64::from(ptype),
                },
            )
            .into());
        }
        if b[4] != 6 || b[5] != 4 {
            return Err(DecodeError::new(
                Layer::Net,
                "arp",
                4,
                DecodeReason::BadField {
                    field: "address lengths",
                    value: (u64::from(b[4]) << 8) | u64::from(b[5]),
                },
            )
            .into());
        }
        Ok(p)
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Operation (request/reply).
    pub fn operation(&self) -> ArpOperation {
        ArpOperation::from(u16::from_be_bytes([self.b()[6], self.b()[7]]))
    }

    /// Sender hardware address.
    pub fn sender_mac(&self) -> MacAddr {
        MacAddr::from_slice(&self.b()[8..14])
    }

    /// Sender protocol address.
    pub fn sender_ip(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[14], b[15], b[16], b[17])
    }

    /// Target hardware address.
    pub fn target_mac(&self) -> MacAddr {
        MacAddr::from_slice(&self.b()[18..24])
    }

    /// Target protocol address.
    pub fn target_ip(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[24], b[25], b[26], b[27])
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> ArpPacket<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Writes the fixed Ethernet/IPv4 preamble (htype/ptype/hlen/plen).
    pub fn fill_preamble(&mut self) {
        let m = self.m();
        m[0..2].copy_from_slice(&1u16.to_be_bytes());
        m[2..4].copy_from_slice(&0x0800u16.to_be_bytes());
        m[4] = 6;
        m[5] = 4;
    }

    /// Sets the operation.
    pub fn set_operation(&mut self, op: ArpOperation) {
        self.m()[6..8].copy_from_slice(&u16::from(op).to_be_bytes());
    }

    /// Sets the sender hardware address.
    pub fn set_sender_mac(&mut self, mac: MacAddr) {
        self.m()[8..14].copy_from_slice(&mac.0);
    }

    /// Sets the sender protocol address.
    pub fn set_sender_ip(&mut self, ip: Ipv4Addr) {
        self.m()[14..18].copy_from_slice(&ip.octets());
    }

    /// Sets the target hardware address.
    pub fn set_target_mac(&mut self, mac: MacAddr) {
        self.m()[18..24].copy_from_slice(&mac.0);
    }

    /// Sets the target protocol address.
    pub fn set_target_ip(&mut self, ip: Ipv4Addr) {
        self.m()[24..28].copy_from_slice(&ip.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_roundtrip() {
        let mut buf = [0u8; PACKET_LEN];
        let mut p = ArpPacket::new_unchecked(&mut buf[..]);
        p.fill_preamble();
        p.set_operation(ArpOperation::Reply);
        p.set_sender_mac(MacAddr::from_id(66));
        p.set_sender_ip(Ipv4Addr::new(192, 168, 1, 1));
        p.set_target_mac(MacAddr::from_id(5));
        p.set_target_ip(Ipv4Addr::new(192, 168, 1, 50));

        let p = ArpPacket::new_checked(&buf[..]).unwrap();
        assert_eq!(p.operation(), ArpOperation::Reply);
        assert_eq!(p.sender_mac(), MacAddr::from_id(66));
        assert_eq!(p.sender_ip(), Ipv4Addr::new(192, 168, 1, 1));
        assert_eq!(p.target_ip(), Ipv4Addr::new(192, 168, 1, 50));
    }

    #[test]
    fn rejects_wrong_hardware_type() {
        let mut buf = [0u8; PACKET_LEN];
        buf[1] = 6; // token ring
        buf[2] = 0x08;
        let err = ArpPacket::new_checked(&buf[..]).unwrap_err();
        assert_eq!(
            err.decode().unwrap().reason,
            DecodeReason::BadField { field: "hardware type", value: 6 }
        );
    }

    #[test]
    fn rejects_short() {
        assert!(ArpPacket::new_checked(&[0u8; 27][..]).is_err());
    }
}
