//! IEEE 802.11 frames (management + data), enough to model the AWID3
//! wireless-attack traces: deauthentication floods, disassociation,
//! evil-twin beacons, and ordinary data frames.
//!
//! Covers the common 24-byte MAC header (frame control, duration, three
//! addresses, sequence control). QoS/HT extensions and FCS are out of scope;
//! the AWID3-like recipes never emit them.

use super::MacAddr;
use crate::decode::{DecodeError, DecodeReason, Layer};
use crate::Result;

/// Length of the MAC header handled here.
pub const HEADER_LEN: usize = 24;

/// Frame type from the frame-control field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dot11Type {
    Management,
    Control,
    Data,
    Extension,
}

impl Dot11Type {
    fn from_bits(bits: u8) -> Dot11Type {
        match bits & 0x03 {
            0 => Dot11Type::Management,
            1 => Dot11Type::Control,
            2 => Dot11Type::Data,
            _ => Dot11Type::Extension,
        }
    }
}

/// Management-frame subtypes Lumen generates and recognizes.
pub mod subtype {
    pub const ASSOC_REQUEST: u8 = 0;
    pub const PROBE_REQUEST: u8 = 4;
    pub const PROBE_RESPONSE: u8 = 5;
    pub const BEACON: u8 = 8;
    pub const DISASSOCIATION: u8 = 10;
    pub const AUTHENTICATION: u8 = 11;
    pub const DEAUTHENTICATION: u8 = 12;
    /// Data-frame subtype "data".
    pub const DATA: u8 = 0;
}

/// A read/write wrapper over an 802.11 frame buffer.
#[derive(Debug, Clone)]
pub struct Dot11Frame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Dot11Frame<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Dot11Frame<T> {
        Dot11Frame { buffer }
    }

    /// Wraps a buffer, verifying the minimum header length and protocol
    /// version 0.
    pub fn new_checked(buffer: T) -> Result<Dot11Frame<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(DecodeError::truncated(Layer::Link, "802.11", HEADER_LEN, len).into());
        }
        let f = Dot11Frame { buffer };
        let version = f.buffer.as_ref()[0] & 0x03;
        if version != 0 {
            return Err(DecodeError::new(
                Layer::Link,
                "802.11",
                0,
                DecodeReason::BadVersion {
                    expected: 0,
                    got: version,
                },
            )
            .into());
        }
        Ok(f)
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Frame type.
    pub fn frame_type(&self) -> Dot11Type {
        Dot11Type::from_bits(self.b()[0] >> 2)
    }

    /// Frame subtype (meaning depends on type).
    pub fn frame_subtype(&self) -> u8 {
        self.b()[0] >> 4
    }

    /// Duration/ID field.
    pub fn duration(&self) -> u16 {
        u16::from_le_bytes([self.b()[2], self.b()[3]])
    }

    /// Address 1 (receiver).
    pub fn addr1(&self) -> MacAddr {
        MacAddr::from_slice(&self.b()[4..10])
    }

    /// Address 2 (transmitter).
    pub fn addr2(&self) -> MacAddr {
        MacAddr::from_slice(&self.b()[10..16])
    }

    /// Address 3 (BSSID in infrastructure frames).
    pub fn addr3(&self) -> MacAddr {
        MacAddr::from_slice(&self.b()[16..22])
    }

    /// Sequence number (upper 12 bits of sequence control).
    pub fn sequence(&self) -> u16 {
        u16::from_le_bytes([self.b()[22], self.b()[23]]) >> 4
    }

    /// Frame body after the MAC header (clamped to the buffer: never
    /// panics, even over unchecked short frames).
    pub fn body(&self) -> &[u8] {
        &self.b()[HEADER_LEN.min(self.b().len())..]
    }

    /// Reason code for deauthentication/disassociation frames.
    pub fn reason_code(&self) -> Option<u16> {
        if self.frame_type() == Dot11Type::Management
            && matches!(
                self.frame_subtype(),
                subtype::DEAUTHENTICATION | subtype::DISASSOCIATION
            )
            && self.body().len() >= 2
        {
            let body = self.body();
            Some(u16::from_le_bytes([body[0], body[1]]))
        } else {
            None
        }
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Dot11Frame<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Sets frame control for the given type/subtype with version 0 and no
    /// flags.
    pub fn set_frame_control(&mut self, ty: Dot11Type, sub: u8) {
        let ty_bits = match ty {
            Dot11Type::Management => 0u8,
            Dot11Type::Control => 1,
            Dot11Type::Data => 2,
            Dot11Type::Extension => 3,
        };
        self.m()[0] = (sub << 4) | (ty_bits << 2);
        self.m()[1] = 0;
    }

    /// Sets the duration field.
    pub fn set_duration(&mut self, v: u16) {
        self.m()[2..4].copy_from_slice(&v.to_le_bytes());
    }

    /// Sets address 1 (receiver).
    pub fn set_addr1(&mut self, mac: MacAddr) {
        self.m()[4..10].copy_from_slice(&mac.0);
    }

    /// Sets address 2 (transmitter).
    pub fn set_addr2(&mut self, mac: MacAddr) {
        self.m()[10..16].copy_from_slice(&mac.0);
    }

    /// Sets address 3 (BSSID).
    pub fn set_addr3(&mut self, mac: MacAddr) {
        self.m()[16..22].copy_from_slice(&mac.0);
    }

    /// Sets the sequence number.
    pub fn set_sequence(&mut self, seq: u16) {
        self.m()[22..24].copy_from_slice(&(seq << 4).to_le_bytes());
    }

    /// Mutable frame body.
    pub fn body_mut(&mut self) -> &mut [u8] {
        &mut self.m()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deauth_roundtrip() {
        let mut buf = [0u8; HEADER_LEN + 2];
        let mut f = Dot11Frame::new_unchecked(&mut buf[..]);
        f.set_frame_control(Dot11Type::Management, subtype::DEAUTHENTICATION);
        f.set_duration(314);
        f.set_addr1(MacAddr::from_id(1));
        f.set_addr2(MacAddr::from_id(2));
        f.set_addr3(MacAddr::from_id(2));
        f.set_sequence(99);
        f.body_mut().copy_from_slice(&7u16.to_le_bytes());

        let f = Dot11Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.frame_type(), Dot11Type::Management);
        assert_eq!(f.frame_subtype(), subtype::DEAUTHENTICATION);
        assert_eq!(f.duration(), 314);
        assert_eq!(f.addr1(), MacAddr::from_id(1));
        assert_eq!(f.addr2(), MacAddr::from_id(2));
        assert_eq!(f.sequence(), 99);
        assert_eq!(f.reason_code(), Some(7));
    }

    #[test]
    fn data_frame_has_no_reason() {
        let mut buf = [0u8; HEADER_LEN + 8];
        let mut f = Dot11Frame::new_unchecked(&mut buf[..]);
        f.set_frame_control(Dot11Type::Data, subtype::DATA);
        let f = Dot11Frame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.frame_type(), Dot11Type::Data);
        assert_eq!(f.reason_code(), None);
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = [0u8; HEADER_LEN];
        buf[0] = 0x01;
        assert!(Dot11Frame::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn rejects_short() {
        assert!(Dot11Frame::new_checked(&[0u8; 23][..]).is_err());
    }
}
