//! Ethernet II framing.

use super::MacAddr;
use crate::decode::{DecodeError, Layer};
use crate::Result;

/// Ethernet II header length in bytes.
pub const HEADER_LEN: usize = 14;

/// EtherType values Lumen understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    Ipv4,
    Arp,
    Ipv6,
    /// Anything else, carried verbatim.
    Other(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86DD => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> u16 {
        match t {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Other(v) => v,
        }
    }
}

/// A read/write wrapper over an Ethernet II frame buffer.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> EthernetFrame<T> {
        EthernetFrame { buffer }
    }

    /// Wraps a buffer, verifying it is long enough for the header.
    pub fn new_checked(buffer: T) -> Result<EthernetFrame<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(DecodeError::truncated(Layer::Link, "ethernet", HEADER_LEN, len).into());
        }
        Ok(EthernetFrame { buffer })
    }

    /// Consumes the wrapper, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC.
    pub fn dst(&self) -> MacAddr {
        MacAddr::from_slice(&self.buffer.as_ref()[0..6])
    }

    /// Source MAC.
    pub fn src(&self) -> MacAddr {
        MacAddr::from_slice(&self.buffer.as_ref()[6..12])
    }

    /// EtherType of the payload.
    pub fn ethertype(&self) -> EtherType {
        let b = self.buffer.as_ref();
        EtherType::from(u16::from_be_bytes([b[12], b[13]]))
    }

    /// Payload bytes after the header (clamped to the buffer: never
    /// panics, even over unchecked short frames).
    pub fn payload(&self) -> &[u8] {
        let b = self.buffer.as_ref();
        &b[HEADER_LEN.min(b.len())..]
    }

    /// Total frame length.
    pub fn total_len(&self) -> usize {
        self.buffer.as_ref().len()
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&mac.0);
    }

    /// Sets the source MAC.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&mac.0);
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, t: EtherType) {
        self.buffer.as_mut()[12..14].copy_from_slice(&u16::from(t).to_be_bytes());
    }

    /// Mutable payload after the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + 4];
        let mut f = EthernetFrame::new_unchecked(&mut buf[..]);
        f.set_dst(MacAddr::BROADCAST);
        f.set_src(MacAddr::from_id(7));
        f.set_ethertype(EtherType::Ipv4);
        f.payload_mut().copy_from_slice(&[1, 2, 3, 4]);
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = frame();
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.dst(), MacAddr::BROADCAST);
        assert_eq!(f.src(), MacAddr::from_id(7));
        assert_eq!(f.ethertype(), EtherType::Ipv4);
        assert_eq!(f.payload(), &[1, 2, 3, 4]);
    }

    #[test]
    fn checked_rejects_short() {
        let err = EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err();
        let d = err.decode().unwrap();
        assert_eq!(d.layer, Layer::Link);
        assert_eq!(d.proto, "ethernet");
        // Unchecked misuse over the same short buffer must not panic.
        assert_eq!(EthernetFrame::new_unchecked(&[0u8; 13][..]).payload(), b"");
    }

    #[test]
    fn ethertype_conversions() {
        for t in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Ipv6,
            EtherType::Other(0x88CC),
        ] {
            assert_eq!(EtherType::from(u16::from(t)), t);
        }
    }
}
