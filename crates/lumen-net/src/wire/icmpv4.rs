//! ICMPv4 messages (RFC 792).

use crate::checksum;
use crate::decode::{DecodeError, Layer};
use crate::Result;

/// ICMP header length (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// Well-known ICMP types used by the synthesizer.
pub mod icmp_type {
    pub const ECHO_REPLY: u8 = 0;
    pub const DEST_UNREACHABLE: u8 = 3;
    pub const ECHO_REQUEST: u8 = 8;
    pub const TIME_EXCEEDED: u8 = 11;
}

/// A read/write wrapper over an ICMPv4 message buffer.
#[derive(Debug, Clone)]
pub struct Icmpv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Icmpv4Packet<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Icmpv4Packet<T> {
        Icmpv4Packet { buffer }
    }

    /// Wraps a buffer, verifying the minimum length.
    pub fn new_checked(buffer: T) -> Result<Icmpv4Packet<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(DecodeError::truncated(Layer::Transport, "icmpv4", HEADER_LEN, len).into());
        }
        Ok(Icmpv4Packet { buffer })
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Message type.
    pub fn msg_type(&self) -> u8 {
        self.b()[0]
    }

    /// Message code.
    pub fn code(&self) -> u8 {
        self.b()[1]
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Echo identifier (meaningful for echo request/reply).
    pub fn echo_id(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// Echo sequence number.
    pub fn echo_seq(&self) -> u16 {
        u16::from_be_bytes([self.b()[6], self.b()[7]])
    }

    /// Payload after the 8-byte header (clamped to the buffer: never
    /// panics, even over unchecked short messages).
    pub fn payload(&self) -> &[u8] {
        &self.b()[HEADER_LEN.min(self.b().len())..]
    }

    /// Verifies the message checksum (covers the whole message).
    pub fn verify_checksum(&self) -> bool {
        checksum::verify(self.b())
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Icmpv4Packet<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Sets the message type.
    pub fn set_msg_type(&mut self, v: u8) {
        self.m()[0] = v;
    }

    /// Sets the message code.
    pub fn set_code(&mut self, v: u8) {
        self.m()[1] = v;
    }

    /// Sets the echo identifier.
    pub fn set_echo_id(&mut self, v: u16) {
        self.m()[4..6].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the echo sequence number.
    pub fn set_echo_seq(&mut self, v: u16) {
        self.m()[6..8].copy_from_slice(&v.to_be_bytes());
    }

    /// Recomputes and stores the checksum.
    pub fn fill_checksum(&mut self) {
        self.m()[2..4].copy_from_slice(&[0, 0]);
        let ck = checksum::internet(self.b());
        self.m()[2..4].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload after the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.m()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        let mut buf = [0u8; HEADER_LEN + 16];
        let mut p = Icmpv4Packet::new_unchecked(&mut buf[..]);
        p.set_msg_type(icmp_type::ECHO_REQUEST);
        p.set_code(0);
        p.set_echo_id(0x1234);
        p.set_echo_seq(7);
        p.payload_mut().copy_from_slice(b"ping-ping-ping!!");
        p.fill_checksum();

        let p = Icmpv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.msg_type(), icmp_type::ECHO_REQUEST);
        assert_eq!(p.echo_id(), 0x1234);
        assert_eq!(p.echo_seq(), 7);
        assert!(p.verify_checksum());
    }

    #[test]
    fn corruption_detected() {
        let mut buf = [0u8; HEADER_LEN];
        let mut p = Icmpv4Packet::new_unchecked(&mut buf[..]);
        p.set_msg_type(icmp_type::ECHO_REPLY);
        p.fill_checksum();
        buf[1] ^= 1;
        assert!(!Icmpv4Packet::new_checked(&buf[..])
            .unwrap()
            .verify_checksum());
    }

    #[test]
    fn rejects_short() {
        assert!(Icmpv4Packet::new_checked(&[0u8; 7][..]).is_err());
    }
}
