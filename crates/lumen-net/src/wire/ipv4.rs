//! IPv4 packets (RFC 791).

use std::net::Ipv4Addr;

use crate::checksum;
use crate::decode::{DecodeError, DecodeReason, Layer};
use crate::Result;

/// Minimum (and, in Lumen-generated traffic, the only) IPv4 header length.
pub const MIN_HEADER_LEN: usize = 20;

/// IP protocol numbers used throughout the workspace.
pub mod protocol {
    pub const ICMP: u8 = 1;
    pub const TCP: u8 = 6;
    pub const UDP: u8 = 17;
}

/// A read/write wrapper over an IPv4 packet buffer.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Ipv4Packet<T> {
        Ipv4Packet { buffer }
    }

    /// Wraps a buffer, validating version, header length, and total length.
    pub fn new_checked(buffer: T) -> Result<Ipv4Packet<T>> {
        let len = buffer.as_ref().len();
        if len < MIN_HEADER_LEN {
            return Err(DecodeError::truncated(Layer::Net, "ipv4", MIN_HEADER_LEN, len).into());
        }
        let pkt = Ipv4Packet { buffer };
        if pkt.version() != 4 {
            return Err(DecodeError::new(
                Layer::Net,
                "ipv4",
                0,
                DecodeReason::BadVersion {
                    expected: 4,
                    got: pkt.version(),
                },
            )
            .into());
        }
        let ihl = pkt.header_len();
        if ihl < MIN_HEADER_LEN || ihl > len {
            // Checked in every build profile — a lying IHL must never slip
            // through release binaries (it used to be a `debug_assert!`).
            return Err(DecodeError::new(
                Layer::Net,
                "ipv4",
                0,
                DecodeReason::BadHeaderLen {
                    len: ihl,
                    min: MIN_HEADER_LEN,
                    max: len,
                },
            )
            .into());
        }
        if (pkt.total_length() as usize) < ihl {
            return Err(DecodeError::new(
                Layer::Net,
                "ipv4",
                2,
                DecodeReason::BadLength {
                    len: pkt.total_length() as usize,
                    min: ihl,
                    max: u16::MAX as usize,
                },
            )
            .into());
        }
        Ok(pkt)
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// IP version field (should be 4).
    pub fn version(&self) -> u8 {
        self.b()[0] >> 4
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        ((self.b()[0] & 0x0F) as usize) * 4
    }

    /// Differentiated services / TOS byte.
    pub fn dscp(&self) -> u8 {
        self.b()[1]
    }

    /// Total length field (header + payload).
    pub fn total_length(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Identification field.
    pub fn identification(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// Don't-fragment flag.
    pub fn dont_frag(&self) -> bool {
        self.b()[6] & 0x40 != 0
    }

    /// More-fragments flag.
    pub fn more_frags(&self) -> bool {
        self.b()[6] & 0x20 != 0
    }

    /// Fragment offset in 8-byte units.
    pub fn frag_offset(&self) -> u16 {
        u16::from_be_bytes([self.b()[6] & 0x1F, self.b()[7]])
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.b()[8]
    }

    /// Transport protocol number.
    pub fn protocol(&self) -> u8 {
        self.b()[9]
    }

    /// Header checksum field.
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[10], self.b()[11]])
    }

    /// Source address.
    pub fn src(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[12], b[13], b[14], b[15])
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.b();
        Ipv4Addr::new(b[16], b[17], b[18], b[19])
    }

    /// Verifies the header checksum. The header length is clamped to the
    /// buffer so even `new_unchecked` misuse over hostile bytes cannot
    /// panic (a lying IHL simply fails verification).
    pub fn verify_checksum(&self) -> bool {
        let hl = self.header_len().min(self.b().len());
        checksum::verify(&self.b()[..hl])
    }

    /// Payload bytes, bounded by the total-length field when it is shorter
    /// than the buffer (trailing capture padding is excluded). Clamped to
    /// the buffer: never panics, even over unchecked hostile bytes.
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len().min(self.b().len());
        let end = (self.total_length() as usize).min(self.b().len());
        &self.b()[hl..end.max(hl)]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Writes version=4 and the header length (bytes, multiple of 4,
    /// 20..=60, within the buffer). Checked in every build profile — this
    /// used to be a `debug_assert!`, which let release builds write a
    /// silently-wrong IHL.
    pub fn set_version_and_header_len(&mut self, header_len: usize) -> Result<()> {
        let max = 60.min(self.b().len());
        if !header_len.is_multiple_of(4) || header_len < MIN_HEADER_LEN || header_len > max {
            return Err(DecodeError::new(
                Layer::Net,
                "ipv4",
                0,
                DecodeReason::BadHeaderLen {
                    len: header_len,
                    min: MIN_HEADER_LEN,
                    max,
                },
            )
            .into());
        }
        self.m()[0] = 0x40 | ((header_len / 4) as u8);
        Ok(())
    }

    /// Sets the DSCP/TOS byte.
    pub fn set_dscp(&mut self, v: u8) {
        self.m()[1] = v;
    }

    /// Sets the total length field.
    pub fn set_total_length(&mut self, v: u16) {
        let bytes = v.to_be_bytes();
        self.m()[2..4].copy_from_slice(&bytes);
    }

    /// Sets the identification field.
    pub fn set_identification(&mut self, v: u16) {
        let bytes = v.to_be_bytes();
        self.m()[4..6].copy_from_slice(&bytes);
    }

    /// Sets the don't-fragment flag (clears fragmentation otherwise).
    pub fn set_dont_frag(&mut self, df: bool) {
        self.m()[6] = if df { 0x40 } else { 0x00 };
        self.m()[7] = 0;
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, v: u8) {
        self.m()[8] = v;
    }

    /// Sets the transport protocol number.
    pub fn set_protocol(&mut self, v: u8) {
        self.m()[9] = v;
    }

    /// Sets the source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        self.m()[12..16].copy_from_slice(&a.octets());
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        self.m()[16..20].copy_from_slice(&a.octets());
    }

    /// Recomputes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        let hl = self.header_len().min(self.b().len());
        self.m()[10..12].copy_from_slice(&[0, 0]);
        let ck = checksum::internet(&self.b()[..hl]);
        self.m()[10..12].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload after the header (clamped to the buffer).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len().min(self.b().len());
        &mut self.m()[hl..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; MIN_HEADER_LEN + payload.len()];
        let total = buf.len() as u16;
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        p.set_version_and_header_len(MIN_HEADER_LEN).unwrap();
        p.set_total_length(total);
        p.set_identification(0xBEEF);
        p.set_dont_frag(true);
        p.set_ttl(64);
        p.set_protocol(protocol::TCP);
        p.set_src(Ipv4Addr::new(192, 168, 1, 10));
        p.set_dst(Ipv4Addr::new(8, 8, 8, 8));
        p.fill_checksum();
        p.payload_mut().copy_from_slice(payload);
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = packet(b"hello");
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.version(), 4);
        assert_eq!(p.header_len(), 20);
        assert_eq!(p.total_length() as usize, buf.len());
        assert_eq!(p.identification(), 0xBEEF);
        assert!(p.dont_frag());
        assert!(!p.more_frags());
        assert_eq!(p.ttl(), 64);
        assert_eq!(p.protocol(), protocol::TCP);
        assert_eq!(p.src(), Ipv4Addr::new(192, 168, 1, 10));
        assert_eq!(p.dst(), Ipv4Addr::new(8, 8, 8, 8));
        assert_eq!(p.payload(), b"hello");
        assert!(p.verify_checksum());
    }

    #[test]
    fn corrupted_header_fails_checksum() {
        let mut buf = packet(b"x");
        buf[8] ^= 0xFF; // flip TTL
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = packet(b"");
        buf[0] = 0x60 | 5; // version 6
        let err = Ipv4Packet::new_checked(&buf[..]).unwrap_err();
        let d = err.decode().expect("structured decode error");
        assert_eq!(d.proto, "ipv4");
        assert_eq!(d.reason, DecodeReason::BadVersion { expected: 4, got: 6 });
    }

    #[test]
    fn rejects_short_buffer() {
        let err = Ipv4Packet::new_checked(&[0u8; 19][..]).unwrap_err();
        let d = err.decode().expect("structured decode error");
        assert_eq!(d.layer, Layer::Net);
        assert_eq!(d.reason, DecodeReason::Truncated { needed: 20, have: 19 });
    }

    #[test]
    fn rejects_bad_ihl_with_structured_reason() {
        // Regression: a lying IHL used to be guarded only by a
        // `debug_assert!` on the write path; the checked decoder must
        // refuse it in release builds too, with a BadHeaderLen reason.
        let mut buf = packet(b"");
        buf[0] = 0x41; // IHL = 4 bytes < 20
        let err = Ipv4Packet::new_checked(&buf[..]).unwrap_err();
        let d = err.decode().expect("structured decode error");
        assert_eq!(
            d.reason,
            DecodeReason::BadHeaderLen { len: 4, min: 20, max: 20 }
        );

        let mut long = packet(b"0123456789");
        long[0] = 0x4F; // IHL = 60 bytes > 30-byte buffer
        let err = Ipv4Packet::new_checked(&long[..]).unwrap_err();
        assert!(matches!(
            err.decode().unwrap().reason,
            DecodeReason::BadHeaderLen { len: 60, .. }
        ));
    }

    #[test]
    fn header_len_setter_is_checked_in_release() {
        let mut buf = vec![0u8; 40];
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        assert!(p.set_version_and_header_len(8).is_err()); // < 20
        assert!(p.set_version_and_header_len(22).is_err()); // not ×4
        assert!(p.set_version_and_header_len(64).is_err()); // > 60
        assert!(p.set_version_and_header_len(20).is_ok());
        let mut short = vec![0u8; 24];
        let mut p = Ipv4Packet::new_unchecked(&mut short[..]);
        assert!(p.set_version_and_header_len(28).is_err()); // beyond buffer
    }

    #[test]
    fn hostile_unchecked_accessors_never_panic() {
        // IHL claims 60 bytes on a 20-byte buffer: clamped, not a panic.
        let mut buf = packet(b"");
        buf[0] = 0x4F;
        let p = Ipv4Packet::new_unchecked(&buf[..]);
        assert_eq!(p.payload(), b"");
        assert!(!p.verify_checksum());
        let mut p = Ipv4Packet::new_unchecked(&mut buf[..]);
        assert!(p.payload_mut().is_empty());
    }

    #[test]
    fn payload_respects_total_length() {
        // Buffer longer than total_length (capture padding).
        let mut buf = packet(b"abcd");
        buf.extend_from_slice(&[0u8; 6]);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.payload(), b"abcd");
    }
}
