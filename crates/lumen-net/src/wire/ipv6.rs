//! IPv6 packets (RFC 8200) — fixed header only.
//!
//! Lumen's synthetic IoT networks are IPv4-first (matching the public
//! datasets), but the nPrint encoding reserves IPv6 field positions, and
//! captures may legitimately carry v6 neighbour discovery chatter, so the
//! parser must handle the fixed header.

use std::net::Ipv6Addr;

use crate::decode::{DecodeError, DecodeReason, Layer};
use crate::Result;

/// IPv6 fixed header length.
pub const HEADER_LEN: usize = 40;

/// A read/write wrapper over an IPv6 packet buffer.
#[derive(Debug, Clone)]
pub struct Ipv6Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv6Packet<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> Ipv6Packet<T> {
        Ipv6Packet { buffer }
    }

    /// Wraps a buffer, validating the version and length.
    pub fn new_checked(buffer: T) -> Result<Ipv6Packet<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(DecodeError::truncated(Layer::Net, "ipv6", HEADER_LEN, len).into());
        }
        let p = Ipv6Packet { buffer };
        if p.version() != 6 {
            return Err(DecodeError::new(
                Layer::Net,
                "ipv6",
                0,
                DecodeReason::BadVersion {
                    expected: 6,
                    got: p.version(),
                },
            )
            .into());
        }
        Ok(p)
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// IP version (should be 6).
    pub fn version(&self) -> u8 {
        self.b()[0] >> 4
    }

    /// Traffic class byte.
    pub fn traffic_class(&self) -> u8 {
        (self.b()[0] << 4) | (self.b()[1] >> 4)
    }

    /// Flow label (20 bits).
    pub fn flow_label(&self) -> u32 {
        let b = self.b();
        (u32::from(b[1] & 0x0F) << 16) | (u32::from(b[2]) << 8) | u32::from(b[3])
    }

    /// Payload length field.
    pub fn payload_length(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// Next-header (transport protocol) number.
    pub fn next_header(&self) -> u8 {
        self.b()[6]
    }

    /// Hop limit.
    pub fn hop_limit(&self) -> u8 {
        self.b()[7]
    }

    /// Source address.
    pub fn src(&self) -> Ipv6Addr {
        let mut o = [0u8; 16];
        o.copy_from_slice(&self.b()[8..24]);
        Ipv6Addr::from(o)
    }

    /// Destination address.
    pub fn dst(&self) -> Ipv6Addr {
        let mut o = [0u8; 16];
        o.copy_from_slice(&self.b()[24..40]);
        Ipv6Addr::from(o)
    }

    /// Payload after the fixed header, bounded by the payload-length
    /// field. Clamped to the buffer: never panics over unchecked bytes.
    pub fn payload(&self) -> &[u8] {
        let start = HEADER_LEN.min(self.b().len());
        let end = (HEADER_LEN + self.payload_length() as usize).min(self.b().len());
        &self.b()[start..end.max(start)]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv6Packet<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Writes version=6 with zero traffic class and flow label.
    pub fn set_version(&mut self) {
        self.m()[0] = 0x60;
        self.m()[1] = 0;
        self.m()[2] = 0;
        self.m()[3] = 0;
    }

    /// Sets the payload-length field.
    pub fn set_payload_length(&mut self, v: u16) {
        self.m()[4..6].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the next-header number.
    pub fn set_next_header(&mut self, v: u8) {
        self.m()[6] = v;
    }

    /// Sets the hop limit.
    pub fn set_hop_limit(&mut self, v: u8) {
        self.m()[7] = v;
    }

    /// Sets the source address.
    pub fn set_src(&mut self, a: Ipv6Addr) {
        self.m()[8..24].copy_from_slice(&a.octets());
    }

    /// Sets the destination address.
    pub fn set_dst(&mut self, a: Ipv6Addr) {
        self.m()[24..40].copy_from_slice(&a.octets());
    }

    /// Mutable payload after the fixed header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.m()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = [0u8; HEADER_LEN + 3];
        let mut p = Ipv6Packet::new_unchecked(&mut buf[..]);
        p.set_version();
        p.set_payload_length(3);
        p.set_next_header(17);
        p.set_hop_limit(64);
        p.set_src(Ipv6Addr::LOCALHOST);
        p.set_dst(Ipv6Addr::new(0xfe80, 0, 0, 0, 0, 0, 0, 1));
        p.payload_mut().copy_from_slice(&[9, 9, 9]);

        let p = Ipv6Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.version(), 6);
        assert_eq!(p.payload_length(), 3);
        assert_eq!(p.next_header(), 17);
        assert_eq!(p.hop_limit(), 64);
        assert_eq!(p.src(), Ipv6Addr::LOCALHOST);
        assert_eq!(p.payload(), &[9, 9, 9]);
    }

    #[test]
    fn rejects_v4_bytes() {
        let buf = [0x45u8; HEADER_LEN];
        let err = Ipv6Packet::new_checked(&buf[..]).unwrap_err();
        assert_eq!(
            err.decode().unwrap().reason,
            DecodeReason::BadVersion { expected: 6, got: 4 }
        );
    }

    #[test]
    fn rejects_short() {
        assert!(Ipv6Packet::new_checked(&[0x60u8; 39][..]).is_err());
    }
}
