//! Byte-exact wire formats.
//!
//! Each protocol exposes a wrapper type over a borrowed or owned byte buffer
//! (the smoltcp idiom): `new_checked` validates structural invariants without
//! copying, typed getters read fields at their wire offsets, and setters are
//! available when the underlying buffer is mutable.

pub mod arp;
pub mod dot11;
pub mod ethernet;
pub mod icmpv4;
pub mod ipv4;
pub mod ipv6;
pub mod tcp;
pub mod udp;

pub use arp::{ArpOperation, ArpPacket};
pub use dot11::{Dot11Frame, Dot11Type};
pub use ethernet::{EtherType, EthernetFrame};
pub use icmpv4::Icmpv4Packet;
pub use ipv4::Ipv4Packet;
pub use ipv6::Ipv6Packet;
pub use tcp::{TcpFlags, TcpSegment};
pub use udp::UdpDatagram;

/// An IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);
    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds an address from a slice; panics if `bytes.len() != 6`.
    pub fn from_slice(bytes: &[u8]) -> MacAddr {
        let mut a = [0u8; 6];
        a.copy_from_slice(bytes);
        MacAddr(a)
    }

    /// Deterministically derives a locally-administered unicast address from
    /// an integer id; used by the traffic synthesizer to give each simulated
    /// device a stable MAC.
    pub fn from_id(id: u64) -> MacAddr {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == MacAddr::BROADCAST
    }

    /// True when the group bit (LSB of first octet) is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Returns the raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Packs the address into the low 48 bits of a `u64` (hashable group key).
    pub fn to_u64(&self) -> u64 {
        let mut v = 0u64;
        for &b in &self.0 {
            v = (v << 8) | u64::from(b);
        }
        v
    }
}

impl std::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let m = MacAddr([0x02, 0x00, 0x00, 0xab, 0xcd, 0xef]);
        assert_eq!(m.to_string(), "02:00:00:ab:cd:ef");
    }

    #[test]
    fn broadcast_and_multicast() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::from_id(1).is_multicast());
    }

    #[test]
    fn from_id_stable_and_distinct() {
        assert_eq!(MacAddr::from_id(42), MacAddr::from_id(42));
        assert_ne!(MacAddr::from_id(1), MacAddr::from_id(2));
    }

    #[test]
    fn u64_roundtrip_low_48_bits() {
        let m = MacAddr([0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc]);
        assert_eq!(m.to_u64(), 0x1234_5678_9abc);
    }
}
