//! TCP segments (RFC 793).

use std::net::Ipv4Addr;

use crate::checksum;
use crate::decode::{DecodeError, DecodeReason, Layer};
use crate::Result;

/// Minimum TCP header length (no options).
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits as a transparent wrapper over the wire byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    pub const FIN: TcpFlags = TcpFlags(0x01);
    pub const SYN: TcpFlags = TcpFlags(0x02);
    pub const RST: TcpFlags = TcpFlags(0x04);
    pub const PSH: TcpFlags = TcpFlags(0x08);
    pub const ACK: TcpFlags = TcpFlags(0x10);
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// SYN|ACK, the second step of the handshake.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);
    /// PSH|ACK, a typical data segment.
    pub const PSH_ACK: TcpFlags = TcpFlags(0x18);
    /// FIN|ACK, connection teardown.
    pub const FIN_ACK: TcpFlags = TcpFlags(0x11);

    pub fn fin(self) -> bool {
        self.0 & 0x01 != 0
    }
    pub fn syn(self) -> bool {
        self.0 & 0x02 != 0
    }
    pub fn rst(self) -> bool {
        self.0 & 0x04 != 0
    }
    pub fn psh(self) -> bool {
        self.0 & 0x08 != 0
    }
    pub fn ack(self) -> bool {
        self.0 & 0x10 != 0
    }
    pub fn urg(self) -> bool {
        self.0 & 0x20 != 0
    }

    /// Number of flag bits set.
    pub fn count(self) -> u32 {
        (self.0 & 0x3F).count_ones()
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names = [
            (Self::SYN, 'S'),
            (Self::ACK, 'A'),
            (Self::FIN, 'F'),
            (Self::RST, 'R'),
            (Self::PSH, 'P'),
            (Self::URG, 'U'),
        ];
        for (flag, c) in names {
            if self.0 & flag.0 != 0 {
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// A read/write wrapper over a TCP segment buffer (header + payload).
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> TcpSegment<T> {
        TcpSegment { buffer }
    }

    /// Wraps a buffer, validating the data-offset field.
    pub fn new_checked(buffer: T) -> Result<TcpSegment<T>> {
        let len = buffer.as_ref().len();
        if len < MIN_HEADER_LEN {
            return Err(DecodeError::truncated(Layer::Transport, "tcp", MIN_HEADER_LEN, len).into());
        }
        let seg = TcpSegment { buffer };
        let off = seg.header_len();
        if off < MIN_HEADER_LEN || off > len {
            return Err(DecodeError::new(
                Layer::Transport,
                "tcp",
                12,
                DecodeReason::BadHeaderLen {
                    len: off,
                    min: MIN_HEADER_LEN,
                    max: len,
                },
            )
            .into());
        }
        Ok(seg)
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes([self.b()[4], self.b()[5], self.b()[6], self.b()[7]])
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes([self.b()[8], self.b()[9], self.b()[10], self.b()[11]])
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        ((self.b()[12] >> 4) as usize) * 4
    }

    /// Flag byte.
    pub fn flags(&self) -> TcpFlags {
        TcpFlags(self.b()[13] & 0x3F)
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.b()[14], self.b()[15]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[16], self.b()[17]])
    }

    /// Urgent pointer.
    pub fn urgent_ptr(&self) -> u16 {
        u16::from_be_bytes([self.b()[18], self.b()[19]])
    }

    /// Payload bytes after the header (clamped to the buffer: never
    /// panics, even over unchecked hostile bytes).
    pub fn payload(&self) -> &[u8] {
        &self.b()[self.header_len().min(self.b().len())..]
    }

    /// Verifies the checksum against an IPv4 pseudo-header.
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        checksum::pseudo_ipv4(src, dst, super::ipv4::protocol::TCP, self.b()) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, v: u16) {
        self.m()[0..2].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        self.m()[2..4].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, v: u32) {
        self.m()[4..8].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the acknowledgement number.
    pub fn set_ack(&mut self, v: u32) {
        self.m()[8..12].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the header length in bytes (multiple of 4, 20..=60). Checked
    /// in every build profile, like the IPv4 IHL setter.
    pub fn set_header_len(&mut self, bytes: usize) -> Result<()> {
        if !bytes.is_multiple_of(4) || !(MIN_HEADER_LEN..=60).contains(&bytes) {
            return Err(DecodeError::new(
                Layer::Transport,
                "tcp",
                12,
                DecodeReason::BadHeaderLen {
                    len: bytes,
                    min: MIN_HEADER_LEN,
                    max: 60,
                },
            )
            .into());
        }
        self.m()[12] = ((bytes / 4) as u8) << 4;
        Ok(())
    }

    /// Sets the flag byte.
    pub fn set_flags(&mut self, f: TcpFlags) {
        self.m()[13] = f.0 & 0x3F;
    }

    /// Sets the receive window.
    pub fn set_window(&mut self, v: u16) {
        self.m()[14..16].copy_from_slice(&v.to_be_bytes());
    }

    /// Recomputes and stores the checksum for an IPv4 pseudo-header.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.m()[16..18].copy_from_slice(&[0, 0]);
        let ck = checksum::pseudo_ipv4(src, dst, super::ipv4::protocol::TCP, self.b());
        self.m()[16..18].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload after the header (clamped to the buffer).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len().min(self.b().len());
        &mut self.m()[hl..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn segment(payload: &[u8], flags: TcpFlags) -> Vec<u8> {
        let mut buf = vec![0u8; MIN_HEADER_LEN + payload.len()];
        let mut s = TcpSegment::new_unchecked(&mut buf[..]);
        s.set_src_port(443);
        s.set_dst_port(51234);
        s.set_seq(0x1000_0000);
        s.set_ack(0x2000_0000);
        s.set_header_len(MIN_HEADER_LEN).unwrap();
        s.set_flags(flags);
        s.set_window(65535);
        s.payload_mut().copy_from_slice(payload);
        s.fill_checksum(SRC, DST);
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = segment(b"data", TcpFlags::PSH_ACK);
        let s = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(s.src_port(), 443);
        assert_eq!(s.dst_port(), 51234);
        assert_eq!(s.seq(), 0x1000_0000);
        assert_eq!(s.ack(), 0x2000_0000);
        assert_eq!(s.header_len(), 20);
        assert!(s.flags().psh() && s.flags().ack());
        assert!(!s.flags().syn());
        assert_eq!(s.window(), 65535);
        assert_eq!(s.payload(), b"data");
        assert!(s.verify_checksum(SRC, DST));
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let mut buf = segment(b"data", TcpFlags::ACK);
        let last = buf.len() - 1;
        buf[last] ^= 0x01;
        let s = TcpSegment::new_checked(&buf[..]).unwrap();
        assert!(!s.verify_checksum(SRC, DST));
    }

    #[test]
    fn flags_display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SA");
        assert_eq!((TcpFlags::FIN | TcpFlags::RST).to_string(), "FR");
    }

    #[test]
    fn flag_count() {
        assert_eq!(TcpFlags::SYN.count(), 1);
        assert_eq!(TcpFlags::PSH_ACK.count(), 2);
        assert_eq!(TcpFlags::default().count(), 0);
    }

    #[test]
    fn rejects_short_and_bad_offset() {
        let err = TcpSegment::new_checked(&[0u8; 10][..]).unwrap_err();
        assert!(matches!(
            err.decode().unwrap().reason,
            DecodeReason::Truncated { needed: 20, have: 10 }
        ));
        let mut buf = segment(b"", TcpFlags::SYN);
        buf[12] = 0x10; // offset 4 bytes
        let err = TcpSegment::new_checked(&buf[..]).unwrap_err();
        let d = err.decode().unwrap();
        assert_eq!(d.offset, 12);
        assert!(matches!(d.reason, DecodeReason::BadHeaderLen { len: 4, .. }));
    }

    #[test]
    fn hostile_unchecked_payload_never_panics() {
        let mut buf = segment(b"", TcpFlags::SYN);
        buf[12] = 0xF0; // offset claims 60 bytes on a 20-byte buffer
        let s = TcpSegment::new_unchecked(&buf[..]);
        assert_eq!(s.payload(), b"");
        let mut s = TcpSegment::new_unchecked(&mut buf[..]);
        assert!(s.payload_mut().is_empty());
        assert!(s.set_header_len(64).is_err());
        assert!(s.set_header_len(30).is_err());
    }
}
