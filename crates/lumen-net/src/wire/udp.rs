//! UDP datagrams (RFC 768).

use std::net::Ipv4Addr;

use crate::checksum;
use crate::decode::{DecodeError, DecodeReason, Layer};
use crate::Result;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A read/write wrapper over a UDP datagram buffer (header + payload).
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> UdpDatagram<T> {
        UdpDatagram { buffer }
    }

    /// Wraps a buffer, validating the length field.
    pub fn new_checked(buffer: T) -> Result<UdpDatagram<T>> {
        let len = buffer.as_ref().len();
        if len < HEADER_LEN {
            return Err(DecodeError::truncated(Layer::Transport, "udp", HEADER_LEN, len).into());
        }
        let dgram = UdpDatagram { buffer };
        let wire_len = dgram.length() as usize;
        if wire_len < HEADER_LEN || wire_len > len {
            return Err(DecodeError::new(
                Layer::Transport,
                "udp",
                4,
                DecodeReason::BadLength {
                    len: wire_len,
                    min: HEADER_LEN,
                    max: len,
                },
            )
            .into());
        }
        Ok(dgram)
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.b()[2], self.b()[3]])
    }

    /// Length field (header + payload).
    pub fn length(&self) -> u16 {
        u16::from_be_bytes([self.b()[4], self.b()[5]])
    }

    /// Checksum field.
    pub fn checksum(&self) -> u16 {
        u16::from_be_bytes([self.b()[6], self.b()[7]])
    }

    /// Payload bytes, bounded by the length field. Clamped to the buffer:
    /// never panics, even over unchecked hostile bytes.
    pub fn payload(&self) -> &[u8] {
        let b = self.b();
        if b.len() < HEADER_LEN {
            return &[];
        }
        let end = (self.length() as usize).min(b.len());
        &b[HEADER_LEN..end.max(HEADER_LEN)]
    }

    /// Verifies the checksum against an IPv4 pseudo-header. A zero wire
    /// checksum means "not computed" and verifies trivially (RFC 768).
    /// The wire length is clamped to the buffer (a lying length fails
    /// verification instead of panicking).
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.b().len() < HEADER_LEN {
            return false;
        }
        if self.checksum() == 0 {
            return true;
        }
        let wire_len = (self.length() as usize).min(self.b().len());
        checksum::pseudo_ipv4(src, dst, super::ipv4::protocol::UDP, &self.b()[..wire_len]) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    fn m(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, v: u16) {
        self.m()[0..2].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, v: u16) {
        self.m()[2..4].copy_from_slice(&v.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_length(&mut self, v: u16) {
        self.m()[4..6].copy_from_slice(&v.to_be_bytes());
    }

    /// Recomputes and stores the checksum (mapping 0 to 0xFFFF per RFC 768).
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        self.m()[6..8].copy_from_slice(&[0, 0]);
        let wire_len = (self.length() as usize).min(self.b().len());
        let ck = checksum::pseudo_ipv4(src, dst, super::ipv4::protocol::UDP, &self.b()[..wire_len]);
        let ck = if ck == 0 { 0xFFFF } else { ck };
        self.m()[6..8].copy_from_slice(&ck.to_be_bytes());
    }

    /// Mutable payload after the header (clamped to the buffer).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let start = HEADER_LEN.min(self.b().len());
        &mut self.m()[start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 5);
    const DST: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);

    fn dgram(payload: &[u8]) -> Vec<u8> {
        let mut buf = vec![0u8; HEADER_LEN + payload.len()];
        let total = buf.len() as u16;
        let mut d = UdpDatagram::new_unchecked(&mut buf[..]);
        d.set_src_port(5353);
        d.set_dst_port(53);
        d.set_length(total);
        d.payload_mut().copy_from_slice(payload);
        d.fill_checksum(SRC, DST);
        buf
    }

    #[test]
    fn roundtrip_fields() {
        let buf = dgram(b"query");
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 5353);
        assert_eq!(d.dst_port(), 53);
        assert_eq!(d.length() as usize, buf.len());
        assert_eq!(d.payload(), b"query");
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let mut buf = dgram(b"x");
        buf[6] = 0;
        buf[7] = 0;
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(SRC, DST));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = dgram(b"abc");
        buf[9] ^= 0xFF;
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(SRC, DST));
    }

    #[test]
    fn rejects_bad_length_field() {
        let mut buf = dgram(b"abc");
        buf[4] = 0xFF;
        buf[5] = 0xFF;
        assert!(UdpDatagram::new_checked(&buf[..]).is_err());
    }

    #[test]
    fn rejects_short_buffer() {
        let err = UdpDatagram::new_checked(&[0u8; 7][..]).unwrap_err();
        assert!(matches!(
            err.decode().unwrap().reason,
            DecodeReason::Truncated { needed: 8, have: 7 }
        ));
    }

    #[test]
    fn hostile_unchecked_accessors_never_panic() {
        let d = UdpDatagram::new_unchecked(&[0u8; 3][..]);
        assert_eq!(d.payload(), b"");
        let mut buf = dgram(b"x");
        buf[4] = 0xFF; // length lies far past the buffer
        buf[5] = 0xFF;
        let d = UdpDatagram::new_unchecked(&buf[..]);
        assert_eq!(d.payload(), b"x");
        assert!(!d.verify_checksum(SRC, DST));
    }
}
