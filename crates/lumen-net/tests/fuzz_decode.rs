//! Deterministic decode fuzzing: the no-panic guarantee, exercised.
//!
//! Three attack surfaces, for every wire format:
//!
//! 1. **Arbitrary bytes** — 10k seeded random buffers per format through
//!    `new_checked`, touching every accessor on success.
//! 2. **Truncation at every offset** — a valid buffer cut at each prefix
//!    length, so off-by-one boundary bugs cannot hide between random draws.
//! 3. **Mutation** — a valid buffer with random byte smashes, which (unlike
//!    pure noise) gets past version checks and into the deep field logic.
//!
//! Everything is driven by `lumen_util::Rng`, so failures replay exactly and
//! the suite runs offline. The proptest variants in `proptests.rs` cover the
//! same properties with shrinking when the real `proptest` crate is present.

use std::net::Ipv4Addr;

use lumen_net::builder::{self, TcpParams, UdpParams};
use lumen_net::pcap::{self, from_bytes_recovering, PcapLimits};
use lumen_net::wire::{
    ArpOperation, ArpPacket, Dot11Frame, EthernetFrame, Icmpv4Packet, Ipv4Packet, Ipv6Packet,
    TcpFlags, TcpSegment, UdpDatagram,
};
use lumen_net::{CapturedPacket, DecodeStats, LinkType, MacAddr, PacketMeta};
use lumen_util::Rng;

const CASES: usize = 10_000;
const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// Runs `exercise` over `CASES` seeded random buffers (lengths 0..=256).
fn fuzz_random(seed: u64, exercise: impl Fn(&[u8])) {
    let mut rng = Rng::new(seed);
    for _ in 0..CASES {
        let len = rng.below(257) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        exercise(&buf);
    }
}

/// Runs `exercise` over every prefix of `valid`, then over `CASES` random
/// byte-smashed mutants of it.
fn fuzz_truncate_and_mutate(seed: u64, valid: &[u8], exercise: impl Fn(&[u8])) {
    for cut in 0..=valid.len() {
        exercise(&valid[..cut]);
    }
    let mut rng = Rng::new(seed);
    for _ in 0..CASES {
        let mut buf = valid.to_vec();
        for _ in 0..=rng.below(8) {
            let at = rng.below(buf.len() as u64) as usize;
            buf[at] = rng.below(256) as u8;
        }
        // Mutants are also truncated sometimes, to mix the two surfaces.
        if rng.chance(0.25) {
            buf.truncate(rng.below(buf.len() as u64 + 1) as usize);
        }
        exercise(&buf);
    }
}

fn sample_udp_frame() -> Vec<u8> {
    builder::udp_packet(UdpParams {
        src_mac: MacAddr::from_id(1),
        dst_mac: MacAddr::from_id(2),
        src_ip: SRC,
        dst_ip: DST,
        src_port: 5353,
        dst_port: 53,
        ttl: 64,
        payload: b"fuzz-target-payload",
    })
}

fn sample_tcp_frame() -> Vec<u8> {
    builder::tcp_packet(TcpParams {
        src_mac: MacAddr::from_id(1),
        dst_mac: MacAddr::from_id(2),
        src_ip: SRC,
        dst_ip: DST,
        src_port: 443,
        dst_port: 50000,
        seq: 7,
        ack: 9,
        flags: TcpFlags::ACK,
        window: 1024,
        ttl: 64,
        payload: b"tcp-fuzz",
    })
}

/// A minimal valid IPv6 header + payload (no builder exists for IPv6).
fn sample_ipv6() -> Vec<u8> {
    let payload = b"v6-payload";
    let mut b = vec![0u8; 40 + payload.len()];
    b[0] = 0x60; // version 6
    b[4..6].copy_from_slice(&(payload.len() as u16).to_be_bytes());
    b[6] = 17; // next header: UDP
    b[7] = 64; // hop limit
    b[8..24].copy_from_slice(&[0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
    b[24..40].copy_from_slice(&[0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2]);
    b[40..].copy_from_slice(payload);
    b
}

fn exercise_ethernet(b: &[u8]) {
    if let Ok(f) = EthernetFrame::new_checked(b) {
        let _ = (f.dst(), f.src(), f.ethertype(), f.total_len());
        let _ = f.payload();
    }
}

fn exercise_ipv4(b: &[u8]) {
    if let Ok(p) = Ipv4Packet::new_checked(b) {
        let _ = (p.version(), p.header_len(), p.dscp(), p.total_length());
        let _ = (p.identification(), p.dont_frag(), p.more_frags());
        let _ = (p.frag_offset(), p.ttl(), p.protocol(), p.header_checksum());
        let _ = (p.src(), p.dst(), p.verify_checksum());
        let _ = p.payload();
    }
}

fn exercise_ipv6(b: &[u8]) {
    if let Ok(p) = Ipv6Packet::new_checked(b) {
        let _ = (p.version(), p.traffic_class(), p.flow_label());
        let _ = (p.payload_length(), p.next_header(), p.hop_limit());
        let _ = (p.src(), p.dst());
        let _ = p.payload();
    }
}

fn exercise_arp(b: &[u8]) {
    if let Ok(p) = ArpPacket::new_checked(b) {
        let _ = (p.operation(), p.sender_mac(), p.sender_ip());
        let _ = (p.target_mac(), p.target_ip());
    }
}

fn exercise_tcp(b: &[u8]) {
    if let Ok(s) = TcpSegment::new_checked(b) {
        let _ = (s.src_port(), s.dst_port(), s.seq(), s.ack());
        let _ = (s.header_len(), s.flags(), s.window(), s.urgent_ptr());
        let _ = (s.checksum(), s.verify_checksum(SRC, DST));
        let _ = s.payload();
    }
}

fn exercise_udp(b: &[u8]) {
    if let Ok(d) = UdpDatagram::new_checked(b) {
        let _ = (d.src_port(), d.dst_port(), d.length(), d.checksum());
        let _ = d.verify_checksum(SRC, DST);
        let _ = d.payload();
    }
}

fn exercise_icmpv4(b: &[u8]) {
    if let Ok(p) = Icmpv4Packet::new_checked(b) {
        let _ = (p.msg_type(), p.code(), p.checksum());
        let _ = (p.echo_id(), p.echo_seq(), p.verify_checksum());
        let _ = p.payload();
    }
}

fn exercise_dot11(b: &[u8]) {
    if let Ok(f) = Dot11Frame::new_checked(b) {
        let _ = (f.frame_type(), f.frame_subtype(), f.duration());
        let _ = (f.addr1(), f.addr2(), f.addr3(), f.sequence());
        let _ = (f.body(), f.reason_code());
    }
}

#[test]
fn ethernet_decode_never_panics() {
    fuzz_random(0xE7, exercise_ethernet);
    fuzz_truncate_and_mutate(0x1E7, &sample_udp_frame(), exercise_ethernet);
}

#[test]
fn ipv4_decode_never_panics() {
    fuzz_random(0x04, exercise_ipv4);
    let frame = sample_udp_frame();
    let ip = EthernetFrame::new_checked(&frame[..]).unwrap().payload().to_vec();
    fuzz_truncate_and_mutate(0x104, &ip, exercise_ipv4);
}

#[test]
fn ipv6_decode_never_panics() {
    fuzz_random(0x06, exercise_ipv6);
    fuzz_truncate_and_mutate(0x106, &sample_ipv6(), exercise_ipv6);
}

#[test]
fn arp_decode_never_panics() {
    fuzz_random(0xA7, exercise_arp);
    let frame = builder::arp_packet(
        MacAddr::from_id(1),
        SRC,
        MacAddr::BROADCAST,
        DST,
        ArpOperation::Request,
    );
    let arp = EthernetFrame::new_checked(&frame[..]).unwrap().payload().to_vec();
    fuzz_truncate_and_mutate(0x1A7, &arp, exercise_arp);
}

#[test]
fn tcp_decode_never_panics() {
    fuzz_random(0x7C, exercise_tcp);
    let frame = sample_tcp_frame();
    let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
    let tcp = Ipv4Packet::new_checked(eth.payload()).unwrap().payload().to_vec();
    fuzz_truncate_and_mutate(0x17C, &tcp, exercise_tcp);
}

#[test]
fn udp_decode_never_panics() {
    fuzz_random(0x0D, exercise_udp);
    let frame = sample_udp_frame();
    let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
    let udp = Ipv4Packet::new_checked(eth.payload()).unwrap().payload().to_vec();
    fuzz_truncate_and_mutate(0x10D, &udp, exercise_udp);
}

#[test]
fn icmpv4_decode_never_panics() {
    fuzz_random(0x1C, exercise_icmpv4);
    let frame = builder::icmp_echo(
        MacAddr::from_id(1),
        MacAddr::from_id(2),
        SRC,
        DST,
        false,
        7,
        1,
        b"ping",
    );
    let eth = EthernetFrame::new_checked(&frame[..]).unwrap();
    let icmp = Ipv4Packet::new_checked(eth.payload()).unwrap().payload().to_vec();
    fuzz_truncate_and_mutate(0x11C, &icmp, exercise_icmpv4);
}

#[test]
fn dot11_decode_never_panics() {
    fuzz_random(0x80, exercise_dot11);
    let frame = builder::dot11_deauth(MacAddr::from_id(3), MacAddr::from_id(4), 7, 1);
    fuzz_truncate_and_mutate(0x180, &frame, exercise_dot11);
}

#[test]
fn packet_meta_parse_never_panics_and_accounts() {
    // Arbitrary bytes through the whole-packet parser, both link types,
    // via the quarantining entry point: the ledger must stay consistent.
    for (seed, link) in [(0x90u64, LinkType::Ethernet), (0x91, LinkType::Ieee80211)] {
        let mut rng = Rng::new(seed);
        let mut stats = DecodeStats::default();
        let mut kept = 0u64;
        for _ in 0..CASES {
            let len = rng.below(257) as usize;
            let buf: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            if PacketMeta::parse_recorded(link, 0, &buf, &mut stats).is_ok() {
                kept += 1;
            }
        }
        assert_eq!(stats.frames, CASES as u64);
        assert_eq!(stats.parsed, kept);
        // Every refused frame left a trace in some per-layer counter.
        assert!(stats.total_errors() >= stats.frames - stats.parsed);
    }
    // Every truncation of valid TCP/UDP frames through the plain parser.
    for frame in [sample_udp_frame(), sample_tcp_frame()] {
        for cut in 0..=frame.len() {
            let _ = PacketMeta::parse(LinkType::Ethernet, 0, &frame[..cut]);
        }
    }
}

#[test]
fn recovering_reader_never_panics_on_fuzzed_captures() {
    // Surface 1: pure noise (usually fails the magic check — fine, as long
    // as it never panics).
    let mut rng = Rng::new(0xF0);
    for _ in 0..1_000 {
        let len = rng.below(600) as usize;
        let buf: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let _ = from_bytes_recovering(&buf, PcapLimits::default());
    }
    // Surface 2: a valid capture with random byte smashes and truncations —
    // this must always yield a capture, never an error or a panic, and the
    // stats must account for every kept packet.
    let packets: Vec<CapturedPacket> = (0..40)
        .map(|i| CapturedPacket::new(1_000 * i, sample_udp_frame()))
        .collect();
    let clean = pcap::to_bytes(LinkType::Ethernet, &packets);
    for round in 0..400u64 {
        let mut dirty = clean.clone();
        let mut rng = Rng::new(0xF1 ^ round);
        for _ in 0..=rng.below(32) {
            // Smash anywhere after the global header (a destroyed magic is
            // unrecoverable by design and returns Err, tested above).
            let at = 24 + rng.below(dirty.len() as u64 - 24) as usize;
            dirty[at] = rng.below(256) as u8;
        }
        if rng.chance(0.3) {
            dirty.truncate(24 + rng.below(dirty.len() as u64 - 24) as usize);
        }
        let rec = from_bytes_recovering(&dirty, PcapLimits::default())
            .expect("intact global header always recovers");
        assert_eq!(rec.packets.len() as u64, rec.stats.records);
        assert!(rec.packets.len() <= packets.len() + 1, "resync must not invent packets");
    }
}
