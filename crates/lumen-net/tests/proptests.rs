//! Property-based tests for the wire formats and pcap container.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use lumen_net::builder::{self, payloads, TcpParams, UdpParams};
use lumen_net::wire::arp::ArpOperation;
use lumen_net::wire::tcp::TcpFlags;
use lumen_net::{pcap, CapturedPacket, LinkType, MacAddr, PacketMeta};

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

proptest! {
    /// pcap serialization round-trips arbitrary packet records exactly.
    #[test]
    fn pcap_roundtrip(
        pkts in proptest::collection::vec(
            (0u64..u64::from(u32::MAX) * 1_000_000, proptest::collection::vec(any::<u8>(), 0..300)),
            0..40
        )
    ) {
        let packets: Vec<CapturedPacket> = pkts
            .into_iter()
            .map(|(ts, data)| CapturedPacket::new(ts, data))
            .collect();
        let bytes = pcap::to_bytes(LinkType::Ethernet, &packets);
        let (link, back) = pcap::from_bytes(&bytes).unwrap();
        prop_assert_eq!(link, LinkType::Ethernet);
        prop_assert_eq!(back, packets);
    }

    /// UDP frames round-trip all fields and verify checksums, for any
    /// address/port/payload combination.
    #[test]
    fn udp_roundtrip(
        src in arb_ip(),
        dst in arb_ip(),
        smac in arb_mac(),
        dmac in arb_mac(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let frame = builder::udp_packet(UdpParams {
            src_mac: smac,
            dst_mac: dmac,
            src_ip: src,
            dst_ip: dst,
            src_port: sport,
            dst_port: dport,
            ttl,
            payload: &payload,
        });
        let meta = PacketMeta::parse(LinkType::Ethernet, 7, &frame).unwrap();
        prop_assert_eq!(meta.src_mac, smac);
        prop_assert_eq!(meta.dst_mac, dmac);
        let ip = meta.ipv4.unwrap();
        prop_assert_eq!(ip.src, src);
        prop_assert_eq!(ip.dst, dst);
        prop_assert_eq!(meta.transport.src_port(), Some(sport));
        prop_assert_eq!(meta.transport.dst_port(), Some(dport));
        prop_assert_eq!(meta.payload_len as usize, payload.len());
        // Embedded checksums verify.
        let eth = lumen_net::wire::EthernetFrame::new_checked(&frame[..]).unwrap();
        let ipp = lumen_net::wire::Ipv4Packet::new_checked(eth.payload()).unwrap();
        prop_assert!(ipp.verify_checksum());
        let udp = lumen_net::wire::UdpDatagram::new_checked(ipp.payload()).unwrap();
        prop_assert!(udp.verify_checksum(src, dst));
    }

    /// Corrupting any single payload byte of a TCP frame breaks its
    /// transport checksum (error detection actually works).
    #[test]
    fn tcp_checksum_detects_any_single_payload_flip(
        payload in proptest::collection::vec(any::<u8>(), 1..120),
        flip_at_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        let mut frame = builder::tcp_packet(TcpParams {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip: src,
            dst_ip: dst,
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 100,
            ttl: 64,
            payload: &payload,
        });
        let payload_start = frame.len() - payload.len();
        let flip_at = payload_start + ((payload.len() - 1) as f64 * flip_at_frac) as usize;
        frame[flip_at] ^= 1 << flip_bit;
        let eth = lumen_net::wire::EthernetFrame::new_checked(&frame[..]).unwrap();
        let ipp = lumen_net::wire::Ipv4Packet::new_checked(eth.payload()).unwrap();
        let tcp = lumen_net::wire::TcpSegment::new_checked(ipp.payload()).unwrap();
        prop_assert!(!tcp.verify_checksum(src, dst));
    }

    /// ARP build/parse round-trip.
    #[test]
    fn arp_roundtrip(
        sender_ip in arb_ip(),
        target_ip in arb_ip(),
        sender_mac in arb_mac(),
        is_reply in any::<bool>(),
    ) {
        let op = if is_reply { ArpOperation::Reply } else { ArpOperation::Request };
        let frame = builder::arp_packet(sender_mac, sender_ip, MacAddr::BROADCAST, target_ip, op);
        let meta = PacketMeta::parse(LinkType::Ethernet, 0, &frame).unwrap();
        let arp = meta.arp.unwrap();
        prop_assert_eq!(arp.operation, op);
        prop_assert_eq!(arp.sender_mac, sender_mac);
        prop_assert_eq!(arp.sender_ip, sender_ip);
        prop_assert_eq!(arp.target_ip, target_ip);
    }

    /// The parser never panics on arbitrary bytes (malformed input is an
    /// error or a partially-empty summary, never a crash).
    #[test]
    fn parser_never_panics_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..200),
        wifi in any::<bool>(),
    ) {
        let link = if wifi { LinkType::Ieee80211 } else { LinkType::Ethernet };
        let _ = PacketMeta::parse(link, 0, &data);
    }

    /// DNS query encoding is parseable enough to round-trip the name length
    /// structure (labels + terminator).
    #[test]
    fn dns_query_structure(name_parts in proptest::collection::vec("[a-z]{1,10}", 1..4)) {
        let name = name_parts.join(".");
        let q = payloads::dns_query(7, &name);
        // Header is 12 bytes; then labels; total question adds 4 trailing bytes.
        prop_assert_eq!(q.len(), 12 + name.len() + 2 + 4);
        prop_assert_eq!(q[12] as usize, name_parts[0].len());
    }
}

// The no-panic guarantee, per wire format, at fuzzing depth: any byte
// buffer through every checked constructor (and every accessor on
// success) must return, never panic. 10k cases per format; the
// deterministic seeded twin lives in `fuzz_decode.rs` for offline runs.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(10_000))]

    #[test]
    fn ethernet_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(f) = lumen_net::wire::EthernetFrame::new_checked(&data[..]) {
            let _ = (f.dst(), f.src(), f.ethertype(), f.total_len(), f.payload().len());
        }
    }

    #[test]
    fn ipv4_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(p) = lumen_net::wire::Ipv4Packet::new_checked(&data[..]) {
            let _ = (p.header_len(), p.total_length(), p.frag_offset(), p.protocol());
            let _ = (p.src(), p.dst(), p.verify_checksum(), p.payload().len());
        }
    }

    #[test]
    fn ipv6_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(p) = lumen_net::wire::Ipv6Packet::new_checked(&data[..]) {
            let _ = (p.payload_length(), p.next_header(), p.hop_limit());
            let _ = (p.src(), p.dst(), p.payload().len());
        }
    }

    #[test]
    fn arp_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(p) = lumen_net::wire::ArpPacket::new_checked(&data[..]) {
            let _ = (p.operation(), p.sender_mac(), p.sender_ip(), p.target_mac(), p.target_ip());
        }
    }

    #[test]
    fn tcp_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        if let Ok(s) = lumen_net::wire::TcpSegment::new_checked(&data[..]) {
            let _ = (s.src_port(), s.dst_port(), s.seq(), s.ack(), s.header_len());
            let _ = (s.flags(), s.window(), s.verify_checksum(src, dst), s.payload().len());
        }
    }

    #[test]
    fn udp_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);
        if let Ok(d) = lumen_net::wire::UdpDatagram::new_checked(&data[..]) {
            let _ = (d.src_port(), d.dst_port(), d.length());
            let _ = (d.verify_checksum(src, dst), d.payload().len());
        }
    }

    #[test]
    fn icmpv4_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(p) = lumen_net::wire::Icmpv4Packet::new_checked(&data[..]) {
            let _ = (p.msg_type(), p.code(), p.echo_id(), p.echo_seq());
            let _ = (p.verify_checksum(), p.payload().len());
        }
    }

    #[test]
    fn dot11_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        if let Ok(f) = lumen_net::wire::Dot11Frame::new_checked(&data[..]) {
            let _ = (f.frame_type(), f.frame_subtype(), f.addr1(), f.addr2(), f.addr3());
            let _ = (f.sequence(), f.body().len(), f.reason_code());
        }
    }

    /// The recovering pcap reader over arbitrary bytes: Err or a capture,
    /// never a panic, and the stats always account for the kept packets.
    #[test]
    fn recovering_reader_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        if let Ok(rec) = pcap::from_bytes_recovering(&data, pcap::PcapLimits::default()) {
            prop_assert_eq!(rec.packets.len() as u64, rec.stats.records);
        }
    }
}
