//! Attack traffic generators — one per [`crate::AttackKind`].
//!
//! Intensities, timing regimes, and address behaviours follow the published
//! descriptions of each attack family: floods are high-rate and asymmetric,
//! scans sweep ports/hosts with rejected handshakes, brute force is a train
//! of short failed sessions, Mirai mixes telnet scanning with C2 heartbeats,
//! Torii is deliberately low-and-slow with high-entropy payloads (which is
//! why the paper's F5/Torii dataset resists cross-dataset generalization).

use lumen_net::builder::{self, payloads, TcpParams, UdpParams};
use lumen_net::wire::arp::ArpOperation;
use lumen_net::wire::tcp::TcpFlags;
use lumen_net::{CapturedPacket, MacAddr};
use lumen_util::Rng;

use crate::network::{Endpoint, NetworkEnv};
use crate::session::{tcp_conversation, Exchange, TcpConv, Teardown};
use crate::{AttackKind, Label, LabeledPacket};

fn random_bytes(rng: &mut Rng, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// TCP SYN flood: `rate_pps` spoofed SYNs per second at `victim:port`.
/// Sources rotate through spoofed external addresses and ports; the victim
/// answers only a fraction (backlog exhaustion).
pub fn syn_flood(
    env: &NetworkEnv,
    victim: Endpoint,
    victim_port: u16,
    start_us: u64,
    duration_us: u64,
    rate_pps: f64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::SynFlood);
    let mut out = Vec::new();
    let mut t = start_us;
    let end = start_us + duration_us;
    while t < end {
        let src = env.external(rng);
        let sport = 1024 + rng.below(60000) as u16;
        out.push(LabeledPacket {
            packet: CapturedPacket::new(
                t,
                builder::tcp_packet(TcpParams {
                    src_mac: env.gateway.mac, // enters via the gateway
                    dst_mac: victim.mac,
                    src_ip: src.ip,
                    dst_ip: victim.ip,
                    src_port: sport,
                    dst_port: victim_port,
                    seq: rng.next_u64() as u32,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: 512,
                    ttl: 40 + rng.below(30) as u8,
                    payload: &[],
                }),
            ),
            label,
        });
        if rng.chance(0.1) {
            out.push(LabeledPacket {
                packet: CapturedPacket::new(
                    t + 200 + rng.below(500),
                    builder::tcp_packet(TcpParams {
                        src_mac: victim.mac,
                        dst_mac: env.gateway.mac,
                        src_ip: victim.ip,
                        dst_ip: src.ip,
                        src_port: victim_port,
                        dst_port: sport,
                        seq: rng.next_u64() as u32,
                        ack: 1,
                        flags: TcpFlags::SYN_ACK,
                        window: 29200,
                        ttl: env.local_ttl,
                        payload: &[],
                    }),
                ),
                label,
            });
        }
        t += rng.exponential(rate_pps).max(1e-6).mul_add(1e6, 1.0) as u64;
    }
    out
}

/// UDP flood at random high ports with random payload sizes; the victim
/// occasionally answers with ICMP port-unreachable.
pub fn udp_flood(
    env: &NetworkEnv,
    victim: Endpoint,
    start_us: u64,
    duration_us: u64,
    rate_pps: f64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::UdpFlood);
    let mut out = Vec::new();
    let mut t = start_us;
    let end = start_us + duration_us;
    while t < end {
        let src = env.external(rng);
        let len = rng.range(64, 1200);
        let payload = random_bytes(rng, len);
        out.push(LabeledPacket {
            packet: CapturedPacket::new(
                t,
                builder::udp_packet(UdpParams {
                    src_mac: env.gateway.mac,
                    dst_mac: victim.mac,
                    src_ip: src.ip,
                    dst_ip: victim.ip,
                    src_port: 1024 + rng.below(60000) as u16,
                    dst_port: 1024 + rng.below(60000) as u16,
                    ttl: 38 + rng.below(30) as u8,
                    payload: &payload,
                }),
            ),
            label,
        });
        if rng.chance(0.05) {
            out.push(LabeledPacket {
                packet: CapturedPacket::new(
                    t + 300,
                    builder::icmp_echo(
                        victim.mac,
                        env.gateway.mac,
                        victim.ip,
                        src.ip,
                        true,
                        3,
                        3,
                        &payload[..payload.len().min(28)],
                    ),
                ),
                label,
            });
        }
        t += rng.exponential(rate_pps).max(1e-6).mul_add(1e6, 1.0) as u64;
    }
    out
}

/// HTTP flood in the Hulk style: rapid short keep-alive GET sessions with
/// randomized cache-busting paths from a handful of attack hosts.
pub fn dos_hulk(
    env: &NetworkEnv,
    victim: Endpoint,
    start_us: u64,
    duration_us: u64,
    sessions_per_sec: f64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::DosHulk);
    let attackers: Vec<Endpoint> = (0..4).map(|_| env.external(rng)).collect();
    let mut out = Vec::new();
    let mut t = start_us;
    let end = start_us + duration_us;
    while t < end {
        let atk = *rng.choose(&attackers);
        let path = format!(
            "/?{:08x}={:08x}",
            rng.next_u64() as u32,
            rng.next_u64() as u32
        );
        let req = payloads::http_get("victim.local", &path);
        let resp = payloads::http_ok(rng.range(200, 900), b'E');
        let (pkts, _) = tcp_conversation(
            TcpConv {
                start_us: t,
                client: Endpoint {
                    mac: env.gateway.mac,
                    ip: atk.ip,
                },
                server: victim,
                client_port: 1024 + rng.below(60000) as u16,
                server_port: 80,
                client_ttl: 44 + rng.below(20) as u8,
                server_ttl: env.local_ttl,
                exchanges: &[Exchange::c2s(req, 300), Exchange::s2c(resp, 800)],
                teardown: Teardown::Fin,
                rtt_us: 2_000,
                label,
            },
            rng,
        );
        out.extend(pkts);
        t += rng
            .exponential(sessions_per_sec)
            .max(1e-6)
            .mul_add(1e6, 1.0) as u64;
    }
    out
}

/// Slowloris: `n_conns` connections that trickle partial header lines on
/// long gaps, holding server slots open.
pub fn dos_slowloris(
    env: &NetworkEnv,
    victim: Endpoint,
    start_us: u64,
    duration_us: u64,
    n_conns: usize,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::DosSlowloris);
    let attacker = env.external(rng);
    let mut out = Vec::new();
    for c in 0..n_conns {
        let mut exchanges = vec![Exchange::c2s(
            b"GET / HTTP/1.1\r\nHost: victim.local\r\n".to_vec(),
            1_000,
        )];
        let mut elapsed = 0u64;
        while elapsed < duration_us {
            let gap = 8_000_000 + rng.below(6_000_000);
            elapsed += gap;
            exchanges.push(Exchange::c2s(
                format!("X-a{}: {}\r\n", rng.below(9999), rng.below(9999)).into_bytes(),
                gap,
            ));
        }
        let (pkts, _) = tcp_conversation(
            TcpConv {
                start_us: start_us + rng.below(2_000_000),
                client: Endpoint {
                    mac: env.gateway.mac,
                    ip: attacker.ip,
                },
                server: victim,
                client_port: 20000 + c as u16,
                server_port: 80,
                client_ttl: 50,
                server_ttl: env.local_ttl,
                exchanges: &exchanges,
                teardown: Teardown::None,
                rtt_us: 40_000,
                label,
            },
            rng,
        );
        out.extend(pkts);
    }
    out
}

/// GoldenEye-style HTTP flood: keep-alive POST bursts with random form data.
pub fn dos_goldeneye(
    env: &NetworkEnv,
    victim: Endpoint,
    start_us: u64,
    duration_us: u64,
    sessions_per_sec: f64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::DosGoldenEye);
    let mut out = Vec::new();
    let mut t = start_us;
    let end = start_us + duration_us;
    while t < end {
        let atk = env.external(rng);
        let mut exchanges = Vec::new();
        // A burst of POSTs within one keep-alive connection.
        for _ in 0..rng.range(2, 6) {
            let body = format!("q={:x}&r={:x}", rng.next_u64(), rng.next_u64());
            exchanges.push(Exchange::c2s(
                payloads::http_post("victim.local", "/login", &body),
                rng.below(3_000) + 200,
            ));
            exchanges.push(Exchange::s2c(payloads::http_ok(150, b'G'), 700));
        }
        let (pkts, _) = tcp_conversation(
            TcpConv {
                start_us: t,
                client: Endpoint {
                    mac: env.gateway.mac,
                    ip: atk.ip,
                },
                server: victim,
                client_port: 1024 + rng.below(60000) as u16,
                server_port: 80,
                client_ttl: 47,
                server_ttl: env.local_ttl,
                exchanges: &exchanges,
                teardown: Teardown::ClientRst,
                rtt_us: 3_000,
                label,
            },
            rng,
        );
        out.extend(pkts);
        t += rng
            .exponential(sessions_per_sec)
            .max(1e-6)
            .mul_add(1e6, 1.0) as u64;
    }
    out
}

/// Reflection/amplification DDoS. Spoofed small requests (src = victim) go
/// to external reflectors; large responses converge on the victim.
pub fn amplification(
    env: &NetworkEnv,
    kind: AttackKind,
    victim: Endpoint,
    start_us: u64,
    duration_us: u64,
    rate_pps: f64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    assert!(matches!(
        kind,
        AttackKind::AmplificationNtp | AttackKind::AmplificationSsdp
    ));
    let label = Label::attack(kind);
    let reflectors: Vec<Endpoint> = (0..8).map(|_| env.external(rng)).collect();
    let (port, req, resp_len_range) = match kind {
        AttackKind::AmplificationNtp => (123u16, payloads::ntp_monlist_response(8), (440, 482)),
        _ => (1900u16, payloads::ssdp_msearch(), (300, 1400)),
    };
    let mut out = Vec::new();
    let mut t = start_us;
    let end = start_us + duration_us;
    while t < end {
        let refl = *rng.choose(&reflectors);
        // Spoofed request leaving through the gateway (appears src=victim).
        out.push(LabeledPacket {
            packet: CapturedPacket::new(
                t,
                builder::udp_packet(UdpParams {
                    src_mac: victim.mac,
                    dst_mac: env.gateway.mac,
                    src_ip: victim.ip,
                    dst_ip: refl.ip,
                    src_port: env.ephemeral_port(rng),
                    dst_port: port,
                    ttl: env.local_ttl,
                    payload: &req,
                }),
            ),
            label,
        });
        // Amplified response back at the victim.
        let resp = match kind {
            AttackKind::AmplificationNtp => {
                payloads::ntp_monlist_response(rng.range(resp_len_range.0, resp_len_range.1))
            }
            _ => payloads::http_ok(rng.range(resp_len_range.0, resp_len_range.1), b'S'),
        };
        out.push(LabeledPacket {
            packet: CapturedPacket::new(
                t + 400 + rng.below(2_000),
                builder::udp_packet(UdpParams {
                    src_mac: env.gateway.mac,
                    dst_mac: victim.mac,
                    src_ip: refl.ip,
                    dst_ip: victim.ip,
                    src_port: port,
                    dst_port: env.ephemeral_port(rng),
                    ttl: 30 + rng.below(30) as u8,
                    payload: &resp,
                }),
            ),
            label,
        });
        t += rng.exponential(rate_pps).max(1e-6).mul_add(1e6, 1.0) as u64;
    }
    out
}

/// SYN port scan: one attacker sweeps `ports_per_host` ports on every LAN
/// device; open ports (rare) answer SYN-ACK, closed ones RST.
pub fn port_scan(
    env: &NetworkEnv,
    attacker: Endpoint,
    start_us: u64,
    ports_per_host: u16,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::PortScan);
    let mut out = Vec::new();
    let mut t = start_us;
    for dev in &env.devices {
        for p in 0..ports_per_host {
            let port = 1 + (p * 13) % 10000;
            let sport = 40000 + rng.below(20000) as u16;
            let seq = rng.next_u64() as u32;
            out.push(LabeledPacket {
                packet: CapturedPacket::new(
                    t,
                    builder::tcp_packet(TcpParams {
                        src_mac: attacker.mac,
                        dst_mac: dev.mac,
                        src_ip: attacker.ip,
                        dst_ip: dev.ip,
                        src_port: sport,
                        dst_port: port,
                        seq,
                        ack: 0,
                        flags: TcpFlags::SYN,
                        window: 1024,
                        ttl: env.local_ttl,
                        payload: &[],
                    }),
                ),
                label,
            });
            let open = rng.chance(0.03);
            out.push(LabeledPacket {
                packet: CapturedPacket::new(
                    t + 150 + rng.below(400),
                    builder::tcp_packet(TcpParams {
                        src_mac: dev.mac,
                        dst_mac: attacker.mac,
                        src_ip: dev.ip,
                        dst_ip: attacker.ip,
                        src_port: port,
                        dst_port: sport,
                        seq: rng.next_u64() as u32,
                        ack: seq.wrapping_add(1),
                        flags: if open {
                            TcpFlags::SYN_ACK
                        } else {
                            TcpFlags::RST | TcpFlags::ACK
                        },
                        window: 0,
                        ttl: env.local_ttl,
                        payload: &[],
                    }),
                ),
                label,
            });
            t += 800 + rng.below(2_500);
        }
    }
    out
}

/// Credential brute force against FTP/SSH/Telnet: a train of short sessions,
/// each a banner, an attempt, a rejection, and an abort.
#[allow(clippy::too_many_arguments)] // attack knobs are genuinely independent
pub fn brute_force(
    env: &NetworkEnv,
    kind: AttackKind,
    attacker: Endpoint,
    victim: Endpoint,
    start_us: u64,
    attempts: usize,
    period_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let (port, banner): (u16, &[u8]) = match kind {
        AttackKind::BruteForceFtp => (21, b"220 FTP ready\r\n"),
        AttackKind::BruteForceSsh => (22, b"SSH-2.0-OpenSSH_7.4\r\n"),
        _ => (23, b"login: "),
    };
    let label = Label::attack(kind);
    let mut out = Vec::new();
    let mut t = start_us;
    for i in 0..attempts {
        let cred = format!("user{i}:pw{:04}\r\n", rng.below(10000));
        let exchanges = [
            Exchange::s2c(banner.to_vec(), 2_000),
            Exchange::c2s(cred.into_bytes(), rng.below(40_000) + 5_000),
            Exchange::s2c(b"530 Login incorrect\r\n".to_vec(), 3_000),
        ];
        let (pkts, _) = tcp_conversation(
            TcpConv {
                start_us: t,
                client: attacker,
                server: victim,
                client_port: env.ephemeral_port(rng),
                server_port: port,
                client_ttl: if env.is_local(attacker.ip) {
                    env.local_ttl
                } else {
                    49
                },
                server_ttl: env.local_ttl,
                exchanges: &exchanges,
                teardown: if rng.chance(0.6) {
                    Teardown::ClientRst
                } else {
                    Teardown::Fin
                },
                rtt_us: 6_000,
                label,
            },
            rng,
        );
        out.extend(pkts);
        t += (period_us as f64 * (0.6 + 0.8 * rng.f64())) as u64;
    }
    out
}

/// Mirai: infected LAN devices (a) scan external space on 23/2323, (b) send
/// periodic C2 heartbeats, (c) occasionally burst a short flood.
pub fn mirai(
    env: &NetworkEnv,
    bot_indices: &[usize],
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::BotnetMirai);
    let c2 = env.external(rng);
    let mut out = Vec::new();
    for &b in bot_indices {
        let bot = env.device(b);
        // Telnet scanning.
        let mut t = start_us + rng.below(500_000);
        let end = start_us + duration_us;
        while t < end {
            let target = env.external(rng);
            out.push(LabeledPacket {
                packet: CapturedPacket::new(
                    t,
                    builder::tcp_packet(TcpParams {
                        src_mac: bot.mac,
                        dst_mac: env.gateway.mac,
                        src_ip: bot.ip,
                        dst_ip: target.ip,
                        src_port: env.ephemeral_port(rng),
                        dst_port: if rng.chance(0.8) { 23 } else { 2323 },
                        seq: rng.next_u64() as u32,
                        ack: 0,
                        flags: TcpFlags::SYN,
                        window: 14600,
                        ttl: env.local_ttl,
                        payload: &[],
                    }),
                ),
                label,
            });
            t += 20_000 + rng.below(120_000);
        }
        // C2 heartbeats: small periodic exchanges.
        let mut t = start_us + rng.below(2_000_000);
        while t < end {
            let (pkts, _) = tcp_conversation(
                TcpConv {
                    start_us: t,
                    client: bot,
                    server: Endpoint {
                        mac: env.gateway.mac,
                        ip: c2.ip,
                    },
                    client_port: env.ephemeral_port(rng),
                    server_port: 48101,
                    client_ttl: env.local_ttl,
                    server_ttl: 46,
                    exchanges: &[
                        Exchange::c2s(random_bytes(rng, 16), 1_000),
                        Exchange::s2c(random_bytes(rng, 8), 4_000),
                    ],
                    teardown: Teardown::Fin,
                    rtt_us: 60_000,
                    label,
                },
                rng,
            );
            out.extend(pkts);
            t += 10_000_000 + rng.below(10_000_000);
        }
    }
    out
}

/// Torii: a single compromised device, long-lived encrypted-looking C2 over
/// an unusual TLS port, tiny volume, very long gaps. Deliberately the
/// stealthiest generator — the paper's F5 dataset (CTU Torii) behaves unlike
/// every other dataset, and this is why.
pub fn torii(
    env: &NetworkEnv,
    bot_index: usize,
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::BotnetTorii);
    let bot = env.device(bot_index);
    let c2 = env.external(rng);
    let mut exchanges = Vec::new();
    let mut elapsed = 0u64;
    // TLS-looking record sizes, long think times.
    exchanges.push(Exchange::c2s(random_bytes(rng, 517), 1_000)); // client hello
    let hello_len = rng.range(1200, 1400);
    exchanges.push(Exchange::s2c(random_bytes(rng, hello_len), 30_000));
    while elapsed < duration_us {
        let gap = 20_000_000 + rng.below(40_000_000);
        elapsed += gap;
        let up_len = rng.range(80, 200);
        exchanges.push(Exchange::c2s(random_bytes(rng, up_len), gap));
        let down_len = rng.range(80, 300);
        exchanges.push(Exchange::s2c(random_bytes(rng, down_len), 50_000));
    }
    tcp_conversation(
        TcpConv {
            start_us,
            client: bot,
            server: Endpoint {
                mac: env.gateway.mac,
                ip: c2.ip,
            },
            client_port: env.ephemeral_port(rng),
            server_port: 995,
            client_ttl: env.local_ttl,
            server_ttl: 44,
            exchanges: &exchanges,
            teardown: Teardown::None,
            rtt_us: 90_000,
            label,
        },
        rng,
    )
    .0
}

/// Web attacks: HTTP requests with injection payloads against a local admin
/// interface.
pub fn web_attack(
    env: &NetworkEnv,
    victim: Endpoint,
    start_us: u64,
    attempts: usize,
    period_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    const INJECTIONS: [&str; 4] = [
        "username=admin'--&password=x",
        "q=%3Cscript%3Ealert(1)%3C/script%3E",
        "id=1+UNION+SELECT+password+FROM+users",
        "file=../../../../etc/passwd",
    ];
    let label = Label::attack(AttackKind::WebAttack);
    let attacker = env.external(rng);
    let mut out = Vec::new();
    let mut t = start_us;
    for _ in 0..attempts {
        let body = *rng.choose(&INJECTIONS);
        let exchanges = [
            Exchange::c2s(
                payloads::http_post("device.local", "/cgi-bin/admin", body),
                2_000,
            ),
            Exchange::s2c(payloads::http_ok(rng.range(100, 400), b'<'), 9_000),
        ];
        let (pkts, _) = tcp_conversation(
            TcpConv {
                start_us: t,
                client: Endpoint {
                    mac: env.gateway.mac,
                    ip: attacker.ip,
                },
                server: victim,
                client_port: env.ephemeral_port(rng),
                server_port: 80,
                client_ttl: 51,
                server_ttl: env.local_ttl,
                exchanges: &exchanges,
                teardown: Teardown::Fin,
                rtt_us: 35_000,
                label,
            },
            rng,
        );
        out.extend(pkts);
        t += (period_us as f64 * (0.5 + rng.f64())) as u64;
    }
    out
}

/// Infiltration/exfiltration: a compromised device uploads a large volume to
/// an external drop server over one long session.
pub fn infiltration(
    env: &NetworkEnv,
    device_idx: usize,
    start_us: u64,
    total_bytes: usize,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::Infiltration);
    let drop = env.external(rng);
    let mut exchanges = Vec::new();
    let mut sent = 0usize;
    while sent < total_bytes {
        let chunk = rng.range(900, 1400);
        exchanges.push(Exchange::c2s(
            random_bytes(rng, chunk),
            5_000 + rng.below(30_000),
        ));
        sent += chunk;
    }
    tcp_conversation(
        TcpConv {
            start_us,
            client: env.device(device_idx),
            server: Endpoint {
                mac: env.gateway.mac,
                ip: drop.ip,
            },
            client_port: env.ephemeral_port(rng),
            server_port: 8443,
            client_ttl: env.local_ttl,
            server_ttl: 43,
            exchanges: &exchanges,
            teardown: Teardown::Fin,
            rtt_us: 70_000,
            label,
        },
        rng,
    )
    .0
}

/// ARP man-in-the-middle: gratuitous replies claiming the gateway's IP with
/// the attacker's MAC, refreshed aggressively.
pub fn arp_mitm(
    env: &NetworkEnv,
    attacker_mac: MacAddr,
    victim_idx: usize,
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::ArpMitm);
    let victim = env.device(victim_idx);
    let mut out = Vec::new();
    let mut t = start_us;
    let end = start_us + duration_us;
    while t < end {
        // Poison the victim's view of the gateway.
        out.push(LabeledPacket {
            packet: CapturedPacket::new(
                t,
                builder::arp_packet(
                    attacker_mac,
                    env.gateway.ip,
                    victim.mac,
                    victim.ip,
                    ArpOperation::Reply,
                ),
            ),
            label,
        });
        // And the gateway's view of the victim.
        out.push(LabeledPacket {
            packet: CapturedPacket::new(
                t + 500 + rng.below(1_000),
                builder::arp_packet(
                    attacker_mac,
                    victim.ip,
                    env.gateway.mac,
                    env.gateway.ip,
                    ArpOperation::Reply,
                ),
            ),
            label,
        });
        t += 900_000 + rng.below(400_000);
    }
    out
}

// --- 802.11 wireless (AWID3-style) -----------------------------------------

/// Benign Wi-Fi backdrop: AP beacons plus station data frames.
pub fn wifi_benign(
    ap: MacAddr,
    stations: &[MacAddr],
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut out = Vec::new();
    let mut seq = 0u16;
    // Beacons every ~102.4 ms.
    let mut t = start_us;
    let end = start_us + duration_us;
    while t < end {
        out.push(LabeledPacket {
            packet: CapturedPacket::new(t, builder::dot11_beacon(ap, b"HomeNet", seq)),
            label: Label::BENIGN,
        });
        seq = seq.wrapping_add(1) & 0x0FFF;
        t += 102_400;
    }
    // Station data.
    for &sta in stations {
        let mut t = start_us + rng.below(50_000);
        let mut sseq = rng.below(4000) as u16;
        while t < end {
            let body_len = rng.range(60, 800);
            let body = random_bytes(rng, body_len);
            out.push(LabeledPacket {
                packet: CapturedPacket::new(t, builder::dot11_data(sta, ap, ap, sseq, &body)),
                label: Label::BENIGN,
            });
            if rng.chance(0.6) {
                out.push(LabeledPacket {
                    packet: CapturedPacket::new(
                        t + 2_000 + rng.below(3_000),
                        builder::dot11_data(ap, sta, ap, seq, &{
                            let l = rng.range(60, 1200);
                            random_bytes(rng, l)
                        }),
                    ),
                    label: Label::BENIGN,
                });
                seq = seq.wrapping_add(1) & 0x0FFF;
            }
            sseq = sseq.wrapping_add(1) & 0x0FFF;
            t += 20_000 + rng.below(150_000);
        }
    }
    out
}

/// Deauthentication flood: spoofed deauth frames at every station.
pub fn wifi_deauth(
    ap: MacAddr,
    stations: &[MacAddr],
    start_us: u64,
    duration_us: u64,
    rate_pps: f64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::WifiDeauth);
    let mut out = Vec::new();
    let mut t = start_us;
    let mut seq = 0u16;
    let end = start_us + duration_us;
    while t < end {
        let victim = *rng.choose(stations);
        out.push(LabeledPacket {
            packet: CapturedPacket::new(t, builder::dot11_deauth(victim, ap, 7, seq)),
            label,
        });
        seq = seq.wrapping_add(1) & 0x0FFF;
        t += rng.exponential(rate_pps).max(1e-6).mul_add(1e6, 1.0) as u64;
    }
    out
}

/// Evil twin: a rogue AP beaconing the same SSID from a different BSSID and
/// luring station traffic.
pub fn wifi_eviltwin(
    rogue: MacAddr,
    stations: &[MacAddr],
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::WifiEvilTwin);
    let mut out = Vec::new();
    let mut t = start_us;
    let mut seq = 0u16;
    let end = start_us + duration_us;
    while t < end {
        out.push(LabeledPacket {
            packet: CapturedPacket::new(t, builder::dot11_beacon(rogue, b"HomeNet", seq)),
            label,
        });
        seq = seq.wrapping_add(1) & 0x0FFF;
        // Lured station traffic through the rogue AP.
        if rng.chance(0.5) {
            let sta = *rng.choose(stations);
            out.push(LabeledPacket {
                packet: CapturedPacket::new(
                    t + 5_000 + rng.below(20_000),
                    builder::dot11_data(sta, rogue, rogue, seq, &{
                        let l = rng.range(80, 600);
                        random_bytes(rng, l)
                    }),
                ),
                label,
            });
        }
        t += 102_400;
    }
    out
}

/// KRACK-style replay: bursts of duplicated data frames (repeated sequence
/// numbers) from the AP toward one station.
pub fn wifi_krack(
    ap: MacAddr,
    victim: MacAddr,
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let label = Label::attack(AttackKind::WifiKrack);
    let mut out = Vec::new();
    let mut t = start_us;
    let end = start_us + duration_us;
    while t < end {
        let seq = rng.below(4096) as u16;
        let body_len = rng.range(100, 400);
        let body = random_bytes(rng, body_len);
        // The same frame replayed several times in quick succession.
        for r in 0..rng.range(3, 6) {
            out.push(LabeledPacket {
                packet: CapturedPacket::new(
                    t + (r as u64) * 800,
                    builder::dot11_data(ap, victim, ap, seq, &body),
                ),
                label,
            });
        }
        t += 400_000 + rng.below(800_000);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_net::wire::dot11::{subtype, Dot11Type};
    use lumen_net::{LinkType, PacketMeta};

    fn env(seed: u64) -> (NetworkEnv, Rng) {
        let mut rng = Rng::new(seed);
        let e = NetworkEnv::new([192, 168, 9], 5, 3, &mut rng);
        (e, rng)
    }

    fn parse_eth(pkts: &[LabeledPacket]) -> Vec<PacketMeta> {
        pkts.iter()
            .map(|lp| {
                PacketMeta::parse(LinkType::Ethernet, lp.packet.ts_us, &lp.packet.data).unwrap()
            })
            .collect()
    }

    #[test]
    fn syn_flood_is_mostly_one_directional_syns() {
        let (e, mut rng) = env(1);
        let victim = e.device(0);
        let pkts = syn_flood(&e, victim, 80, 0, 2_000_000, 500.0, &mut rng);
        assert!(pkts.len() > 500, "got {}", pkts.len());
        let metas = parse_eth(&pkts);
        let syns = metas
            .iter()
            .filter(|m| m.transport.tcp_flags().is_some_and(|f| f.syn() && !f.ack()))
            .count();
        assert!(syns as f64 / metas.len() as f64 > 0.85);
        assert!(pkts
            .iter()
            .all(|p| p.label.attack == Some(AttackKind::SynFlood)));
    }

    #[test]
    fn udp_flood_targets_victim() {
        let (e, mut rng) = env(2);
        let victim = e.device(1);
        let pkts = udp_flood(&e, victim, 0, 1_000_000, 400.0, &mut rng);
        let metas = parse_eth(&pkts);
        let at_victim = metas
            .iter()
            .filter(|m| m.ipv4.as_ref().is_some_and(|ip| ip.dst == victim.ip))
            .count();
        assert!(at_victim as f64 / metas.len() as f64 > 0.9);
    }

    #[test]
    fn port_scan_sweeps_all_devices() {
        let (e, mut rng) = env(3);
        let attacker = Endpoint::new(std::net::Ipv4Addr::new(192, 168, 9, 66));
        let pkts = port_scan(&e, attacker, 0, 20, &mut rng);
        let metas = parse_eth(&pkts);
        let mut dsts: Vec<_> = metas
            .iter()
            .filter_map(|m| m.ipv4.as_ref())
            .filter(|ip| ip.src == attacker.ip)
            .map(|ip| ip.dst)
            .collect();
        dsts.sort_unstable();
        dsts.dedup();
        assert_eq!(dsts.len(), e.devices.len());
    }

    #[test]
    fn brute_force_hits_service_port() {
        let (e, mut rng) = env(4);
        let attacker = e.external(&mut rng);
        let atk = Endpoint {
            mac: e.gateway.mac,
            ip: attacker.ip,
        };
        let pkts = brute_force(
            &e,
            AttackKind::BruteForceSsh,
            atk,
            e.device(0),
            0,
            10,
            500_000,
            &mut rng,
        );
        let metas = parse_eth(&pkts);
        assert!(metas
            .iter()
            .filter_map(|m| m.transport.dst_port())
            .any(|p| p == 22));
    }

    #[test]
    fn torii_is_low_and_slow_with_high_entropy() {
        let (e, mut rng) = env(5);
        let pkts = torii(&e, 0, 0, 120_000_000, &mut rng);
        // Low volume over two minutes.
        assert!(pkts.len() < 120, "torii too chatty: {}", pkts.len());
        let metas = parse_eth(&pkts);
        let payloads: Vec<&PacketMeta> = metas.iter().filter(|m| m.payload_len > 64).collect();
        assert!(!payloads.is_empty());
        for m in payloads {
            assert!(lumen_util::entropy::byte_entropy(&m.payload) > 5.0);
        }
    }

    #[test]
    fn mirai_scans_telnet_ports() {
        let (e, mut rng) = env(6);
        let pkts = mirai(&e, &[0, 1], 0, 5_000_000, &mut rng);
        let metas = parse_eth(&pkts);
        let telnet = metas
            .iter()
            .filter_map(|m| m.transport.dst_port())
            .filter(|&p| p == 23 || p == 2323)
            .count();
        assert!(telnet > 20, "telnet SYNs {telnet}");
    }

    #[test]
    fn arp_mitm_claims_gateway_ip_with_wrong_mac() {
        let (e, mut rng) = env(7);
        let attacker_mac = MacAddr::from_id(0xBAD);
        let pkts = arp_mitm(&e, attacker_mac, 0, 0, 5_000_000, &mut rng);
        let metas = parse_eth(&pkts);
        let spoofed = metas
            .iter()
            .filter_map(|m| m.arp.as_ref())
            .filter(|a| a.sender_ip == e.gateway.ip && a.sender_mac != e.gateway.mac)
            .count();
        assert!(spoofed >= 4);
    }

    #[test]
    fn wifi_deauth_parses_on_dot11_link() {
        let mut rng = Rng::new(8);
        let ap = MacAddr::from_id(1);
        let stas = [MacAddr::from_id(2), MacAddr::from_id(3)];
        let pkts = wifi_deauth(ap, &stas, 0, 1_000_000, 200.0, &mut rng);
        assert!(pkts.len() > 50);
        for lp in &pkts {
            let m = PacketMeta::parse(LinkType::Ieee80211, 0, &lp.packet.data).unwrap();
            let d = m.dot11.unwrap();
            assert_eq!(d.subtype, subtype::DEAUTHENTICATION);
            assert_eq!(d.frame_type, Dot11Type::Management);
        }
    }

    #[test]
    fn krack_replays_sequence_numbers() {
        let mut rng = Rng::new(9);
        let pkts = wifi_krack(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            0,
            2_000_000,
            &mut rng,
        );
        let seqs: Vec<u16> = pkts
            .iter()
            .map(|lp| {
                PacketMeta::parse(LinkType::Ieee80211, 0, &lp.packet.data)
                    .unwrap()
                    .dot11
                    .unwrap()
                    .sequence
            })
            .collect();
        // Replay means duplicates.
        let mut uniq = seqs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() < seqs.len());
    }

    #[test]
    fn amplification_responses_dwarf_requests() {
        let (e, mut rng) = env(10);
        let victim = e.device(2);
        let pkts = amplification(
            &e,
            AttackKind::AmplificationNtp,
            victim,
            0,
            1_000_000,
            100.0,
            &mut rng,
        );
        let metas = parse_eth(&pkts);
        let to_victim: u64 = metas
            .iter()
            .filter(|m| m.ipv4.as_ref().is_some_and(|ip| ip.dst == victim.ip))
            .map(|m| u64::from(m.wire_len))
            .sum();
        let from_victim: u64 = metas
            .iter()
            .filter(|m| m.ipv4.as_ref().is_some_and(|ip| ip.src == victim.ip))
            .map(|m| u64::from(m.wire_len))
            .sum();
        assert!(to_victim > from_victim * 3, "amplification factor too low");
    }
}
