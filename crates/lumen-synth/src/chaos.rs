//! Seeded capture corruption — the chaos half of the robustness story.
//!
//! Real IoT captures arrive damaged: interrupted tcpdump runs truncate the
//! tail, flaky storage flips bits, buggy exporters write lying length
//! fields, and clock steps make timestamps run backwards. The benchmark's
//! ingestion path claims to survive all of that, so this module
//! manufactures exactly those faults, deterministically, over the pcap
//! *bytes* produced by [`lumen_net::pcap::to_bytes`].
//!
//! Faults operate on the serialized record framing (the writer emits
//! little-endian microsecond captures, so field offsets are known), never
//! on the 24-byte global header: a capture whose magic is gone is not
//! recoverable by design, and corrupting it would just test an early
//! `Err`, not the quarantine machinery.

use lumen_util::Rng;

/// How aggressively [`ChaosPcap`] corrupts a capture.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Fraction of records hit by a fault, in `[0, 1]`.
    pub fault_rate: f64,
    /// Cut the capture off mid-record at a random point (at most once).
    pub truncate_tail: bool,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            fault_rate: 0.05,
            truncate_tail: true,
        }
    }
}

/// The fault kinds the engine injects. One is chosen per hit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosFault {
    /// Record data cut short while the header still claims the full length.
    TruncateRecord,
    /// A single bit flipped somewhere in the record's packet data.
    BitFlip,
    /// caplen replaced by garbage: `0xFFFF_FFFF`, zero, or a giant value.
    GarbageCaplen,
    /// IPv4 IHL nibble replaced by a lying value.
    GarbageIhl,
    /// IPv4 total-length field replaced by a lying value.
    GarbageTotalLen,
    /// Transport checksum bytes flipped.
    BadChecksum,
    /// Record timestamp rewound so capture time runs backwards.
    TimestampRegression,
}

const ALL_FAULTS: [ChaosFault; 7] = [
    ChaosFault::TruncateRecord,
    ChaosFault::BitFlip,
    ChaosFault::GarbageCaplen,
    ChaosFault::GarbageIhl,
    ChaosFault::GarbageTotalLen,
    ChaosFault::BadChecksum,
    ChaosFault::TimestampRegression,
];

/// What a chaos pass actually did, for test assertions and run logs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Records present in the input capture.
    pub records: usize,
    /// (fault, times injected), in [`ALL_FAULTS`] order, zero counts kept.
    pub injected: Vec<(ChaosFault, usize)>,
    /// Bytes cut from the end of the capture, 0 when not truncated.
    pub tail_cut: usize,
}

impl ChaosReport {
    /// Total faults injected (excluding the tail cut).
    pub fn total(&self) -> usize {
        self.injected.iter().map(|(_, n)| n).sum()
    }
}

/// Deterministic pcap corruption engine. The same seed over the same bytes
/// produces the same damage, so chaos corpora are reproducible in CI.
#[derive(Debug)]
pub struct ChaosPcap {
    rng: Rng,
    cfg: ChaosConfig,
}

/// Byte offsets of one record within the capture.
struct RecordSpan {
    /// Offset of the 16-byte record header.
    header: usize,
    /// Length of the packet data following the header.
    incl: usize,
}

impl ChaosPcap {
    /// Creates an engine; equal seeds corrupt identically.
    pub fn new(seed: u64, cfg: ChaosConfig) -> ChaosPcap {
        ChaosPcap {
            rng: Rng::new(seed).fork(0xC4A0_5C4A),
            cfg,
        }
    }

    /// Corrupts a serialized capture, returning the damaged bytes and a
    /// report of the injected faults. The input must be a well-formed
    /// little-endian capture (what [`lumen_net::pcap::to_bytes`] emits);
    /// anything else is returned unchanged with an empty report.
    pub fn corrupt(&mut self, bytes: &[u8]) -> (Vec<u8>, ChaosReport) {
        let mut out = bytes.to_vec();
        let mut report = ChaosReport {
            injected: ALL_FAULTS.iter().map(|&f| (f, 0)).collect(),
            ..ChaosReport::default()
        };
        let spans = scan_records(bytes);
        report.records = spans.len();
        if spans.is_empty() {
            return (out, report);
        }

        for span in &spans {
            if !self.rng.chance(self.cfg.fault_rate) {
                continue;
            }
            let fault = *self.rng.choose(&ALL_FAULTS);
            if self.apply(&mut out, span, fault) {
                if let Some(slot) = ALL_FAULTS.iter().position(|&f| f == fault) {
                    report.injected[slot].1 += 1;
                }
            }
        }

        if self.cfg.truncate_tail && !spans.is_empty() {
            // Cut inside the last record so its header survives but its
            // data (or trailing header bytes) do not.
            let last = &spans[spans.len() - 1];
            let keep = last.header + self.rng.below(15 + last.incl as u64) as usize;
            report.tail_cut = out.len() - keep.min(out.len());
            out.truncate(keep);
        }
        (out, report)
    }

    /// Applies one fault in place; false when the record is too small for
    /// that fault kind (nothing was changed).
    fn apply(&mut self, out: &mut [u8], span: &RecordSpan, fault: ChaosFault) -> bool {
        let h = span.header;
        let data = h + 16;
        match fault {
            ChaosFault::TruncateRecord => {
                if span.incl < 2 {
                    return false;
                }
                // Keep the claimed length, zero the data tail: the record
                // "body" is now wrong-length framing for whatever follows.
                // (In-place variant of a short write: we cannot remove
                // bytes mid-buffer per record without reframing the rest,
                // so instead lie upward about the length.)
                let lie = span.incl as u32 + 1 + self.rng.below(64) as u32;
                out[h + 8..h + 12].copy_from_slice(&lie.to_le_bytes());
                true
            }
            ChaosFault::BitFlip => {
                if span.incl == 0 {
                    return false;
                }
                let at = data + self.rng.below(span.incl as u64) as usize;
                let bit = self.rng.below(8) as u8;
                out[at] ^= 1 << bit;
                true
            }
            ChaosFault::GarbageCaplen => {
                let garbage: u32 = match self.rng.below(3) {
                    0 => u32::MAX,
                    1 => 0x7FFF_FFFF,
                    _ => 50_000_000,
                };
                out[h + 8..h + 12].copy_from_slice(&garbage.to_le_bytes());
                true
            }
            ChaosFault::GarbageIhl => {
                // Ethernet + IPv4: version/IHL byte sits at data+14.
                let at = data + 14;
                if span.incl < 15 || out[at] >> 4 != 4 {
                    return false;
                }
                let ihl = if self.rng.chance(0.5) { 0x0 } else { 0xF };
                out[at] = 0x40 | ihl;
                true
            }
            ChaosFault::GarbageTotalLen => {
                let at = data + 14;
                if span.incl < 19 || out[at] >> 4 != 4 {
                    return false;
                }
                let lie = 40_000 + self.rng.below(25_000) as u16;
                out[at + 2..at + 4].copy_from_slice(&lie.to_be_bytes());
                true
            }
            ChaosFault::BadChecksum => {
                if span.incl < 4 {
                    return false;
                }
                // Flip the last two data bytes: for TCP/UDP tails this
                // lands in payload/checksum territory; either way the
                // packet no longer checks out.
                out[data + span.incl - 1] ^= 0xFF;
                out[data + span.incl - 2] ^= 0xFF;
                true
            }
            ChaosFault::TimestampRegression => {
                // Rewind far enough that even micros-granular captures
                // notice: subtract up to an hour from the seconds field.
                let secs = u32::from_le_bytes([out[h], out[h + 1], out[h + 2], out[h + 3]]);
                let back = 1 + self.rng.below(3_600) as u32;
                out[h..h + 4].copy_from_slice(&secs.saturating_sub(back).to_le_bytes());
                true
            }
        }
    }
}

/// Walks the well-formed input's record framing. Returns an empty list for
/// anything that is not a little-endian micros capture.
fn scan_records(bytes: &[u8]) -> Vec<RecordSpan> {
    let mut spans = Vec::new();
    if bytes.len() < 24 || bytes[0..4] != 0xa1b2_c3d4u32.to_le_bytes() {
        return spans;
    }
    let mut o = 24;
    while o + 16 <= bytes.len() {
        let incl =
            u32::from_le_bytes([bytes[o + 8], bytes[o + 9], bytes[o + 10], bytes[o + 11]]) as usize;
        if o + 16 + incl > bytes.len() {
            break;
        }
        spans.push(RecordSpan { header: o, incl });
        o += 16 + incl;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_net::pcap::{from_bytes_recovering, to_bytes, PcapLimits};
    use lumen_net::{CapturedPacket, LinkType};

    fn capture(n: usize) -> Vec<u8> {
        let packets: Vec<CapturedPacket> = (0..n)
            .map(|i| {
                let mut data = vec![i as u8; 60];
                data[14] = 0x45; // Ethernet + IPv4 shape for the L3-aware faults
                CapturedPacket::new(1_000_000 * (i as u64 + 1), data)
            })
            .collect();
        to_bytes(LinkType::Ethernet, &packets)
    }

    #[test]
    fn same_seed_same_damage() {
        let clean = capture(50);
        let (a, ra) = ChaosPcap::new(7, ChaosConfig::default()).corrupt(&clean);
        let (b, rb) = ChaosPcap::new(7, ChaosConfig::default()).corrupt(&clean);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        let (c, _) = ChaosPcap::new(8, ChaosConfig::default()).corrupt(&clean);
        assert_ne!(a, c, "different seeds damage differently");
    }

    #[test]
    fn fault_rate_one_hits_every_eligible_record() {
        let clean = capture(40);
        let cfg = ChaosConfig {
            fault_rate: 1.0,
            truncate_tail: false,
        };
        let (_, report) = ChaosPcap::new(3, cfg).corrupt(&clean);
        assert_eq!(report.records, 40);
        assert!(report.total() > 30, "most records damaged: {report:?}");
    }

    #[test]
    fn zero_rate_without_truncation_is_identity() {
        let clean = capture(10);
        let cfg = ChaosConfig {
            fault_rate: 0.0,
            truncate_tail: false,
        };
        let (out, report) = ChaosPcap::new(1, cfg).corrupt(&clean);
        assert_eq!(out, clean);
        assert_eq!(report.total(), 0);
        assert_eq!(report.tail_cut, 0);
    }

    #[test]
    fn recovering_reader_survives_heavy_chaos() {
        let clean = capture(200);
        let cfg = ChaosConfig {
            fault_rate: 0.3,
            truncate_tail: true,
        };
        let (dirty, report) = ChaosPcap::new(99, cfg).corrupt(&clean);
        assert!(report.total() > 0);
        let rec = from_bytes_recovering(&dirty, PcapLimits::default()).unwrap();
        assert!(!rec.packets.is_empty(), "most records still decodable");
        assert!(
            !rec.stats.is_clean(),
            "corruption must be visible in stats: {:?}",
            rec.stats
        );
    }

    #[test]
    fn non_pcap_input_is_untouched() {
        let junk = vec![0xEE; 100];
        let (out, report) = ChaosPcap::new(5, ChaosConfig::default()).corrupt(&junk);
        assert_eq!(out, junk);
        assert_eq!(report.records, 0);
        assert_eq!(report.total(), 0);
    }
}
