//! Benign IoT device behaviour models.
//!
//! Each generator emits the labeled packets one device produces over a time
//! window. The behaviours mirror what the public datasets' benign portions
//! contain: camera video streams, MQTT telemetry, HTTP cloud polling, DNS
//! lookups, NTP sync, and background ARP chatter. IoT traffic is *regular* —
//! that regularity is exactly what anomaly detectors learn.

use lumen_net::builder::{self, payloads};
use lumen_net::wire::arp::ArpOperation;
use lumen_net::CapturedPacket;
use lumen_util::Rng;

use crate::network::NetworkEnv;
use crate::session::{tcp_conversation, udp_exchange, Exchange, TcpConv, Teardown};
use crate::{Label, LabeledPacket};

/// A security camera streaming video to a cloud relay over one long-lived
/// TCP connection: server-bound frames every ~33 ms with size jitter, plus
/// sparse keepalives from the relay.
pub fn camera_stream(
    env: &NetworkEnv,
    device_idx: usize,
    cloud_idx: usize,
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut exchanges = Vec::new();
    let mut elapsed = 0u64;
    let frame_gap = 33_000u64;
    while elapsed < duration_us {
        let gap = (frame_gap as f64 * (0.8 + 0.4 * rng.f64())) as u64;
        elapsed += gap;
        // I-frames are large, P-frames small.
        let size = if rng.chance(0.1) {
            rng.range(900, 1400)
        } else {
            rng.range(300, 700)
        };
        exchanges.push(Exchange::c2s(vec![0xA5; size], gap));
        if rng.chance(0.02) {
            exchanges.push(Exchange::s2c(b"KA".to_vec(), 500));
        }
    }
    let port = env.ephemeral_port(rng);
    tcp_conversation(
        TcpConv {
            start_us,
            client: env.device(device_idx),
            server: env.cloud_server(cloud_idx),
            client_port: port,
            server_port: 8554,
            client_ttl: env.local_ttl,
            server_ttl: env.remote_ttl,
            exchanges: &exchanges,
            teardown: Teardown::None,
            rtt_us: 24_000,
            label: Label::BENIGN,
        },
        rng,
    )
    .0
}

/// An MQTT telemetry sensor: one long-lived broker connection with CONNECT
/// then periodic small PUBLISHes (temperature-style payloads).
pub fn mqtt_sensor(
    env: &NetworkEnv,
    device_idx: usize,
    cloud_idx: usize,
    start_us: u64,
    duration_us: u64,
    period_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut exchanges = vec![Exchange::c2s(
        payloads::mqtt_connect(&format!("sensor-{device_idx}")),
        1_000,
    )];
    let mut elapsed = 0u64;
    while elapsed < duration_us {
        let gap = (period_us as f64 * (0.9 + 0.2 * rng.f64())) as u64;
        elapsed += gap;
        let reading = format!("{:.1}", 18.0 + 6.0 * rng.f64());
        exchanges.push(Exchange::c2s(
            payloads::mqtt_publish("home/telemetry", reading.as_bytes()),
            gap,
        ));
    }
    let port = env.ephemeral_port(rng);
    tcp_conversation(
        TcpConv {
            start_us,
            client: env.device(device_idx),
            server: env.cloud_server(cloud_idx),
            client_port: port,
            server_port: 1883,
            client_ttl: env.local_ttl,
            server_ttl: env.remote_ttl,
            exchanges: &exchanges,
            teardown: Teardown::None,
            rtt_us: 30_000,
            label: Label::BENIGN,
        },
        rng,
    )
    .0
}

/// A smart plug polling its cloud API: short HTTP GET sessions on a period.
pub fn http_poller(
    env: &NetworkEnv,
    device_idx: usize,
    cloud_idx: usize,
    start_us: u64,
    duration_us: u64,
    period_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut out = Vec::new();
    let mut t = start_us;
    let end = start_us + duration_us;
    while t < end {
        let req = payloads::http_get("api.plug.example", "/v1/state");
        let resp = payloads::http_ok(rng.range(120, 600), b'{');
        let port = env.ephemeral_port(rng);
        let (pkts, _) = tcp_conversation(
            TcpConv {
                start_us: t,
                client: env.device(device_idx),
                server: env.cloud_server(cloud_idx),
                client_port: port,
                server_port: 80,
                client_ttl: env.local_ttl,
                server_ttl: env.remote_ttl,
                exchanges: &[Exchange::c2s(req, 2_000), Exchange::s2c(resp, 8_000)],
                teardown: Teardown::Fin,
                rtt_us: 28_000,
                label: Label::BENIGN,
            },
            rng,
        );
        out.extend(pkts);
        t += (period_us as f64 * (0.8 + 0.4 * rng.f64())) as u64;
    }
    out
}

/// Periodic DNS lookups to the LAN gateway (forwarding resolver).
pub fn dns_chatter(
    env: &NetworkEnv,
    device_idx: usize,
    start_us: u64,
    duration_us: u64,
    period_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    const NAMES: [&str; 5] = [
        "cloud.vendor.example",
        "time.vendor.example",
        "fw.vendor.example",
        "api.plug.example",
        "relay.cam.example",
    ];
    let mut out = Vec::new();
    let mut t = start_us;
    let end = start_us + duration_us;
    while t < end {
        let txid = rng.next_u64() as u16;
        let name = *rng.choose(&NAMES);
        let addr = [34, rng.below(200) as u8, rng.below(200) as u8, 9];
        let q = payloads::dns_query(txid, name);
        let r = payloads::dns_response(txid, name, addr);
        let (pkts, _) = udp_exchange(
            t,
            env.device(device_idx),
            env.gateway,
            env.ephemeral_port(rng),
            53,
            &q,
            Some(&r),
            3_000,
            (env.local_ttl, env.local_ttl),
            Label::BENIGN,
            rng,
        );
        out.extend(pkts);
        t += (period_us as f64 * (0.7 + 0.6 * rng.f64())) as u64;
    }
    out
}

/// NTP time sync: request/48-byte response on a long period.
pub fn ntp_sync(
    env: &NetworkEnv,
    device_idx: usize,
    cloud_idx: usize,
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut out = Vec::new();
    let mut t = start_us + rng.below(5_000_000);
    let end = start_us + duration_us;
    while t < end {
        let (pkts, _) = udp_exchange(
            t,
            env.device(device_idx),
            env.cloud_server(cloud_idx),
            env.ephemeral_port(rng),
            123,
            &payloads::ntp_request(),
            Some(&{
                let mut r = payloads::ntp_request();
                r[0] = 0x24; // server mode
                r
            }),
            35_000,
            (env.local_ttl, env.remote_ttl),
            Label::BENIGN,
            rng,
        );
        out.extend(pkts);
        t += 64_000_000 + rng.below(8_000_000);
    }
    out
}

/// Background ARP: devices refreshing the gateway mapping.
pub fn arp_background(
    env: &NetworkEnv,
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut out = Vec::new();
    let mut t = start_us + rng.below(2_000_000);
    let end = start_us + duration_us;
    while t < end {
        let dev = env.device(rng.range(0, env.devices.len()));
        out.push(LabeledPacket {
            packet: CapturedPacket::new(
                t,
                builder::arp_packet(
                    dev.mac,
                    dev.ip,
                    lumen_net::MacAddr::BROADCAST,
                    env.gateway.ip,
                    ArpOperation::Request,
                ),
            ),
            label: Label::BENIGN,
        });
        out.push(LabeledPacket {
            packet: CapturedPacket::new(
                t + 400 + rng.below(600),
                builder::arp_packet(
                    env.gateway.mac,
                    env.gateway.ip,
                    dev.mac,
                    dev.ip,
                    ArpOperation::Reply,
                ),
            ),
            label: Label::BENIGN,
        });
        t += 10_000_000 + rng.below(20_000_000);
    }
    out
}

/// A smart TV streaming video: DASH-style segment fetches — a large
/// downstream burst every few seconds over a keep-alive HTTPS connection.
/// The on/off burst pattern sits between a camera's steady stream and a
/// flood's spike.
pub fn smart_tv(
    env: &NetworkEnv,
    device_idx: usize,
    cloud_idx: usize,
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut exchanges = vec![Exchange::c2s(
        payloads::http_get("cdn.tv.example", "/manifest.mpd"),
        2_000,
    )];
    let mut elapsed = 0u64;
    let mut segment = 0u32;
    while elapsed < duration_us {
        let gap = 2_000_000 + rng.below(2_000_000); // ~2-4 s segments
        elapsed += gap;
        segment += 1;
        exchanges.push(Exchange::c2s(
            payloads::http_get("cdn.tv.example", &format!("/seg/{segment}.m4s")),
            gap,
        ));
        // One segment = several MSS-sized chunks.
        let seg_bytes = rng.range(8_000, 40_000);
        exchanges.push(Exchange::s2c(vec![0x3C; seg_bytes], 15_000));
    }
    let port = env.ephemeral_port(rng);
    tcp_conversation(
        TcpConv {
            start_us,
            client: env.device(device_idx),
            server: env.cloud_server(cloud_idx),
            client_port: port,
            server_port: 443,
            client_ttl: env.local_ttl,
            server_ttl: env.remote_ttl,
            exchanges: &exchanges,
            teardown: Teardown::None,
            rtt_us: 26_000,
            label: Label::BENIGN,
        },
        rng,
    )
    .0
}

/// A voice assistant: long idle keep-alives punctuated by short bursts of
/// bidirectional audio-sized traffic when a query fires.
pub fn voice_assistant(
    env: &NetworkEnv,
    device_idx: usize,
    cloud_idx: usize,
    start_us: u64,
    duration_us: u64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut exchanges = Vec::new();
    let mut elapsed = 0u64;
    while elapsed < duration_us {
        if rng.chance(0.2) {
            // A voice query: ~1-3 s of upstream audio then a reply.
            let chunks = rng.range(8, 24);
            for c in 0..chunks {
                exchanges.push(Exchange::c2s(
                    vec![0x9B; rng.range(300, 640)],
                    if c == 0 { 1_000 } else { 120_000 },
                ));
            }
            exchanges.push(Exchange::s2c(vec![0x5D; rng.range(2_000, 9_000)], 300_000));
            elapsed += chunks as u64 * 120_000 + 300_000;
        } else {
            // Idle keep-alive.
            let gap = 20_000_000 + rng.below(10_000_000);
            elapsed += gap;
            exchanges.push(Exchange::c2s(b"ping".to_vec(), gap));
            exchanges.push(Exchange::s2c(b"pong".to_vec(), 40_000));
        }
    }
    let port = env.ephemeral_port(rng);
    tcp_conversation(
        TcpConv {
            start_us,
            client: env.device(device_idx),
            server: env.cloud_server(cloud_idx),
            client_port: port,
            server_port: 443,
            client_ttl: env.local_ttl,
            server_ttl: env.remote_ttl,
            exchanges: &exchanges,
            teardown: Teardown::None,
            rtt_us: 32_000,
            label: Label::BENIGN,
        },
        rng,
    )
    .0
}

/// A benign firmware download: a short, intense burst of large downstream
/// transfers — volumetrically similar to a flood's aftermath and a common
/// source of false positives for volumetric detectors.
pub fn firmware_download(
    env: &NetworkEnv,
    device_idx: usize,
    cloud_idx: usize,
    start_us: u64,
    total_bytes: usize,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut exchanges = vec![Exchange::c2s(
        payloads::http_get("fw.vendor.example", "/firmware/v2.bin"),
        2_000,
    )];
    let mut sent = 0usize;
    while sent < total_bytes {
        let chunk = rng.range(1200, 1400);
        exchanges.push(Exchange::s2c(vec![0x7F; chunk], 400 + rng.below(2_000)));
        sent += chunk;
    }
    let port = env.ephemeral_port(rng);
    tcp_conversation(
        TcpConv {
            start_us,
            client: env.device(device_idx),
            server: env.cloud_server(cloud_idx),
            client_port: port,
            server_port: 443,
            client_ttl: env.local_ttl,
            server_ttl: env.remote_ttl,
            exchanges: &exchanges,
            teardown: Teardown::Fin,
            rtt_us: 20_000,
            label: Label::BENIGN,
        },
        rng,
    )
    .0
}

/// Benign diagnostics: an operator's legitimate telnet session to a device
/// console — the same port and payload shape brute-force attacks target.
pub fn benign_telnet(
    env: &NetworkEnv,
    device_idx: usize,
    start_us: u64,
    commands: usize,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let operator = env.device(device_idx + 1);
    let mut exchanges = vec![
        Exchange::s2c(b"login: ".to_vec(), 3_000),
        Exchange::c2s(b"admin\r\n".to_vec(), 900_000 + rng.below(1_500_000)),
        Exchange::s2c(b"# ".to_vec(), 50_000),
    ];
    for _ in 0..commands {
        exchanges.push(Exchange::c2s(
            b"show status\r\n".to_vec(),
            1_500_000 + rng.below(4_000_000),
        ));
        let out_len = rng.range(120, 900);
        exchanges.push(Exchange::s2c(vec![b'.'; out_len], 60_000));
    }
    let port = env.ephemeral_port(rng);
    tcp_conversation(
        TcpConv {
            start_us,
            client: operator,
            server: env.device(device_idx),
            client_port: port,
            server_port: 23,
            client_ttl: env.local_ttl,
            server_ttl: env.local_ttl,
            exchanges: &exchanges,
            teardown: Teardown::Fin,
            rtt_us: 4_000,
            label: Label::BENIGN,
        },
        rng,
    )
    .0
}

/// A benign connectivity check: a rapid train of short HTTP probes to
/// several cloud endpoints (captive-portal / reachability logic many IoT
/// stacks run after joining the network). Rate-wise it resembles a small
/// HTTP flood.
pub fn connectivity_check(
    env: &NetworkEnv,
    device_idx: usize,
    start_us: u64,
    probes: usize,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut out = Vec::new();
    let mut t = start_us;
    for p in 0..probes {
        let (pkts, end) = tcp_conversation(
            TcpConv {
                start_us: t,
                client: env.device(device_idx),
                server: env.cloud_server(p),
                client_port: env.ephemeral_port(rng),
                server_port: 80,
                client_ttl: env.local_ttl,
                server_ttl: env.remote_ttl,
                exchanges: &[
                    Exchange::c2s(payloads::http_get("connectivity.example", "/gen_204"), 500),
                    Exchange::s2c(payloads::http_ok(0, b' '), 2_000),
                ],
                teardown: Teardown::Fin,
                rtt_us: 12_000,
                label: Label::BENIGN,
            },
            rng,
        );
        out.extend(pkts);
        t = end + 30_000 + rng.below(120_000);
    }
    out
}

/// A standard benign mix for one LAN: cameras, sensors, pollers, DNS, NTP,
/// ARP. `density` scales how many of each run concurrently.
pub fn benign_mix(
    env: &NetworkEnv,
    start_us: u64,
    duration_us: u64,
    density: usize,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    let mut out = Vec::new();
    let n = env.devices.len();
    for i in 0..density.max(1) {
        let dev = i % n;
        match i % 6 {
            0 => out.extend(camera_stream(
                env,
                dev,
                i,
                start_us + rng.below(1_000_000),
                duration_us,
                rng,
            )),
            1 => out.extend(mqtt_sensor(
                env,
                dev,
                i,
                start_us + rng.below(1_000_000),
                duration_us,
                2_000_000 + rng.below(4_000_000),
                rng,
            )),
            2 => out.extend(http_poller(
                env,
                dev,
                i,
                start_us + rng.below(1_000_000),
                duration_us,
                4_000_000 + rng.below(6_000_000),
                rng,
            )),
            3 => out.extend(smart_tv(
                env,
                dev,
                i,
                start_us + rng.below(1_000_000),
                duration_us,
                rng,
            )),
            4 => out.extend(voice_assistant(
                env,
                dev,
                i,
                start_us + rng.below(1_000_000),
                duration_us,
                rng,
            )),
            _ => out.extend(dns_chatter(
                env,
                dev,
                start_us + rng.below(1_000_000),
                duration_us,
                3_000_000 + rng.below(3_000_000),
                rng,
            )),
        }
    }
    for i in 0..n.min(3) {
        out.extend(ntp_sync(env, i, i, start_us, duration_us, rng));
    }
    out.extend(arp_background(env, start_us, duration_us, rng));
    // Confusable-but-benign behaviours: a firmware download burst, an
    // operator telnet session, and connectivity probes. These are exactly
    // the traffic shapes volumetric/port-based detectors confuse with
    // attacks, and they keep the benchmark from being trivially separable.
    if duration_us > 4_000_000 {
        out.extend(firmware_download(
            env,
            0,
            1,
            start_us + duration_us / 2 + rng.below(duration_us / 4),
            rng.range(120_000, 320_000),
            rng,
        ));
        out.extend(benign_telnet(
            env,
            2 % n,
            start_us + rng.below(duration_us / 2),
            3 + rng.range(0, 4),
            rng,
        ));
        out.extend(connectivity_check(
            env,
            1 % n,
            start_us + rng.below(duration_us / 3),
            4 + rng.range(0, 4),
            rng,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_net::{LinkType, PacketMeta};

    fn env(seed: u64) -> (NetworkEnv, Rng) {
        let mut rng = Rng::new(seed);
        let e = NetworkEnv::new([192, 168, 50], 6, 4, &mut rng);
        (e, rng)
    }

    fn all_parse(pkts: &[LabeledPacket]) {
        for lp in pkts {
            PacketMeta::parse(LinkType::Ethernet, lp.packet.ts_us, &lp.packet.data)
                .expect("benign packet must parse");
        }
    }

    #[test]
    fn camera_emits_many_large_upstream_packets() {
        let (e, mut rng) = env(1);
        let pkts = camera_stream(&e, 0, 0, 0, 3_000_000, &mut rng);
        assert!(pkts.len() > 100, "got {}", pkts.len());
        all_parse(&pkts);
        // All labeled benign.
        assert!(pkts.iter().all(|p| !p.label.malicious));
    }

    #[test]
    fn mqtt_publishes_on_schedule() {
        let (e, mut rng) = env(2);
        let pkts = mqtt_sensor(&e, 1, 0, 0, 20_000_000, 2_000_000, &mut rng);
        // ~10 publishes + connect + handshake + acks.
        let data = pkts
            .iter()
            .filter(|lp| {
                PacketMeta::parse(LinkType::Ethernet, 0, &lp.packet.data)
                    .unwrap()
                    .payload_len
                    > 0
            })
            .count();
        assert!((8..=16).contains(&data), "data packets {data}");
    }

    #[test]
    fn http_poller_produces_complete_sessions() {
        let (e, mut rng) = env(3);
        let pkts = http_poller(&e, 2, 1, 0, 30_000_000, 10_000_000, &mut rng);
        all_parse(&pkts);
        // Each session starts with a SYN; expect ~3 sessions.
        let syns = pkts
            .iter()
            .filter(|lp| {
                let m = PacketMeta::parse(LinkType::Ethernet, 0, &lp.packet.data).unwrap();
                m.transport.tcp_flags().is_some_and(|f| f.syn() && !f.ack())
            })
            .count();
        assert!((2..=5).contains(&syns), "sessions {syns}");
    }

    #[test]
    fn dns_chatter_is_udp_port_53() {
        let (e, mut rng) = env(4);
        let pkts = dns_chatter(&e, 0, 0, 10_000_000, 2_000_000, &mut rng);
        assert!(!pkts.is_empty());
        for lp in &pkts {
            let m = PacketMeta::parse(LinkType::Ethernet, 0, &lp.packet.data).unwrap();
            assert!(m.is_udp());
            let (sp, dp) = (
                m.transport.src_port().unwrap(),
                m.transport.dst_port().unwrap(),
            );
            assert!(sp == 53 || dp == 53);
        }
    }

    #[test]
    fn benign_mix_is_all_benign_and_sorted_after_capture() {
        let (e, mut rng) = env(5);
        let pkts = benign_mix(&e, 0, 5_000_000, 6, &mut rng);
        assert!(pkts.len() > 200);
        assert!(pkts.iter().all(|p| !p.label.malicious));
        let cap = crate::LabeledCapture::from_streams(
            LinkType::Ethernet,
            crate::LabelGranularity::Packet,
            pkts,
        );
        assert!(cap.packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert_eq!(cap.malicious_fraction(), 0.0);
    }

    #[test]
    fn smart_tv_bursts_downstream_segments() {
        let (e, mut rng) = env(11);
        let pkts = smart_tv(&e, 0, 0, 0, 10_000_000, &mut rng);
        all_parse(&pkts);
        let mut down = 0u64;
        for lp in &pkts {
            let m = PacketMeta::parse(LinkType::Ethernet, 0, &lp.packet.data).unwrap();
            if m.ipv4.as_ref().is_some_and(|ip| e.is_local(ip.dst)) {
                down += u64::from(m.payload_len);
            }
        }
        // ~3-5 segments of 8-40 kB.
        assert!(down > 20_000, "downstream {down}");
        assert!(pkts.iter().all(|p| !p.label.malicious));
    }

    #[test]
    fn voice_assistant_is_mostly_idle() {
        let (e, mut rng) = env(12);
        let pkts = voice_assistant(&e, 0, 0, 0, 60_000_000, &mut rng);
        all_parse(&pkts);
        // Idle keep-alives dominate: average packet rate well under
        // streaming rates.
        let dur_s = (pkts.last().unwrap().packet.ts_us - pkts[0].packet.ts_us) as f64 / 1e6;
        let rate = pkts.len() as f64 / dur_s.max(1.0);
        assert!(rate < 50.0, "rate {rate} pkts/s");
    }

    #[test]
    fn firmware_download_is_downstream_heavy() {
        let (e, mut rng) = env(8);
        let pkts = firmware_download(&e, 0, 0, 0, 100_000, &mut rng);
        all_parse(&pkts);
        let mut down = 0u64;
        let mut up = 0u64;
        for lp in &pkts {
            let m = PacketMeta::parse(LinkType::Ethernet, 0, &lp.packet.data).unwrap();
            if m.ipv4.as_ref().is_some_and(|ip| e.is_local(ip.dst)) {
                down += u64::from(m.payload_len);
            } else {
                up += u64::from(m.payload_len);
            }
        }
        assert!(down > 100_000 && down > up * 10, "down {down} up {up}");
        assert!(pkts.iter().all(|p| !p.label.malicious));
    }

    #[test]
    fn benign_telnet_uses_port_23_and_stays_benign() {
        let (e, mut rng) = env(9);
        let pkts = benign_telnet(&e, 0, 0, 4, &mut rng);
        all_parse(&pkts);
        let m = PacketMeta::parse(LinkType::Ethernet, 0, &pkts[0].packet.data).unwrap();
        assert_eq!(m.transport.dst_port(), Some(23));
        assert!(pkts.iter().all(|p| !p.label.malicious));
    }

    #[test]
    fn connectivity_check_is_short_sessions() {
        let (e, mut rng) = env(10);
        let pkts = connectivity_check(&e, 0, 0, 5, &mut rng);
        all_parse(&pkts);
        let syns = pkts
            .iter()
            .filter(|lp| {
                let m = PacketMeta::parse(LinkType::Ethernet, 0, &lp.packet.data).unwrap();
                m.transport.tcp_flags().is_some_and(|f| f.syn() && !f.ack())
            })
            .count();
        assert_eq!(syns, 5);
    }

    #[test]
    fn deterministic_per_seed() {
        let (e1, mut r1) = env(7);
        let (e2, mut r2) = env(7);
        let a = camera_stream(&e1, 0, 0, 0, 1_000_000, &mut r1);
        let b = camera_stream(&e2, 0, 0, 0, 1_000_000, &mut r2);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[5].packet.data, b[5].packet.data);
    }
}
