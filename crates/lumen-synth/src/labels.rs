//! Label propagation between classification granularities (§2.1 of the
//! paper: a flow label can propagate down to packets; packet labels
//! aggregate up to a connection by the any-malicious rule).

use lumen_flow::{ConnRecord, UniFlowRecord};

use crate::{AttackKind, Label};

/// Derives a connection label from the per-packet ground truth: malicious if
/// any member packet is malicious; the attack kind is the most frequent
/// malicious kind among member packets.
pub fn connection_labels(packet_labels: &[Label], conns: &[ConnRecord]) -> Vec<Label> {
    conns
        .iter()
        .map(|c| aggregate(packet_labels, &c.packet_indices))
        .collect()
}

/// Same aggregation for unidirectional flow records.
pub fn uni_flow_labels(packet_labels: &[Label], flows: &[UniFlowRecord]) -> Vec<Label> {
    flows
        .iter()
        .map(|f| aggregate(packet_labels, &f.packet_indices))
        .collect()
}

fn aggregate(packet_labels: &[Label], indices: &[u32]) -> Label {
    let mut counts: std::collections::HashMap<AttackKind, usize> = std::collections::HashMap::new();
    for &i in indices {
        if let Some(l) = packet_labels.get(i as usize) {
            if let Some(kind) = l.attack {
                *counts.entry(kind).or_insert(0) += 1;
            }
        }
    }
    match counts.into_iter().max_by_key(|&(k, c)| (c, k)) {
        Some((kind, _)) => Label::attack(kind),
        None => Label::BENIGN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_util::Summary;
    use std::net::Ipv4Addr;

    fn conn_with_indices(idx: Vec<u32>) -> ConnRecord {
        ConnRecord {
            orig: (Ipv4Addr::new(1, 1, 1, 1), 1),
            resp: (Ipv4Addr::new(2, 2, 2, 2), 2),
            proto: 6,
            start_us: 0,
            end_us: 1,
            orig_pkts: idx.len() as u32,
            resp_pkts: 0,
            orig_bytes: 0,
            resp_bytes: 0,
            orig_wire_bytes: 0,
            resp_wire_bytes: 0,
            orig_flags: Default::default(),
            resp_flags: Default::default(),
            iat: Summary::of(&[]),
            orig_len: Summary::of(&[]),
            resp_len: Summary::of(&[]),
            state: lumen_flow::ConnState::Oth,
            history: String::new(),
            first_n: vec![],
            orig_ttl_mean: 64.0,
            packet_indices: idx,
        }
    }

    #[test]
    fn all_benign_stays_benign() {
        let labels = vec![Label::BENIGN; 5];
        let conns = vec![conn_with_indices(vec![0, 1, 2])];
        assert_eq!(connection_labels(&labels, &conns), vec![Label::BENIGN]);
    }

    #[test]
    fn any_malicious_packet_taints_connection() {
        let mut labels = vec![Label::BENIGN; 5];
        labels[3] = Label::attack(AttackKind::SynFlood);
        let conns = vec![conn_with_indices(vec![2, 3, 4])];
        let out = connection_labels(&labels, &conns);
        assert!(out[0].malicious);
        assert_eq!(out[0].attack, Some(AttackKind::SynFlood));
    }

    #[test]
    fn majority_attack_kind_wins() {
        let labels = vec![
            Label::attack(AttackKind::PortScan),
            Label::attack(AttackKind::PortScan),
            Label::attack(AttackKind::UdpFlood),
        ];
        let conns = vec![conn_with_indices(vec![0, 1, 2])];
        let out = connection_labels(&labels, &conns);
        assert_eq!(out[0].attack, Some(AttackKind::PortScan));
    }

    #[test]
    fn out_of_range_indices_ignored() {
        let labels = vec![Label::BENIGN];
        let conns = vec![conn_with_indices(vec![0, 99])];
        assert_eq!(connection_labels(&labels, &conns)[0], Label::BENIGN);
    }
}
