//! Synthetic IoT traffic and attack generation — Lumen's dataset substitute.
//!
//! The paper evaluates on 15 public captures (CICIDS 2017/2019, CTU IoT,
//! Kitsune, IEEE IoT, AWID3). Those downloads are unavailable here, so this
//! crate regenerates their *character*: seeded generative models of benign
//! IoT device behaviour ([`devices`]) composed with attack generators
//! ([`attacks`]) into per-dataset recipes ([`recipes`]) that mirror each
//! public dataset's attack mix, label granularity, link type, and network
//! environment. Every byte goes through `lumen-net`'s builders, so the
//! captures are valid pcaps and the full parse→feature→model code path is
//! exercised exactly as on real data.
//!
//! Distribution shift between dataset families is deliberate (different
//! address plans, device mixes, timing regimes, attack intensities): the
//! paper's headline observations are about how poorly algorithms transfer
//! across datasets, and that phenomenon needs real heterogeneity to appear.

#![forbid(unsafe_code)]

pub mod attacks;
pub mod chaos;
pub mod devices;
pub mod labels;
pub mod network;
pub mod recipes;
pub mod scenario;
pub mod session;
pub mod sweep;

pub use chaos::{ChaosConfig, ChaosFault, ChaosPcap, ChaosReport};
pub use labels::{connection_labels, uni_flow_labels};
pub use network::{Endpoint, NetworkEnv};
pub use recipes::{build_dataset, DatasetId, DatasetSpec, SynthScale};
pub use scenario::{
    build_scenario, Breakpoint, BreakpointKind, ScenarioFamily, ScenarioId, ScenarioReport,
};
pub use sweep::{endpoint_sweep, SweepSpec};

use lumen_net::{CapturedPacket, LinkType};

/// Which attack generated a malicious packet. These are the columns of the
/// paper's Figure 5 heatmap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttackKind {
    DosHulk,
    DosSlowloris,
    DosGoldenEye,
    SynFlood,
    UdpFlood,
    AmplificationNtp,
    AmplificationSsdp,
    PortScan,
    BruteForceFtp,
    BruteForceSsh,
    BruteForceTelnet,
    BotnetMirai,
    BotnetTorii,
    WebAttack,
    Infiltration,
    ArpMitm,
    WifiDeauth,
    WifiEvilTwin,
    WifiKrack,
}

impl AttackKind {
    /// Every attack kind, in display order.
    pub const ALL: [AttackKind; 19] = [
        AttackKind::DosHulk,
        AttackKind::DosSlowloris,
        AttackKind::DosGoldenEye,
        AttackKind::SynFlood,
        AttackKind::UdpFlood,
        AttackKind::AmplificationNtp,
        AttackKind::AmplificationSsdp,
        AttackKind::PortScan,
        AttackKind::BruteForceFtp,
        AttackKind::BruteForceSsh,
        AttackKind::BruteForceTelnet,
        AttackKind::BotnetMirai,
        AttackKind::BotnetTorii,
        AttackKind::WebAttack,
        AttackKind::Infiltration,
        AttackKind::ArpMitm,
        AttackKind::WifiDeauth,
        AttackKind::WifiEvilTwin,
        AttackKind::WifiKrack,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::DosHulk => "dos-hulk",
            AttackKind::DosSlowloris => "dos-slowloris",
            AttackKind::DosGoldenEye => "dos-goldeneye",
            AttackKind::SynFlood => "syn-flood",
            AttackKind::UdpFlood => "udp-flood",
            AttackKind::AmplificationNtp => "ampl-ntp",
            AttackKind::AmplificationSsdp => "ampl-ssdp",
            AttackKind::PortScan => "port-scan",
            AttackKind::BruteForceFtp => "brute-ftp",
            AttackKind::BruteForceSsh => "brute-ssh",
            AttackKind::BruteForceTelnet => "brute-telnet",
            AttackKind::BotnetMirai => "botnet-mirai",
            AttackKind::BotnetTorii => "botnet-torii",
            AttackKind::WebAttack => "web-attack",
            AttackKind::Infiltration => "infiltration",
            AttackKind::ArpMitm => "arp-mitm",
            AttackKind::WifiDeauth => "wifi-deauth",
            AttackKind::WifiEvilTwin => "wifi-eviltwin",
            AttackKind::WifiKrack => "wifi-krack",
        }
    }
}

/// Ground-truth label of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label {
    /// True when the packet belongs to attack traffic.
    pub malicious: bool,
    /// Which attack, when malicious.
    pub attack: Option<AttackKind>,
}

impl Label {
    /// The benign label.
    pub const BENIGN: Label = Label {
        malicious: false,
        attack: None,
    };

    /// A malicious label for the given attack.
    pub fn attack(kind: AttackKind) -> Label {
        Label {
            malicious: true,
            attack: Some(kind),
        }
    }
}

/// One generated packet with its ground truth.
#[derive(Debug, Clone)]
pub struct LabeledPacket {
    /// The raw captured frame.
    pub packet: CapturedPacket,
    /// Ground truth.
    pub label: Label,
}

/// Classification granularity of a dataset's labels (§2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LabelGranularity {
    /// Every packet labeled individually.
    Packet,
    /// Labels attach to bidirectional connections.
    Connection,
}

/// A complete labeled capture — what a "dataset" is to the benchmark suite.
#[derive(Debug, Clone)]
pub struct LabeledCapture {
    /// Link type of every frame.
    pub link: LinkType,
    /// Packets sorted by timestamp.
    pub packets: Vec<CapturedPacket>,
    /// Ground truth parallel to `packets`.
    pub labels: Vec<Label>,
    /// Label granularity this dataset is published at.
    pub granularity: LabelGranularity,
}

impl LabeledCapture {
    /// Merges generator outputs into one time-sorted capture.
    pub fn from_streams(
        link: LinkType,
        granularity: LabelGranularity,
        mut streams: Vec<LabeledPacket>,
    ) -> LabeledCapture {
        streams.sort_by_key(|lp| lp.packet.ts_us);
        let (packets, labels) = streams.into_iter().map(|lp| (lp.packet, lp.label)).unzip();
        LabeledCapture {
            link,
            packets,
            labels,
            granularity,
        }
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Fraction of malicious packets.
    pub fn malicious_fraction(&self) -> f64 {
        if self.labels.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|l| l.malicious).count() as f64 / self.labels.len() as f64
    }

    /// Distinct attacks present.
    pub fn attacks_present(&self) -> Vec<AttackKind> {
        let mut kinds: Vec<AttackKind> = self.labels.iter().filter_map(|l| l.attack).collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }

    /// Serializes the capture to pcap bytes (labels are not part of the pcap
    /// format, matching how public datasets ship labels out-of-band).
    pub fn to_pcap_bytes(&self) -> Vec<u8> {
        lumen_net::pcap::to_bytes(self.link, &self.packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_streams_sorts_by_time() {
        let mk = |ts| LabeledPacket {
            packet: CapturedPacket::new(ts, vec![0u8; 20]),
            label: Label::BENIGN,
        };
        let cap = LabeledCapture::from_streams(
            LinkType::Ethernet,
            LabelGranularity::Packet,
            vec![mk(30), mk(10), mk(20)],
        );
        let ts: Vec<u64> = cap.packets.iter().map(|p| p.ts_us).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn malicious_fraction_counts() {
        let mk = |m| LabeledPacket {
            packet: CapturedPacket::new(0, vec![]),
            label: if m {
                Label::attack(AttackKind::SynFlood)
            } else {
                Label::BENIGN
            },
        };
        let cap = LabeledCapture::from_streams(
            LinkType::Ethernet,
            LabelGranularity::Packet,
            vec![mk(true), mk(false), mk(false), mk(true)],
        );
        assert!((cap.malicious_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(cap.attacks_present(), vec![AttackKind::SynFlood]);
    }

    #[test]
    fn attack_names_unique() {
        use std::collections::HashSet;
        let names: HashSet<&str> = AttackKind::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), AttackKind::ALL.len());
    }
}
