//! Network environments: address plans and device rosters.

use std::net::Ipv4Addr;

use lumen_net::MacAddr;
use lumen_util::Rng;

/// One addressable host (local device, gateway, or remote server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    pub mac: MacAddr,
    pub ip: Ipv4Addr,
}

impl Endpoint {
    /// Builds an endpoint with a MAC derived from the IP (stable, unique).
    pub fn new(ip: Ipv4Addr) -> Endpoint {
        Endpoint {
            mac: MacAddr::from_id(u64::from(u32::from(ip))),
            ip,
        }
    }
}

/// A simulated LAN: subnet, gateway, device roster, and the cloud servers
/// devices talk to. Each dataset recipe instantiates a different environment
/// — that heterogeneity is what makes cross-dataset transfer hard, matching
/// the public datasets' very different collection networks.
#[derive(Debug, Clone)]
pub struct NetworkEnv {
    /// First three octets of the LAN subnet (a /24).
    pub subnet: [u8; 3],
    /// The LAN gateway (also the NAT hop for traffic leaving the LAN).
    pub gateway: Endpoint,
    /// Local IoT devices.
    pub devices: Vec<Endpoint>,
    /// Remote cloud endpoints (camera relay, MQTT broker, NTP, DNS, web).
    pub cloud: Vec<Endpoint>,
    /// Base TTL remote servers use (varies per environment).
    pub remote_ttl: u8,
    /// Base TTL local devices use.
    pub local_ttl: u8,
    /// True when the roster overflowed the home /24 and devices were spread
    /// across sibling /24 blocks of the enclosing /8 (see [`device_ip`]).
    /// Locality checks then match the /8 instead of the /24.
    pub wide: bool,
}

/// How many devices fit in the home /24 (hosts .10–.254; .1 is the gateway,
/// .250 is reserved for the port-scan attacker persona — it sits inside the
/// range, but recipes that use it keep rosters far below this cap).
const NARROW_CAP: usize = 245;

/// Hosts usable per sibling /24 in the wide plan (.2–.254).
const WIDE_HOSTS: usize = 253;

/// Address of device `i`: the home /24 until it fills, then sibling /24
/// blocks of the enclosing /8, starting just after the home block and
/// wrapping through the full /8. Every index below ~16.5M maps to a distinct
/// address, which is what lets recipes host millions of device endpoints.
fn device_ip(subnet: [u8; 3], i: usize) -> Ipv4Addr {
    if i < NARROW_CAP {
        return Ipv4Addr::new(subnet[0], subnet[1], subnet[2], 10 + i as u8);
    }
    let j = i - NARROW_CAP;
    let home_block = ((subnet[1] as usize) << 8) | subnet[2] as usize;
    let block = (home_block + 1 + j / WIDE_HOSTS) % (1 << 16);
    let host = 2 + (j % WIDE_HOSTS) as u8;
    Ipv4Addr::new(subnet[0], (block >> 8) as u8, (block & 0xff) as u8, host)
}

impl NetworkEnv {
    /// Builds an environment with `n_devices` hosts on `subnet`.x and
    /// `n_cloud` remote servers drawn deterministically from `rng`.
    ///
    /// Rosters up to 245 devices live on the home /24 exactly as before;
    /// larger rosters spill into sibling /24s of the enclosing /8 (capacity
    /// ~16.5M distinct devices) and mark the environment [`NetworkEnv::wide`].
    pub fn new(subnet: [u8; 3], n_devices: usize, n_cloud: usize, rng: &mut Rng) -> NetworkEnv {
        let wide = n_devices > NARROW_CAP;
        let gateway = Endpoint::new(Ipv4Addr::new(subnet[0], subnet[1], subnet[2], 1));
        let devices = (0..n_devices)
            .map(|i| Endpoint::new(device_ip(subnet, i)))
            .collect();
        let cloud = (0..n_cloud.max(1))
            .map(|_| {
                // Public-looking addresses outside RFC1918. A wide roster
                // owns its whole /8, so keep cloud servers out of it.
                let mut a = *rng.choose(&[13u8, 34, 52, 104, 142, 172, 203]);
                if wide && a == subnet[0] {
                    a = if a == 203 { 34 } else { 203 };
                }
                Endpoint::new(Ipv4Addr::new(
                    a,
                    rng.below(224) as u8,
                    rng.below(256) as u8,
                    1 + rng.below(254) as u8,
                ))
            })
            .collect();
        NetworkEnv {
            subnet,
            gateway,
            devices,
            cloud,
            remote_ttl: 48 + (rng.below(16) as u8),
            local_ttl: 64,
            wide,
        }
    }

    /// A device by index (wrapping).
    pub fn device(&self, i: usize) -> Endpoint {
        self.devices[i % self.devices.len()]
    }

    /// A cloud server by index (wrapping).
    pub fn cloud_server(&self, i: usize) -> Endpoint {
        self.cloud[i % self.cloud.len()]
    }

    /// True when `ip` is on this LAN: the home /24 normally, the whole /8
    /// for wide rosters (whose devices spill across sibling /24s).
    pub fn is_local(&self, ip: Ipv4Addr) -> bool {
        let o = ip.octets();
        if self.wide {
            o[0] == self.subnet[0]
        } else {
            o[0] == self.subnet[0] && o[1] == self.subnet[1] && o[2] == self.subnet[2]
        }
    }

    /// A fresh external (attacker/spoofed) endpoint.
    pub fn external(&self, rng: &mut Rng) -> Endpoint {
        Endpoint::new(Ipv4Addr::new(
            *rng.choose(&[45u8, 91, 146, 185, 193, 198]),
            rng.below(256) as u8,
            rng.below(256) as u8,
            1 + rng.below(254) as u8,
        ))
    }

    /// An ephemeral client port.
    pub fn ephemeral_port(&self, rng: &mut Rng) -> u16 {
        32768 + rng.below(28000) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn devices_get_distinct_stable_addresses() {
        let mut rng = Rng::new(1);
        let env = NetworkEnv::new([192, 168, 7], 5, 3, &mut rng);
        assert_eq!(env.devices.len(), 5);
        assert_eq!(env.device(0).ip, Ipv4Addr::new(192, 168, 7, 10));
        assert_eq!(env.device(4).ip, Ipv4Addr::new(192, 168, 7, 14));
        let macs: std::collections::HashSet<_> = env.devices.iter().map(|d| d.mac).collect();
        assert_eq!(macs.len(), 5);
    }

    #[test]
    fn local_detection() {
        let mut rng = Rng::new(2);
        let env = NetworkEnv::new([10, 0, 5], 2, 1, &mut rng);
        assert!(env.is_local(Ipv4Addr::new(10, 0, 5, 200)));
        assert!(!env.is_local(Ipv4Addr::new(10, 0, 6, 200)));
        assert!(!env.is_local(env.cloud_server(0).ip));
    }

    #[test]
    fn external_addresses_are_not_local() {
        let mut rng = Rng::new(3);
        let env = NetworkEnv::new([192, 168, 1], 3, 2, &mut rng);
        for _ in 0..50 {
            assert!(!env.is_local(env.external(&mut rng).ip));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NetworkEnv::new([192, 168, 1], 4, 3, &mut Rng::new(9));
        let b = NetworkEnv::new([192, 168, 1], 4, 3, &mut Rng::new(9));
        assert_eq!(a.cloud, b.cloud);
        assert_eq!(a.remote_ttl, b.remote_ttl);
    }

    #[test]
    fn small_rosters_keep_the_legacy_24_plan() {
        let mut rng = Rng::new(12);
        let env = NetworkEnv::new([192, 168, 50], 245, 2, &mut rng);
        assert!(!env.wide);
        assert_eq!(env.device(0).ip, Ipv4Addr::new(192, 168, 50, 10));
        assert_eq!(env.device(244).ip, Ipv4Addr::new(192, 168, 50, 254));
        assert!(!env.is_local(Ipv4Addr::new(192, 168, 51, 10)));
    }

    #[test]
    fn wide_rosters_get_distinct_local_addresses() {
        let mut rng = Rng::new(13);
        let n = 100_000;
        let env = NetworkEnv::new([10, 0, 2], n, 3, &mut rng);
        assert!(env.wide);
        assert_eq!(env.devices.len(), n);
        let ips: std::collections::HashSet<u32> =
            env.devices.iter().map(|d| u32::from(d.ip)).collect();
        assert_eq!(ips.len(), n, "device addresses must be distinct");
        assert!(!ips.contains(&u32::from(env.gateway.ip)));
        for d in env.devices.iter().step_by(9973) {
            assert!(env.is_local(d.ip), "{} should be local", d.ip);
        }
        for c in &env.cloud {
            assert!(!env.is_local(c.ip), "cloud {} leaked into the wide /8", c.ip);
        }
        for _ in 0..50 {
            assert!(!env.is_local(env.external(&mut rng).ip));
        }
    }

    #[test]
    fn wide_plan_can_host_millions() {
        // Spot-check distinctness at million-scale without materializing
        // the roster: the address function itself must not collide.
        let idxs = [0usize, 244, 245, 500_000, 1_000_000, 4_000_000, 16_000_000];
        let ips: std::collections::HashSet<u32> = idxs
            .iter()
            .map(|&i| u32::from(device_ip([10, 0, 2], i)))
            .collect();
        assert_eq!(ips.len(), idxs.len());
        // Neighbouring million-scale indices stay distinct too.
        let a = device_ip([10, 0, 2], 2_000_000);
        let b = device_ip([10, 0, 2], 2_000_001);
        assert_ne!(a, b);
    }

    #[test]
    fn ephemeral_ports_in_range() {
        let mut rng = Rng::new(4);
        let env = NetworkEnv::new([192, 168, 1], 1, 1, &mut rng);
        for _ in 0..100 {
            let p = env.ephemeral_port(&mut rng);
            assert!(p >= 32768);
        }
    }
}
