//! The 15 benchmark dataset recipes (Table 3 of the paper).
//!
//! F0–F9 are connection-level-labeled captures mirroring CICIDS 2017 (per
//! day), CICIDS 2019, and six CTU IoT scenarios; P0–P4 are packet-level
//! captures mirroring the IEEE IoT intrusion dataset, Kitsune traces, and
//! AWID3. Each family gets its own network environment (subnet, device mix,
//! timing) so that cross-family transfer is genuinely hard, as it is for the
//! real datasets.

use lumen_net::{LinkType, MacAddr};
use lumen_util::Rng;

use crate::attacks;
use crate::devices;
use crate::network::{Endpoint, NetworkEnv};
use crate::{AttackKind, LabelGranularity, LabeledCapture, LabeledPacket};

/// Identifier of one benchmark dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DatasetId {
    F0,
    F1,
    F2,
    F3,
    F4,
    F5,
    F6,
    F7,
    F8,
    F9,
    P0,
    P1,
    P2,
    P3,
    P4,
}

impl DatasetId {
    /// All datasets in table order.
    pub const ALL: [DatasetId; 15] = [
        DatasetId::F0,
        DatasetId::F1,
        DatasetId::F2,
        DatasetId::F3,
        DatasetId::F4,
        DatasetId::F5,
        DatasetId::F6,
        DatasetId::F7,
        DatasetId::F8,
        DatasetId::F9,
        DatasetId::P0,
        DatasetId::P1,
        DatasetId::P2,
        DatasetId::P3,
        DatasetId::P4,
    ];

    /// The ten connection-level datasets.
    pub const CONNECTION: [DatasetId; 10] = [
        DatasetId::F0,
        DatasetId::F1,
        DatasetId::F2,
        DatasetId::F3,
        DatasetId::F4,
        DatasetId::F5,
        DatasetId::F6,
        DatasetId::F7,
        DatasetId::F8,
        DatasetId::F9,
    ];

    /// The five packet-level datasets.
    pub const PACKET: [DatasetId; 5] = [
        DatasetId::P0,
        DatasetId::P1,
        DatasetId::P2,
        DatasetId::P3,
        DatasetId::P4,
    ];

    /// Short identifier ("F0", "P3", ...).
    pub fn code(self) -> &'static str {
        match self {
            DatasetId::F0 => "F0",
            DatasetId::F1 => "F1",
            DatasetId::F2 => "F2",
            DatasetId::F3 => "F3",
            DatasetId::F4 => "F4",
            DatasetId::F5 => "F5",
            DatasetId::F6 => "F6",
            DatasetId::F7 => "F7",
            DatasetId::F8 => "F8",
            DatasetId::F9 => "F9",
            DatasetId::P0 => "P0",
            DatasetId::P1 => "P1",
            DatasetId::P2 => "P2",
            DatasetId::P3 => "P3",
            DatasetId::P4 => "P4",
        }
    }

    /// Metadata for this dataset.
    pub fn spec(self) -> DatasetSpec {
        use AttackKind::*;
        let (name, source, granularity, link, attacks): (
            &str,
            &str,
            LabelGranularity,
            LinkType,
            Vec<AttackKind>,
        ) = match self {
            DatasetId::F0 => (
                "CICIDS 2017, Tuesday",
                "cicids2017",
                LabelGranularity::Connection,
                LinkType::Ethernet,
                vec![BruteForceFtp, BruteForceSsh],
            ),
            DatasetId::F1 => (
                "CICIDS 2017, Wednesday",
                "cicids2017",
                LabelGranularity::Connection,
                LinkType::Ethernet,
                vec![DosHulk, DosSlowloris, DosGoldenEye],
            ),
            DatasetId::F2 => (
                "CICIDS 2017, Thursday",
                "cicids2017",
                LabelGranularity::Connection,
                LinkType::Ethernet,
                vec![WebAttack, Infiltration],
            ),
            DatasetId::F3 => (
                "CICIDS 2019, 01-11",
                "cicids2019",
                LabelGranularity::Connection,
                LinkType::Ethernet,
                vec![AmplificationNtp, AmplificationSsdp, UdpFlood, SynFlood],
            ),
            DatasetId::F4 => (
                "CTU IoT, 1-1 (Mirai)",
                "ctu",
                LabelGranularity::Connection,
                LinkType::Ethernet,
                vec![BotnetMirai],
            ),
            DatasetId::F5 => (
                "CTU IoT, 20-1 (Torii)",
                "ctu",
                LabelGranularity::Connection,
                LinkType::Ethernet,
                vec![BotnetTorii],
            ),
            DatasetId::F6 => (
                "CTU IoT, 3-1",
                "ctu",
                LabelGranularity::Connection,
                LinkType::Ethernet,
                vec![UdpFlood, BotnetMirai],
            ),
            DatasetId::F7 => (
                "CTU IoT, 7-1",
                "ctu",
                LabelGranularity::Connection,
                LinkType::Ethernet,
                vec![BotnetMirai, BruteForceTelnet],
            ),
            DatasetId::F8 => (
                "CTU IoT, 34-1",
                "ctu",
                LabelGranularity::Connection,
                LinkType::Ethernet,
                vec![PortScan, BotnetMirai],
            ),
            DatasetId::F9 => (
                "CTU IoT, 8-1",
                "ctu",
                LabelGranularity::Connection,
                LinkType::Ethernet,
                vec![BruteForceTelnet, SynFlood],
            ),
            DatasetId::P0 => (
                "IEEE IoT network intrusion",
                "ieee-iot",
                LabelGranularity::Packet,
                LinkType::Ethernet,
                vec![PortScan, ArpMitm, SynFlood],
            ),
            DatasetId::P1 => (
                "Kitsune, Mirai",
                "kitsune",
                LabelGranularity::Packet,
                LinkType::Ethernet,
                vec![BotnetMirai, SynFlood],
            ),
            DatasetId::P2 => (
                "Kitsune, SYN DoS",
                "kitsune",
                LabelGranularity::Packet,
                LinkType::Ethernet,
                vec![SynFlood],
            ),
            DatasetId::P3 => (
                "AWID3 (802.11)",
                "awid3",
                LabelGranularity::Packet,
                LinkType::Ieee80211,
                vec![WifiDeauth, WifiEvilTwin, WifiKrack],
            ),
            DatasetId::P4 => (
                "IEEE IoT, flood day",
                "ieee-iot",
                LabelGranularity::Packet,
                LinkType::Ethernet,
                vec![UdpFlood, BruteForceTelnet],
            ),
        };
        DatasetSpec {
            id: self,
            name,
            source,
            granularity,
            link,
            attacks,
        }
    }
}

/// Static metadata of one dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    pub id: DatasetId,
    /// Human-readable name (the public dataset it mirrors).
    pub name: &'static str,
    /// Source family ("cicids2017", "ctu", ...): datasets from the same
    /// family share a network environment style.
    pub source: &'static str,
    /// Label granularity.
    pub granularity: LabelGranularity,
    /// Link type of the capture.
    pub link: LinkType,
    /// Attacks present.
    pub attacks: Vec<AttackKind>,
}

/// Size knobs for dataset generation.
#[derive(Debug, Clone, Copy)]
pub struct SynthScale {
    /// Capture duration in seconds.
    pub duration_s: f64,
    /// How many concurrent benign device behaviours to run.
    pub benign_density: usize,
    /// Multiplier on attack rates/counts.
    pub intensity: f64,
    /// Device-roster override: 0 keeps each recipe's historical device
    /// count; any other value sizes the environment's roster directly.
    /// Counts above 245 spill past the home /24 (see
    /// [`crate::network::NetworkEnv`]), allowing millions of distinct
    /// device endpoints.
    pub devices: usize,
}

impl Default for SynthScale {
    fn default() -> Self {
        SynthScale {
            duration_s: 30.0,
            benign_density: 8,
            intensity: 1.0,
            devices: 0,
        }
    }
}

impl SynthScale {
    /// A smaller scale for fast tests.
    pub fn small() -> SynthScale {
        SynthScale {
            duration_s: 10.0,
            benign_density: 4,
            intensity: 0.5,
            devices: 0,
        }
    }

    fn dur_us(&self) -> u64 {
        (self.duration_s * 1e6) as u64
    }
}

/// Builds one benchmark dataset. The same `(id, scale, seed)` triple always
/// produces the identical capture.
pub fn build_dataset(id: DatasetId, scale: SynthScale, seed: u64) -> LabeledCapture {
    let spec = id.spec();
    // Different dataset families live in different environments; different
    // days of the same family share the environment but differ in seed.
    let mut rng = Rng::new(seed ^ (id as u64).wrapping_mul(0x9E37_79B9));
    let dur = scale.dur_us();
    let t0 = 1_000_000u64;
    let intensity = scale.intensity;

    if spec.link == LinkType::Ieee80211 {
        return build_wifi(spec, scale, &mut rng);
    }

    // Each family's historical roster size, overridable by the scale knob
    // (0 = keep the recipe default).
    let roster = |default: usize| {
        if scale.devices > 0 {
            scale.devices
        } else {
            default
        }
    };
    let env = match spec.source {
        "cicids2017" => NetworkEnv::new([192, 168, 10], roster(12), 6, &mut rng.fork(1)),
        "cicids2019" => NetworkEnv::new([172, 16, 0], roster(10), 5, &mut rng.fork(1)),
        "ctu" => NetworkEnv::new([192, 168, 100], roster(4), 2, &mut rng.fork(1)),
        "kitsune" => NetworkEnv::new([10, 0, 2], roster(9), 3, &mut rng.fork(1)),
        _ => NetworkEnv::new([192, 168, 0], roster(8), 4, &mut rng.fork(1)),
    };

    let mut stream = Vec::new();

    // Benign backdrop. Kitsune's testbed is camera-dominated.
    let mut benign_rng = rng.fork(2);
    if spec.source == "kitsune" {
        for i in 0..scale.benign_density.max(2) {
            stream.extend(devices::camera_stream(
                &env,
                i,
                i,
                t0 + benign_rng.below(1_000_000),
                dur,
                &mut benign_rng,
            ));
        }
        stream.extend(devices::arp_background(&env, t0, dur, &mut benign_rng));
        stream.extend(devices::dns_chatter(
            &env,
            0,
            t0,
            dur,
            4_000_000,
            &mut benign_rng,
        ));
    } else {
        stream.extend(devices::benign_mix(
            &env,
            t0,
            dur,
            scale.benign_density,
            &mut benign_rng,
        ));
    }

    // Attacks start after a benign-only warmup third.
    let atk_start = t0 + dur / 3;
    let atk_dur = dur - dur / 3;
    let mut atk_rng = rng.fork(3);
    for kind in &spec.attacks {
        stream.extend(generate_attack(
            *kind,
            &env,
            atk_start,
            atk_dur,
            intensity,
            &mut atk_rng,
        ));
    }

    LabeledCapture::from_streams(spec.link, spec.granularity, stream)
}

fn generate_attack(
    kind: AttackKind,
    env: &NetworkEnv,
    start: u64,
    dur: u64,
    intensity: f64,
    rng: &mut Rng,
) -> Vec<LabeledPacket> {
    use AttackKind::*;
    match kind {
        SynFlood => attacks::syn_flood(env, env.device(0), 80, start, dur, 400.0 * intensity, rng),
        UdpFlood => attacks::udp_flood(env, env.device(1), start, dur, 350.0 * intensity, rng),
        DosHulk => attacks::dos_hulk(env, env.device(0), start, dur, 14.0 * intensity, rng),
        DosSlowloris => attacks::dos_slowloris(
            env,
            env.device(0),
            start,
            dur,
            (24.0 * intensity) as usize + 2,
            rng,
        ),
        DosGoldenEye => {
            attacks::dos_goldeneye(env, env.device(0), start, dur, 7.0 * intensity, rng)
        }
        AmplificationNtp => attacks::amplification(
            env,
            AmplificationNtp,
            env.device(2),
            start,
            dur,
            220.0 * intensity,
            rng,
        ),
        AmplificationSsdp => attacks::amplification(
            env,
            AmplificationSsdp,
            env.device(3),
            start,
            dur,
            180.0 * intensity,
            rng,
        ),
        PortScan => {
            let attacker = Endpoint::new(std::net::Ipv4Addr::new(
                env.subnet[0],
                env.subnet[1],
                env.subnet[2],
                250,
            ));
            attacks::port_scan(env, attacker, start, (60.0 * intensity) as u16 + 10, rng)
        }
        BruteForceFtp | BruteForceSsh | BruteForceTelnet => {
            let ext = env.external(rng);
            let attacker = Endpoint {
                mac: env.gateway.mac,
                ip: ext.ip,
            };
            attacks::brute_force(
                env,
                kind,
                attacker,
                env.device(0),
                start,
                (40.0 * intensity) as usize + 8,
                300_000,
                rng,
            )
        }
        BotnetMirai => attacks::mirai(env, &[0, 1], start, dur, rng),
        BotnetTorii => attacks::torii(env, 0, start, dur.max(60_000_000), rng),
        WebAttack => attacks::web_attack(
            env,
            env.device(0),
            start,
            (30.0 * intensity) as usize + 6,
            400_000,
            rng,
        ),
        Infiltration => attacks::infiltration(
            env,
            1,
            start,
            (200_000.0 * intensity) as usize + 50_000,
            rng,
        ),
        ArpMitm => attacks::arp_mitm(env, MacAddr::from_id(0xA77AC), 0, start, dur, rng),
        WifiDeauth | WifiEvilTwin | WifiKrack => {
            unreachable!("wifi attacks are generated by build_wifi")
        }
    }
}

fn build_wifi(spec: DatasetSpec, scale: SynthScale, rng: &mut Rng) -> LabeledCapture {
    let dur = scale.dur_us();
    let t0 = 1_000_000u64;
    let ap = MacAddr::from_id(0xAA01);
    let rogue = MacAddr::from_id(0xEE99);
    let stations: Vec<MacAddr> = (0..scale.benign_density.max(3))
        .map(|i| MacAddr::from_id(0x5710 + i as u64))
        .collect();

    let mut stream = attacks::wifi_benign(ap, &stations, t0, dur, rng);
    let atk_start = t0 + dur / 3;
    let atk_dur = dur - dur / 3;
    for kind in &spec.attacks {
        match kind {
            AttackKind::WifiDeauth => stream.extend(attacks::wifi_deauth(
                ap,
                &stations,
                atk_start,
                atk_dur,
                120.0 * scale.intensity,
                rng,
            )),
            AttackKind::WifiEvilTwin => stream.extend(attacks::wifi_eviltwin(
                rogue, &stations, atk_start, atk_dur, rng,
            )),
            AttackKind::WifiKrack => stream.extend(attacks::wifi_krack(
                ap,
                stations[0],
                atk_start,
                atk_dur,
                rng,
            )),
            other => {
                debug_assert!(false, "non-wifi attack {other:?} in wifi recipe");
            }
        }
    }
    LabeledCapture::from_streams(spec.link, spec.granularity, stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_builds_nonempty() {
        for id in DatasetId::ALL {
            let cap = build_dataset(id, SynthScale::small(), 42);
            assert!(!cap.is_empty(), "{} empty", id.code());
            assert!(
                cap.malicious_fraction() > 0.0,
                "{} has no attack packets",
                id.code()
            );
            assert!(
                cap.malicious_fraction() < 0.99,
                "{} has no benign packets",
                id.code()
            );
        }
    }

    #[test]
    fn attacks_present_match_spec() {
        for id in [DatasetId::F1, DatasetId::F4, DatasetId::P0, DatasetId::P3] {
            let cap = build_dataset(id, SynthScale::small(), 7);
            let present = cap.attacks_present();
            for kind in id.spec().attacks {
                assert!(
                    present.contains(&kind),
                    "{}: missing {kind:?}, present {present:?}",
                    id.code()
                );
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = build_dataset(DatasetId::F0, SynthScale::small(), 5);
        let b = build_dataset(DatasetId::F0, SynthScale::small(), 5);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.packets[10].data, b.packets[10].data);
        let c = build_dataset(DatasetId::F0, SynthScale::small(), 6);
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn device_override_zero_is_the_recipe_default() {
        // F4 is CTU-sourced with a historical roster of 4 devices: asking
        // for exactly 4 must reproduce the devices=0 capture bit-for-bit.
        let base = build_dataset(DatasetId::F4, SynthScale::small(), 21);
        let same = build_dataset(
            DatasetId::F4,
            SynthScale {
                devices: 4,
                ..SynthScale::small()
            },
            21,
        );
        assert_eq!(base.len(), same.len());
        for (a, b) in base.packets.iter().zip(&same.packets) {
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn device_override_scales_past_the_home_slash24() {
        let cap = build_dataset(
            DatasetId::F4,
            SynthScale {
                devices: 300,
                ..SynthScale::small()
            },
            21,
        );
        assert!(!cap.is_empty());
    }

    #[test]
    fn wifi_dataset_has_no_ethernet_frames() {
        let cap = build_dataset(DatasetId::P3, SynthScale::small(), 3);
        assert_eq!(cap.link, LinkType::Ieee80211);
        for p in cap.packets.iter().take(200) {
            lumen_net::PacketMeta::parse(LinkType::Ieee80211, p.ts_us, &p.data)
                .expect("wifi frame parses");
        }
    }

    #[test]
    fn packets_sorted_by_time() {
        let cap = build_dataset(DatasetId::F3, SynthScale::small(), 9);
        assert!(cap.packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn granularities_match_table() {
        for id in DatasetId::CONNECTION {
            assert_eq!(id.spec().granularity, LabelGranularity::Connection);
        }
        for id in DatasetId::PACKET {
            assert_eq!(id.spec().granularity, LabelGranularity::Packet);
        }
    }

    #[test]
    fn pcap_roundtrip_preserves_packets() {
        let cap = build_dataset(DatasetId::F4, SynthScale::small(), 11);
        let bytes = cap.to_pcap_bytes();
        let (link, packets) = lumen_net::pcap::from_bytes(&bytes).unwrap();
        assert_eq!(link, cap.link);
        assert_eq!(packets.len(), cap.len());
        assert_eq!(packets[0], cap.packets[0]);
    }
}
