//! Mid-capture scenario engine: concept drift, evasive attacks, and an
//! encrypted regime, each with machine-readable ground truth.
//!
//! The static recipes in [`crate::recipes`] are stationary: the traffic
//! distribution a model trains on is the distribution it is scored on. Real
//! deployments are not — firmware updates shift feature distributions,
//! device rosters churn, attackers throttle themselves under detection
//! thresholds, and TLS adoption zeroes payload-derived features overnight.
//! This module composes the existing generators into captures that *mutate
//! mid-stream* at seeded breakpoints, and emits a [`ScenarioReport`] naming
//! every breakpoint so drift detectors can be scored on detection latency
//! against exact ground truth rather than eyeballed onset times.
//!
//! The same `(id, scale, seed)` triple always produces the identical capture
//! and report, mirroring [`crate::recipes::build_dataset`].

use lumen_net::builder::{self, TcpParams, UdpParams};
use lumen_net::meta::Ipv4Meta;
use lumen_net::wire::tcp::TcpFlags;
use lumen_net::{CapturedPacket, LinkType, PacketMeta, TransportMeta};
use lumen_util::Rng;

use crate::devices;
use crate::network::{Endpoint, NetworkEnv};
use crate::session::{tcp_conversation, Exchange, TcpConv, Teardown};
use crate::{attacks, AttackKind, Label, LabelGranularity, LabeledCapture, LabeledPacket};

/// Identifier of one drift/adversarial scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScenarioId {
    /// Concept drift: a firmware rollout adds bulk-download and streaming
    /// behaviour to a previously chatty-but-small device population.
    FirmwareShift,
    /// Concept drift: diurnal rate cycles — benign density steps up and down
    /// at segment boundaries, shifting rate-derived features.
    DiurnalCycle,
    /// Concept drift: the device roster churns mid-capture; sensors go
    /// offline and a different device mix (TVs, cameras, assistants) with
    /// different addresses and timing comes online.
    DeviceChurn,
    /// Evasion: a low-and-slow port scan paced far below flood thresholds.
    LowSlowScan,
    /// Evasion: C2 beaconing disguised as a benign HTTP poller — identical
    /// byte patterns to benign traffic, malicious ground truth.
    MimicryC2,
    /// Evasion: rate-limited exfiltration — small uploads spread over the
    /// whole tail of the capture.
    SlowExfil,
    /// Regime change: every post-breakpoint TCP/UDP payload is rebuilt empty
    /// (wholesale encryption adoption), zeroing payload-derived features.
    EncryptedRegime,
}

impl ScenarioId {
    /// Every scenario, in display order.
    pub const ALL: [ScenarioId; 7] = [
        ScenarioId::FirmwareShift,
        ScenarioId::DiurnalCycle,
        ScenarioId::DeviceChurn,
        ScenarioId::LowSlowScan,
        ScenarioId::MimicryC2,
        ScenarioId::SlowExfil,
        ScenarioId::EncryptedRegime,
    ];

    /// Short identifier ("S0".."S6"), following the dataset code convention.
    pub fn code(self) -> &'static str {
        match self {
            ScenarioId::FirmwareShift => "S0",
            ScenarioId::DiurnalCycle => "S1",
            ScenarioId::DeviceChurn => "S2",
            ScenarioId::LowSlowScan => "S3",
            ScenarioId::MimicryC2 => "S4",
            ScenarioId::SlowExfil => "S5",
            ScenarioId::EncryptedRegime => "S6",
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioId::FirmwareShift => "firmware-shift",
            ScenarioId::DiurnalCycle => "diurnal-cycle",
            ScenarioId::DeviceChurn => "device-churn",
            ScenarioId::LowSlowScan => "low-slow-scan",
            ScenarioId::MimicryC2 => "mimicry-c2",
            ScenarioId::SlowExfil => "slow-exfil",
            ScenarioId::EncryptedRegime => "encrypted-regime",
        }
    }

    /// Which family of non-stationarity this scenario exercises.
    pub fn family(self) -> ScenarioFamily {
        match self {
            ScenarioId::FirmwareShift | ScenarioId::DiurnalCycle | ScenarioId::DeviceChurn => {
                ScenarioFamily::Drift
            }
            ScenarioId::LowSlowScan | ScenarioId::MimicryC2 | ScenarioId::SlowExfil => {
                ScenarioFamily::Evasion
            }
            ScenarioId::EncryptedRegime => ScenarioFamily::Encryption,
        }
    }

    /// Parses a scenario from its code ("S2") or name ("device-churn").
    pub fn parse(s: &str) -> Option<ScenarioId> {
        ScenarioId::ALL
            .into_iter()
            .find(|id| id.code().eq_ignore_ascii_case(s) || id.name().eq_ignore_ascii_case(s))
    }
}

/// Coarse scenario family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioFamily {
    /// Benign distribution shifts; the attack mix stays constant.
    Drift,
    /// Attacks crafted to hide inside the benign distribution.
    Evasion,
    /// Feature channels disappear wholesale (encryption adoption).
    Encryption,
}

impl ScenarioFamily {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioFamily::Drift => "drift",
            ScenarioFamily::Evasion => "evasion",
            ScenarioFamily::Encryption => "encryption",
        }
    }
}

/// What changed at a breakpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakpointKind {
    /// Benign feature distributions shifted (payload sizes, protocols).
    FeatureShift,
    /// Benign traffic rate stepped up or down.
    RateCycle,
    /// The device roster changed.
    DeviceChurn,
    /// An evasive attack began.
    EvasionOnset,
    /// A capture-wide regime change (e.g. encryption adoption).
    RegimeChange,
}

impl BreakpointKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            BreakpointKind::FeatureShift => "feature-shift",
            BreakpointKind::RateCycle => "rate-cycle",
            BreakpointKind::DeviceChurn => "device-churn",
            BreakpointKind::EvasionOnset => "evasion-onset",
            BreakpointKind::RegimeChange => "regime-change",
        }
    }
}

/// One ground-truth distribution breakpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breakpoint {
    /// Capture timestamp (µs) at which the new regime begins.
    pub ts_us: u64,
    /// What changed.
    pub kind: BreakpointKind,
}

/// Machine-readable ground truth for one scenario build: what mutated, when,
/// and how many packets belong to the mutated regime. Drift detectors are
/// scored against this, never against eyeballed onsets.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Which scenario.
    pub id: ScenarioId,
    /// Seed the capture was built from.
    pub seed: u64,
    /// Breakpoints in time order.
    pub breakpoints: Vec<Breakpoint>,
    /// Packets in the capture.
    pub total_packets: usize,
    /// Packets belonging to the mutated regime (phase-2 generators, evasive
    /// flows, or rewritten frames).
    pub affected_packets: usize,
    /// Malicious packets (ground truth).
    pub malicious_packets: usize,
}

/// Builds one scenario capture plus its ground-truth report. The same
/// `(id, scale, seed)` triple always produces the identical pair.
pub fn build_scenario(
    id: ScenarioId,
    scale: crate::SynthScale,
    seed: u64,
) -> (LabeledCapture, ScenarioReport) {
    // Offset the id mix so scenario S0 and dataset F0 never share a stream
    // even under the same user seed.
    let mut rng = Rng::new(seed ^ (id as u64 + 0x5C).wrapping_mul(0x9E37_79B9));
    let dur = (scale.duration_s * 1e6) as u64;
    let t0 = 1_000_000u64;
    let ctx = ScenarioCtx {
        t0,
        dur,
        end: t0 + dur,
        density: scale.benign_density,
        intensity: scale.intensity,
    };

    let (stream, affected, breakpoints) = match id {
        ScenarioId::FirmwareShift => firmware_shift(&ctx, &mut rng),
        ScenarioId::DiurnalCycle => diurnal_cycle(&ctx, &mut rng),
        ScenarioId::DeviceChurn => device_churn(&ctx, &mut rng),
        ScenarioId::LowSlowScan => low_slow_scan(&ctx, &mut rng),
        ScenarioId::MimicryC2 => mimicry_c2(&ctx, &mut rng),
        ScenarioId::SlowExfil => slow_exfil(&ctx, &mut rng),
        ScenarioId::EncryptedRegime => encrypted_regime(&ctx, &mut rng),
    };

    let cap = LabeledCapture::from_streams(LinkType::Ethernet, LabelGranularity::Connection, stream);
    let report = ScenarioReport {
        id,
        seed,
        breakpoints,
        total_packets: cap.len(),
        affected_packets: affected,
        malicious_packets: cap.labels.iter().filter(|l| l.malicious).count(),
    };
    (cap, report)
}

struct ScenarioCtx {
    t0: u64,
    dur: u64,
    end: u64,
    density: usize,
    intensity: f64,
}

impl ScenarioCtx {
    /// The primary breakpoint: 45% into the capture, past the serve
    /// pipeline's training prefix and the drift monitor's warmup.
    fn breakpoint(&self) -> u64 {
        self.t0 + self.dur * 45 / 100
    }

    fn env(&self, subnet: [u8; 3], devices: usize, cloud: usize, rng: &mut Rng) -> NetworkEnv {
        NetworkEnv::new(subnet, devices, cloud, &mut rng.fork(1))
    }
}

type Phase = (Vec<LabeledPacket>, usize, Vec<Breakpoint>);

/// S0: benign mix throughout; at the breakpoint a firmware rollout adds
/// bulk downloads and camera streaming to the same device population. A
/// steady low-rate SYN flood spans both phases so detection accuracy is
/// measurable before, during, and after the shift.
fn firmware_shift(ctx: &ScenarioCtx, rng: &mut Rng) -> Phase {
    let env = ctx.env([10, 44, 0], 10, 4, rng);
    let bp = ctx.breakpoint();
    let mut stream = devices::benign_mix(&env, ctx.t0, ctx.dur, ctx.density, &mut rng.fork(2));

    let atk_start = ctx.t0 + ctx.dur / 6;
    stream.extend(attacks::syn_flood(
        &env,
        env.device(0),
        80,
        atk_start,
        ctx.end - atk_start,
        120.0 * ctx.intensity,
        &mut rng.fork(3),
    ));

    // Phase 2: the rollout. Staggered bulk downloads plus a camera that was
    // previously idle — payload sizes and per-flow byte counts jump.
    let mut shift_rng = rng.fork(4);
    let mut affected = Vec::new();
    let mut t = bp;
    let gap = (ctx.end - bp) / 6;
    let mut dev = 1usize;
    while t < ctx.end {
        affected.extend(devices::firmware_download(
            &env,
            dev % env.devices.len(),
            dev % 4,
            t,
            (180_000.0 * ctx.intensity) as usize + 60_000,
            &mut shift_rng,
        ));
        dev += 1;
        t += gap.max(1);
    }
    affected.extend(devices::camera_stream(
        &env,
        2,
        1,
        bp,
        ctx.end - bp,
        &mut shift_rng,
    ));

    let n_affected = affected.len();
    stream.extend(affected);
    (
        stream,
        n_affected,
        vec![Breakpoint {
            ts_us: bp,
            kind: BreakpointKind::FeatureShift,
        }],
    )
}

/// S1: benign density alternates low/high/low/high across four segments;
/// each boundary is a rate-cycle breakpoint. A steady UDP flood spans the
/// middle of the capture.
fn diurnal_cycle(ctx: &ScenarioCtx, rng: &mut Rng) -> Phase {
    let env = ctx.env([10, 45, 0], 10, 4, rng);
    let seg = ctx.dur / 4;
    let mut stream = Vec::new();
    let mut affected = 0usize;
    let mut breakpoints = Vec::new();
    for i in 0..4u64 {
        let start = ctx.t0 + i * seg;
        let density = if i % 2 == 0 {
            ctx.density.max(2)
        } else {
            ctx.density.max(2) * 3
        };
        let packets = devices::benign_mix(&env, start, seg, density, &mut rng.fork(10 + i));
        if i > 0 {
            affected += packets.len();
            breakpoints.push(Breakpoint {
                ts_us: start,
                kind: BreakpointKind::RateCycle,
            });
        }
        stream.extend(packets);
    }

    let atk_start = ctx.t0 + ctx.dur / 5;
    stream.extend(attacks::udp_flood(
        &env,
        env.device(1),
        atk_start,
        ctx.dur * 3 / 5,
        90.0 * ctx.intensity,
        &mut rng.fork(3),
    ));
    (stream, affected, breakpoints)
}

/// S2: the sensor roster (MQTT, DNS, NTP, HTTP pollers) goes offline at the
/// breakpoint and a different device mix (TVs, assistants, cameras) with
/// different addresses comes online. A telnet brute force spans both phases.
fn device_churn(ctx: &ScenarioCtx, rng: &mut Rng) -> Phase {
    let env = ctx.env([10, 46, 0], 12, 4, rng);
    let bp = ctx.breakpoint();
    let mut p1 = rng.fork(2);
    let mut stream = Vec::new();
    let pre = bp - ctx.t0;
    for d in 0..4 {
        stream.extend(devices::mqtt_sensor(
            &env,
            d,
            d % 4,
            ctx.t0,
            pre,
            2_000_000,
            &mut p1,
        ));
    }
    stream.extend(devices::dns_chatter(&env, 0, ctx.t0, pre, 3_000_000, &mut p1));
    stream.extend(devices::ntp_sync(&env, 1, 1, ctx.t0, pre, &mut p1));
    stream.extend(devices::http_poller(
        &env, 2, 2, ctx.t0, pre, 1_500_000, &mut p1,
    ));

    // Phase 2: a different roster — different IPs, protocols, and timing.
    let mut p2 = rng.fork(4);
    let post = ctx.end - bp;
    let mut affected = Vec::new();
    affected.extend(devices::smart_tv(&env, 6, 0, bp, post, &mut p2));
    affected.extend(devices::voice_assistant(&env, 7, 1, bp, post, &mut p2));
    affected.extend(devices::camera_stream(&env, 8, 2, bp, post, &mut p2));
    affected.extend(devices::camera_stream(&env, 9, 3, bp, post, &mut p2));
    affected.extend(devices::connectivity_check(&env, 10, bp, 6, &mut p2));

    let mut atk_rng = rng.fork(3);
    let ext = env.external(&mut atk_rng);
    let attacker = Endpoint {
        mac: env.gateway.mac,
        ip: ext.ip,
    };
    let attempts = ((ctx.dur / 300_000) as usize).max(8);
    stream.extend(attacks::brute_force(
        &env,
        AttackKind::BruteForceTelnet,
        attacker,
        env.device(0),
        ctx.t0 + ctx.dur / 8,
        attempts,
        300_000,
        &mut atk_rng,
    ));

    let n_affected = affected.len();
    stream.extend(affected);
    (
        stream,
        n_affected,
        vec![Breakpoint {
            ts_us: bp,
            kind: BreakpointKind::DeviceChurn,
        }],
    )
}

/// S3: a port scan paced at roughly two probes per second — far below the
/// flood-style scan in [`attacks::port_scan`] — sweeping device ports from
/// a quiet local address. Closed ports answer RST.
fn low_slow_scan(ctx: &ScenarioCtx, rng: &mut Rng) -> Phase {
    let env = ctx.env([10, 47, 0], 10, 4, rng);
    let bp = ctx.breakpoint();
    let mut stream = devices::benign_mix(&env, ctx.t0, ctx.dur, ctx.density, &mut rng.fork(2));

    let label = Label::attack(AttackKind::PortScan);
    let scanner = Endpoint::new(std::net::Ipv4Addr::new(10, 47, 0, 251));
    let mut scan_rng = rng.fork(3);
    let mut affected = Vec::new();
    let mut t = bp;
    let mut probe = 0u32;
    const PORTS: [u16; 6] = [22, 23, 80, 443, 1883, 8080];
    while t < ctx.end {
        let target = env.device(probe as usize % env.devices.len());
        let port = PORTS[probe as usize % PORTS.len()];
        let sport = env.ephemeral_port(&mut scan_rng);
        let seq = scan_rng.next_u64() as u32;
        affected.push(LabeledPacket {
            packet: CapturedPacket::new(
                t,
                builder::tcp_packet(TcpParams {
                    src_mac: scanner.mac,
                    dst_mac: target.mac,
                    src_ip: scanner.ip,
                    dst_ip: target.ip,
                    src_port: sport,
                    dst_port: port,
                    seq,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    window: 1024,
                    ttl: 64,
                    payload: &[],
                }),
            ),
            label,
        });
        // Closed port: RST/ACK straight back.
        affected.push(LabeledPacket {
            packet: CapturedPacket::new(
                t + 400 + scan_rng.below(300),
                builder::tcp_packet(TcpParams {
                    src_mac: target.mac,
                    dst_mac: scanner.mac,
                    src_ip: target.ip,
                    dst_ip: scanner.ip,
                    src_port: port,
                    dst_port: sport,
                    seq: 0,
                    ack: seq.wrapping_add(1),
                    flags: TcpFlags::RST,
                    window: 0,
                    ttl: 64,
                    payload: &[],
                }),
            ),
            label,
        });
        // ~2 probes/s with exponential jitter: low and slow by design.
        t += 300_000 + (scan_rng.exponential(1.0 / 200_000.0)) as u64;
        probe += 1;
    }

    let n_affected = affected.len();
    stream.extend(affected);
    (
        stream,
        n_affected,
        vec![Breakpoint {
            ts_us: bp,
            kind: BreakpointKind::EvasionOnset,
        }],
    )
}

/// S4: C2 beaconing that reuses the *benign* HTTP poller generator verbatim
/// — byte-identical to legitimate polling, relabeled malicious. The hardest
/// case for payload- and rate-based detectors alike.
fn mimicry_c2(ctx: &ScenarioCtx, rng: &mut Rng) -> Phase {
    let env = ctx.env([10, 48, 0], 10, 4, rng);
    let bp = ctx.breakpoint();
    let mut stream = devices::benign_mix(&env, ctx.t0, ctx.dur, ctx.density, &mut rng.fork(2));

    let mut c2 = devices::http_poller(&env, 3, 1, bp, ctx.end - bp, 1_200_000, &mut rng.fork(3));
    for lp in &mut c2 {
        lp.label = Label::attack(AttackKind::BotnetTorii);
    }

    // A visible attack alongside the mimicry keeps both classes present in
    // every phase for accuracy bookkeeping.
    let atk_start = ctx.t0 + ctx.dur / 6;
    stream.extend(attacks::syn_flood(
        &env,
        env.device(0),
        80,
        atk_start,
        ctx.end - atk_start,
        100.0 * ctx.intensity,
        &mut rng.fork(4),
    ));

    let n_affected = c2.len();
    stream.extend(c2);
    (
        stream,
        n_affected,
        vec![Breakpoint {
            ts_us: bp,
            kind: BreakpointKind::EvasionOnset,
        }],
    )
}

/// S5: rate-limited exfiltration — one long-lived connection trickling
/// small uploads every ~700 ms to an external drop, under flood thresholds.
fn slow_exfil(ctx: &ScenarioCtx, rng: &mut Rng) -> Phase {
    let env = ctx.env([10, 49, 0], 10, 4, rng);
    let bp = ctx.breakpoint();
    let mut stream = devices::benign_mix(&env, ctx.t0, ctx.dur, ctx.density, &mut rng.fork(2));

    let mut exfil_rng = rng.fork(3);
    let compromised = env.device(2);
    let drop = env.external(&mut exfil_rng);
    let mut exchanges = Vec::new();
    let mut elapsed = 0u64;
    while elapsed < ctx.end - bp {
        let chunk = exfil_rng.range(500, 1300);
        let bytes: Vec<u8> = (0..chunk).map(|_| exfil_rng.next_u64() as u8).collect();
        let gap = 500_000 + exfil_rng.below(400_000);
        exchanges.push(Exchange::c2s(bytes, gap));
        exchanges.push(Exchange::s2c(b"ok".to_vec(), 8_000));
        elapsed += gap;
    }
    let client_port = env.ephemeral_port(&mut exfil_rng);
    let (exfil, _) = tcp_conversation(
        TcpConv {
            start_us: bp,
            client: compromised,
            server: drop,
            client_port,
            server_port: 443,
            client_ttl: 64,
            server_ttl: 52,
            exchanges: &exchanges,
            teardown: Teardown::None,
            rtt_us: 40_000,
            label: Label::attack(AttackKind::Infiltration),
        },
        &mut exfil_rng,
    );

    let atk_start = ctx.t0 + ctx.dur / 6;
    stream.extend(attacks::udp_flood(
        &env,
        env.device(1),
        atk_start,
        ctx.end - atk_start,
        80.0 * ctx.intensity,
        &mut rng.fork(4),
    ));

    let n_affected = exfil.len();
    stream.extend(exfil);
    (
        stream,
        n_affected,
        vec![Breakpoint {
            ts_us: bp,
            kind: BreakpointKind::EvasionOnset,
        }],
    )
}

/// S6: the network adopts encryption overnight — every post-breakpoint
/// TCP/UDP frame is rebuilt with an empty payload (headers preserved), so
/// payload-derived features vanish while flow structure survives.
fn encrypted_regime(ctx: &ScenarioCtx, rng: &mut Rng) -> Phase {
    let env = ctx.env([10, 50, 0], 10, 4, rng);
    let bp = ctx.breakpoint();
    let mut stream = devices::benign_mix(&env, ctx.t0, ctx.dur, ctx.density, &mut rng.fork(2));

    let atk_start = ctx.t0 + ctx.dur / 6;
    stream.extend(attacks::web_attack(
        &env,
        env.device(0),
        atk_start,
        ((30.0 * ctx.intensity) as usize + 8).max(8),
        400_000,
        &mut rng.fork(3),
    ));
    // DNS keeps humming in both regimes (rebuilt empty after bp like
    // everything else) so the capture has UDP on both sides.
    stream.extend(devices::dns_chatter(
        &env,
        1,
        ctx.t0,
        ctx.dur,
        2_500_000,
        &mut rng.fork(4),
    ));

    let mut affected = 0usize;
    for lp in &mut stream {
        if lp.packet.ts_us < bp {
            continue;
        }
        if let Some(rebuilt) = strip_payload(&lp.packet) {
            lp.packet = rebuilt;
            affected += 1;
        }
    }
    (
        stream,
        affected,
        vec![Breakpoint {
            ts_us: bp,
            kind: BreakpointKind::RegimeChange,
        }],
    )
}

/// Rebuilds a TCP/UDP frame with an empty payload, preserving addresses,
/// ports, sequence state, flags, and TTL. Returns `None` for frames that
/// carry no payload (nothing to strip) or are not TCP/UDP over IPv4.
fn strip_payload(packet: &CapturedPacket) -> Option<CapturedPacket> {
    let meta = PacketMeta::parse(LinkType::Ethernet, packet.ts_us, &packet.data).ok()?;
    let Ipv4Meta { src, dst, ttl, .. } = meta.ipv4?;
    match meta.transport {
        TransportMeta::Tcp {
            src_port,
            dst_port,
            seq,
            ack,
            flags,
            window,
            payload_len,
            ..
        } => {
            if payload_len == 0 {
                return None;
            }
            Some(CapturedPacket::new(
                packet.ts_us,
                builder::tcp_packet(TcpParams {
                    src_mac: meta.src_mac,
                    dst_mac: meta.dst_mac,
                    src_ip: src,
                    dst_ip: dst,
                    src_port,
                    dst_port,
                    seq,
                    ack,
                    flags,
                    window,
                    ttl,
                    payload: &[],
                }),
            ))
        }
        TransportMeta::Udp {
            src_port,
            dst_port,
            payload_len,
            ..
        } => {
            if payload_len == 0 {
                return None;
            }
            Some(CapturedPacket::new(
                packet.ts_us,
                builder::udp_packet(UdpParams {
                    src_mac: meta.src_mac,
                    dst_mac: meta.dst_mac,
                    src_ip: src,
                    dst_ip: dst,
                    src_port,
                    dst_port,
                    ttl,
                    payload: &[],
                }),
            ))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SynthScale;

    fn small() -> SynthScale {
        SynthScale::small()
    }

    #[test]
    fn every_scenario_builds_nonempty_with_ground_truth() {
        for id in ScenarioId::ALL {
            let (cap, report) = build_scenario(id, small(), 42);
            assert!(!cap.is_empty(), "{} empty", id.code());
            assert!(
                !report.breakpoints.is_empty(),
                "{} has no breakpoints",
                id.code()
            );
            assert_eq!(report.total_packets, cap.len());
            assert!(report.affected_packets > 0, "{} affected=0", id.code());
            assert!(
                report.malicious_packets > 0,
                "{} has no malicious packets",
                id.code()
            );
            assert!(
                report.malicious_packets < cap.len(),
                "{} has no benign packets",
                id.code()
            );
            let t0 = 1_000_000u64;
            let end = t0 + (small().duration_s * 1e6) as u64;
            for bp in &report.breakpoints {
                assert!(
                    bp.ts_us > t0 && bp.ts_us < end,
                    "{} breakpoint {} outside capture",
                    id.code(),
                    bp.ts_us
                );
            }
            assert!(
                report
                    .breakpoints
                    .windows(2)
                    .all(|w| w[0].ts_us < w[1].ts_us),
                "{} breakpoints unordered",
                id.code()
            );
            assert!(cap.packets.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let (a, ra) = build_scenario(ScenarioId::DeviceChurn, small(), 7);
        let (b, rb) = build_scenario(ScenarioId::DeviceChurn, small(), 7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.packets[20].data, b.packets[20].data);
        assert_eq!(ra.breakpoints, rb.breakpoints);
        let (c, _) = build_scenario(ScenarioId::DeviceChurn, small(), 8);
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn encrypted_regime_zeroes_post_breakpoint_payloads() {
        let (cap, report) = build_scenario(ScenarioId::EncryptedRegime, small(), 11);
        let bp = report.breakpoints[0].ts_us;
        let mut checked = 0;
        for p in &cap.packets {
            if p.ts_us < bp {
                continue;
            }
            let Ok(meta) = PacketMeta::parse(LinkType::Ethernet, p.ts_us, &p.data) else {
                continue;
            };
            match meta.transport {
                TransportMeta::Tcp { payload_len, .. } | TransportMeta::Udp { payload_len, .. } => {
                    assert_eq!(payload_len, 0, "payload survived at ts {}", p.ts_us);
                    checked += 1;
                }
                _ => {}
            }
        }
        assert!(checked > 50, "too few post-breakpoint frames ({checked})");
        // And pre-breakpoint payloads are untouched.
        let pre_payload = cap.packets.iter().any(|p| {
            p.ts_us < bp
                && PacketMeta::parse(LinkType::Ethernet, p.ts_us, &p.data)
                    .map(|m| m.transport.payload_len() > 0)
                    .unwrap_or(false)
        });
        assert!(pre_payload, "no pre-breakpoint payloads found");
    }

    #[test]
    fn mimicry_c2_relabels_benign_bytes_as_torii() {
        let (cap, report) = build_scenario(ScenarioId::MimicryC2, small(), 13);
        let bp = report.breakpoints[0].ts_us;
        let torii: Vec<u64> = cap
            .packets
            .iter()
            .zip(&cap.labels)
            .filter(|(_, l)| l.attack == Some(AttackKind::BotnetTorii))
            .map(|(p, _)| p.ts_us)
            .collect();
        assert!(!torii.is_empty(), "no mimicry packets");
        assert!(
            torii.iter().all(|&ts| ts >= bp),
            "mimicry traffic before its onset breakpoint"
        );
    }

    #[test]
    fn low_slow_scan_is_actually_slow() {
        let (cap, _) = build_scenario(ScenarioId::LowSlowScan, small(), 17);
        let mut syn_ts: Vec<u64> = Vec::new();
        for (p, l) in cap.packets.iter().zip(&cap.labels) {
            if l.attack != Some(AttackKind::PortScan) {
                continue;
            }
            let Ok(meta) = PacketMeta::parse(LinkType::Ethernet, p.ts_us, &p.data) else {
                continue;
            };
            if meta.transport.tcp_flags().map(|f| f.syn()) == Some(true) {
                syn_ts.push(p.ts_us);
            }
        }
        assert!(syn_ts.len() > 5, "too few probes ({})", syn_ts.len());
        // Probes are spaced at least 250 ms apart — nothing flood-like.
        assert!(
            syn_ts.windows(2).all(|w| w[1] - w[0] >= 250_000),
            "probe spacing below low-and-slow floor"
        );
    }

    #[test]
    fn codes_and_names_parse_back() {
        for id in ScenarioId::ALL {
            assert_eq!(ScenarioId::parse(id.code()), Some(id));
            assert_eq!(ScenarioId::parse(id.name()), Some(id));
        }
        assert_eq!(ScenarioId::parse("no-such"), None);
        assert_eq!(ScenarioId::parse("DEVICE-CHURN"), Some(ScenarioId::DeviceChurn));
    }

    #[test]
    fn diurnal_cycle_has_multiple_breakpoints() {
        let (_, report) = build_scenario(ScenarioId::DiurnalCycle, small(), 19);
        assert_eq!(report.breakpoints.len(), 3);
        assert!(report
            .breakpoints
            .iter()
            .all(|b| b.kind == BreakpointKind::RateCycle));
    }

    #[test]
    fn scenario_families_cover_all_three() {
        use std::collections::HashSet;
        let fams: HashSet<&str> = ScenarioId::ALL.iter().map(|s| s.family().name()).collect();
        assert_eq!(fams.len(), 3);
    }
}
