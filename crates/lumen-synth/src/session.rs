//! TCP/UDP conversation builders with sequence-number and timing realism.

use lumen_net::builder::{tcp_packet, udp_packet, TcpParams, UdpParams};
use lumen_net::wire::tcp::TcpFlags;
use lumen_net::CapturedPacket;
use lumen_util::Rng;

use crate::network::Endpoint;
use crate::{Label, LabeledPacket};

/// One application-layer exchange within a TCP conversation.
#[derive(Debug, Clone)]
pub struct Exchange {
    /// True when the client sends this payload.
    pub from_client: bool,
    /// Application bytes.
    pub payload: Vec<u8>,
    /// Gap before this exchange (µs).
    pub gap_us: u64,
}

impl Exchange {
    /// Client-to-server exchange.
    pub fn c2s(payload: Vec<u8>, gap_us: u64) -> Exchange {
        Exchange {
            from_client: true,
            payload,
            gap_us,
        }
    }

    /// Server-to-client exchange.
    pub fn s2c(payload: Vec<u8>, gap_us: u64) -> Exchange {
        Exchange {
            from_client: false,
            payload,
            gap_us,
        }
    }
}

/// How a TCP conversation ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Teardown {
    /// Graceful FIN/FIN-ACK/ACK.
    Fin,
    /// Client aborts with RST.
    ClientRst,
    /// Server rejects/aborts with RST.
    ServerRst,
    /// Capture ends mid-connection.
    None,
}

/// Parameters for [`tcp_conversation`].
pub struct TcpConv<'a> {
    pub start_us: u64,
    pub client: Endpoint,
    pub server: Endpoint,
    pub client_port: u16,
    pub server_port: u16,
    pub client_ttl: u8,
    pub server_ttl: u8,
    pub exchanges: &'a [Exchange],
    pub teardown: Teardown,
    /// Base round-trip time (µs); ACK delays and handshake pacing derive
    /// from it with jitter.
    pub rtt_us: u64,
    pub label: Label,
}

/// Builds a full TCP conversation: handshake, data exchanges with ACKs,
/// and teardown. Payloads longer than the MSS are segmented. Returns the
/// labeled packets in time order and the end timestamp.
pub fn tcp_conversation(p: TcpConv<'_>, rng: &mut Rng) -> (Vec<LabeledPacket>, u64) {
    const MSS: usize = 1400;
    let mut out = Vec::new();
    let mut t = p.start_us;
    let mut client_seq: u32 = rng.next_u64() as u32;
    let mut server_seq: u32 = rng.next_u64() as u32;
    let half_rtt = (p.rtt_us / 2).max(1);
    let jitter = |rng: &mut Rng, base: u64| -> u64 {
        let j = 0.7 + 0.6 * rng.f64();
        ((base as f64) * j) as u64 + 1
    };

    let push = |out: &mut Vec<LabeledPacket>,
                ts: u64,
                from_client: bool,
                flags: TcpFlags,
                seq: u32,
                ack: u32,
                payload: &[u8]| {
        let (src, dst, sp, dp, ttl) = if from_client {
            (
                p.client,
                p.server,
                p.client_port,
                p.server_port,
                p.client_ttl,
            )
        } else {
            (
                p.server,
                p.client,
                p.server_port,
                p.client_port,
                p.server_ttl,
            )
        };
        out.push(LabeledPacket {
            packet: CapturedPacket::new(
                ts,
                tcp_packet(TcpParams {
                    src_mac: src.mac,
                    dst_mac: dst.mac,
                    src_ip: src.ip,
                    dst_ip: dst.ip,
                    src_port: sp,
                    dst_port: dp,
                    seq,
                    ack,
                    flags,
                    window: 29200,
                    ttl,
                    payload,
                }),
            ),
            label: p.label,
        });
    };

    // Handshake.
    push(&mut out, t, true, TcpFlags::SYN, client_seq, 0, b"");
    client_seq = client_seq.wrapping_add(1);
    t += jitter(rng, half_rtt);
    push(
        &mut out,
        t,
        false,
        TcpFlags::SYN_ACK,
        server_seq,
        client_seq,
        b"",
    );
    server_seq = server_seq.wrapping_add(1);
    t += jitter(rng, half_rtt);
    push(
        &mut out,
        t,
        true,
        TcpFlags::ACK,
        client_seq,
        server_seq,
        b"",
    );

    // Data exchanges.
    for ex in p.exchanges {
        t += ex.gap_us.max(1);
        for chunk in ex.payload.chunks(MSS.max(1)) {
            if ex.from_client {
                push(
                    &mut out,
                    t,
                    true,
                    TcpFlags::PSH_ACK,
                    client_seq,
                    server_seq,
                    chunk,
                );
                client_seq = client_seq.wrapping_add(chunk.len() as u32);
                t += jitter(rng, half_rtt);
                push(
                    &mut out,
                    t,
                    false,
                    TcpFlags::ACK,
                    server_seq,
                    client_seq,
                    b"",
                );
            } else {
                push(
                    &mut out,
                    t,
                    false,
                    TcpFlags::PSH_ACK,
                    server_seq,
                    client_seq,
                    chunk,
                );
                server_seq = server_seq.wrapping_add(chunk.len() as u32);
                t += jitter(rng, half_rtt);
                push(
                    &mut out,
                    t,
                    true,
                    TcpFlags::ACK,
                    client_seq,
                    server_seq,
                    b"",
                );
            }
            t += jitter(rng, half_rtt / 4);
        }
    }

    // Teardown.
    match p.teardown {
        Teardown::Fin => {
            t += jitter(rng, half_rtt);
            push(
                &mut out,
                t,
                true,
                TcpFlags::FIN_ACK,
                client_seq,
                server_seq,
                b"",
            );
            client_seq = client_seq.wrapping_add(1);
            t += jitter(rng, half_rtt);
            push(
                &mut out,
                t,
                false,
                TcpFlags::FIN_ACK,
                server_seq,
                client_seq,
                b"",
            );
            server_seq = server_seq.wrapping_add(1);
            t += jitter(rng, half_rtt);
            push(
                &mut out,
                t,
                true,
                TcpFlags::ACK,
                client_seq,
                server_seq,
                b"",
            );
        }
        Teardown::ClientRst => {
            t += jitter(rng, half_rtt);
            push(&mut out, t, true, TcpFlags::RST, client_seq, 0, b"");
        }
        Teardown::ServerRst => {
            t += jitter(rng, half_rtt);
            push(
                &mut out,
                t,
                false,
                TcpFlags::RST | TcpFlags::ACK,
                server_seq,
                client_seq,
                b"",
            );
        }
        Teardown::None => {}
    }

    (out, t)
}

/// A request/response UDP exchange (DNS, NTP, SSDP). `response` may be
/// `None` for one-way traffic (floods, spoofed requests).
#[allow(clippy::too_many_arguments)]
pub fn udp_exchange(
    start_us: u64,
    client: Endpoint,
    server: Endpoint,
    client_port: u16,
    server_port: u16,
    request: &[u8],
    response: Option<&[u8]>,
    rtt_us: u64,
    ttl: (u8, u8),
    label: Label,
    rng: &mut Rng,
) -> (Vec<LabeledPacket>, u64) {
    let mut out = Vec::new();
    let mut t = start_us;
    out.push(LabeledPacket {
        packet: CapturedPacket::new(
            t,
            udp_packet(UdpParams {
                src_mac: client.mac,
                dst_mac: server.mac,
                src_ip: client.ip,
                dst_ip: server.ip,
                src_port: client_port,
                dst_port: server_port,
                ttl: ttl.0,
                payload: request,
            }),
        ),
        label,
    });
    if let Some(resp) = response {
        t += (rtt_us as f64 * (0.8 + 0.4 * rng.f64())) as u64 + 1;
        out.push(LabeledPacket {
            packet: CapturedPacket::new(
                t,
                udp_packet(UdpParams {
                    src_mac: server.mac,
                    dst_mac: client.mac,
                    src_ip: server.ip,
                    dst_ip: client.ip,
                    src_port: server_port,
                    dst_port: client_port,
                    ttl: ttl.1,
                    payload: resp,
                }),
            ),
            label,
        });
    }
    (out, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumen_flow::{assemble, ConnState, FlowConfig};
    use lumen_net::{LinkType, PacketMeta};
    use std::net::Ipv4Addr;

    fn endpoints() -> (Endpoint, Endpoint) {
        (
            Endpoint::new(Ipv4Addr::new(192, 168, 1, 10)),
            Endpoint::new(Ipv4Addr::new(34, 1, 2, 3)),
        )
    }

    fn parse_all(pkts: &[LabeledPacket]) -> Vec<PacketMeta> {
        pkts.iter()
            .map(|lp| {
                PacketMeta::parse(LinkType::Ethernet, lp.packet.ts_us, &lp.packet.data).unwrap()
            })
            .collect()
    }

    #[test]
    fn conversation_assembles_to_sf_connection() {
        let (client, server) = endpoints();
        let mut rng = Rng::new(1);
        let (pkts, _) = tcp_conversation(
            TcpConv {
                start_us: 1_000_000,
                client,
                server,
                client_port: 44000,
                server_port: 443,
                client_ttl: 64,
                server_ttl: 52,
                exchanges: &[
                    Exchange::c2s(b"GET / HTTP/1.1\r\n\r\n".to_vec(), 2_000),
                    Exchange::s2c(vec![0xAB; 3000], 5_000),
                ],
                teardown: Teardown::Fin,
                rtt_us: 20_000,
                label: Label::BENIGN,
            },
            &mut rng,
        );
        let metas = parse_all(&pkts);
        let conns = assemble(&metas, FlowConfig::default());
        assert_eq!(conns.len(), 1);
        let c = &conns[0];
        assert_eq!(c.state, ConnState::SF);
        assert_eq!(c.orig, (client.ip, 44000));
        assert_eq!(c.orig_bytes, 18);
        assert_eq!(c.resp_bytes, 3000); // segmented into 1400+1400+200
        assert!(c.resp_pkts >= 4);
    }

    #[test]
    fn timestamps_strictly_increase() {
        let (client, server) = endpoints();
        let mut rng = Rng::new(2);
        let (pkts, end) = tcp_conversation(
            TcpConv {
                start_us: 0,
                client,
                server,
                client_port: 50000,
                server_port: 80,
                client_ttl: 64,
                server_ttl: 60,
                exchanges: &[Exchange::c2s(vec![1; 100], 1000)],
                teardown: Teardown::Fin,
                rtt_us: 10_000,
                label: Label::BENIGN,
            },
            &mut rng,
        );
        for w in pkts.windows(2) {
            assert!(w[0].packet.ts_us < w[1].packet.ts_us);
        }
        assert_eq!(end, pkts.last().unwrap().packet.ts_us);
    }

    #[test]
    fn server_rst_yields_rej_for_syn_only() {
        let (client, server) = endpoints();
        let mut rng = Rng::new(3);
        let (pkts, _) = tcp_conversation(
            TcpConv {
                start_us: 0,
                client,
                server,
                client_port: 50001,
                server_port: 23,
                client_ttl: 64,
                server_ttl: 60,
                exchanges: &[],
                teardown: Teardown::ServerRst,
                rtt_us: 5_000,
                label: Label::attack(crate::AttackKind::PortScan),
            },
            &mut rng,
        );
        // SYN, SYNACK, ACK, RST — a rejected-after-handshake shape; the
        // tracker classifies responder RSTs without establishment as REJ or
        // RSTR depending on ACK progress. Either way it's an abort state.
        let metas = parse_all(&pkts);
        let conns = assemble(&metas, FlowConfig::default());
        assert!(matches!(conns[0].state, ConnState::Rej | ConnState::Rstr));
    }

    #[test]
    fn udp_exchange_roundtrip() {
        let (client, server) = endpoints();
        let mut rng = Rng::new(4);
        let (pkts, _) = udp_exchange(
            500,
            client,
            server,
            5353,
            53,
            b"query",
            Some(b"answer-bytes"),
            8_000,
            (64, 55),
            Label::BENIGN,
            &mut rng,
        );
        assert_eq!(pkts.len(), 2);
        let metas = parse_all(&pkts);
        assert!(metas[0].is_udp());
        assert_eq!(metas[1].payload, b"answer-bytes");
    }

    #[test]
    fn large_payload_is_segmented() {
        let (client, server) = endpoints();
        let mut rng = Rng::new(5);
        let (pkts, _) = tcp_conversation(
            TcpConv {
                start_us: 0,
                client,
                server,
                client_port: 50002,
                server_port: 8080,
                client_ttl: 64,
                server_ttl: 64,
                exchanges: &[Exchange::c2s(vec![7; 4200], 100)],
                teardown: Teardown::None,
                rtt_us: 1_000,
                label: Label::BENIGN,
            },
            &mut rng,
        );
        // 3 handshake + 3 data segments (1400×3) + 3 acks.
        let data_pkts = pkts
            .iter()
            .filter(|lp| {
                let m = PacketMeta::parse(LinkType::Ethernet, 0, &lp.packet.data).unwrap();
                m.payload_len > 0
            })
            .count();
        assert_eq!(data_pkts, 3);
    }
}
