//! Million-endpoint flow sweeps for scalability benchmarking.
//!
//! The recipe generators ([`crate::recipes`]) model *behaviour* — device
//! personas, attack mixes, protocol chatter — and pay for it in bytes: every
//! packet is built and re-parsed through `lumen-net`. That is the right
//! fidelity for ML evaluation but far too slow to exercise a flow tracker
//! against millions of concurrent devices. This module generates
//! [`PacketMeta`] summaries directly (the form the tracker consumes), with a
//! deterministic address plan spanning the 10.0.0.0/8 test net and
//! interleaved timestamps so that large numbers of flows are open
//! simultaneously.
//!
//! Determinism matters more than realism here: the sweep feeds shard-
//! invariance checks, so the same spec must always produce the identical
//! packet vector, and every timestamp is unique so that time-sorting it is a
//! total order (no tie-break ambiguity between shard merges).

use std::net::Ipv4Addr;

use lumen_net::meta::Ipv4Meta;
use lumen_net::wire::tcp::TcpFlags;
use lumen_net::{LinkType, MacAddr, PacketMeta, TransportMeta};

/// Flow-base timestamp stride in microseconds. Coprime with [`PKT_STEP`], so
/// no two packets of the sweep ever share a timestamp (see [`endpoint_sweep`]).
const FLOW_STRIDE: u64 = 53;

/// Intra-flow packet spacing in microseconds.
const PKT_STEP: u64 = 997;

/// Largest per-flow packet count for which timestamp uniqueness holds
/// (`FLOW_STRIDE` does not divide any multiple of `PKT_STEP` below it).
const MAX_PKTS_PER_FLOW: usize = 53;

/// Shape of one endpoint sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepSpec {
    /// Distinct device endpoints (capacity ~16.7M within 10.0.0.0/8).
    pub devices: usize,
    /// Flows each device opens.
    pub flows_per_device: usize,
    /// Packets per flow (clamped to 2..=53).
    pub pkts_per_flow: usize,
    /// Seed perturbing payload sizes (not addressing or timing).
    pub seed: u64,
}

impl SweepSpec {
    /// Total flows the sweep opens.
    pub fn total_flows(&self) -> usize {
        self.devices * self.flows_per_device
    }

    /// Total packets the sweep emits.
    pub fn total_packets(&self) -> usize {
        self.total_flows() * self.pkts_per_flow.clamp(2, MAX_PKTS_PER_FLOW)
    }
}

/// Address of device `d`: a linear walk of 10.0.0.0/8 starting at 10.0.0.10.
fn device_addr(d: usize) -> Ipv4Addr {
    Ipv4Addr::from(0x0A00_000Au32.wrapping_add(d as u32))
}

/// Server pool: 240 hosts in 13.0.0.0/24 (public-looking, outside the
/// device /8).
fn server_addr(g: usize) -> Ipv4Addr {
    Ipv4Addr::from(0x0D00_0001u32 + (g % 240) as u32)
}

/// Builds one summarized packet. Header byte images are zeroed — the sweep
/// targets flow assembly, which never reads them.
#[allow(clippy::too_many_arguments)]
fn packet(
    ts_us: u64,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    sport: u16,
    dport: u16,
    tcp: bool,
    flags: TcpFlags,
    payload_len: u16,
    ident: u16,
) -> PacketMeta {
    let (transport, l4_len, proto) = if tcp {
        (
            TransportMeta::Tcp {
                src_port: sport,
                dst_port: dport,
                seq: 0,
                ack: 0,
                flags,
                window: 64240,
                header_len: 20,
                payload_len,
                header: [0; 20],
            },
            20u16,
            6u8,
        )
    } else {
        (
            TransportMeta::Udp {
                src_port: sport,
                dst_port: dport,
                payload_len,
                header: [0; 8],
            },
            8,
            17,
        )
    };
    let total_len = 20 + l4_len + payload_len;
    PacketMeta {
        ts_us,
        wire_len: 14 + u32::from(total_len),
        link: LinkType::Ethernet,
        src_mac: MacAddr::from_id(u64::from(u32::from(src))),
        dst_mac: MacAddr::from_id(u64::from(u32::from(dst))),
        ethertype: 0x0800,
        ipv4: Some(Ipv4Meta {
            src,
            dst,
            ttl: 64,
            dscp: 0,
            total_len,
            ident,
            dont_frag: true,
            protocol: proto,
            header: [0; 20],
        }),
        is_ipv6: false,
        transport,
        arp: None,
        dot11: None,
        payload: Vec::new(),
        payload_len: u32::from(payload_len),
    }
}

/// Generates the sweep: `devices × flows_per_device` flows, each a short
/// client/server conversation, time-interleaved so that thousands to
/// millions of flows are concurrently open. The output is sorted by
/// timestamp and every timestamp is unique, so the vector is already in the
/// canonical order flow assembly expects.
pub fn endpoint_sweep(spec: &SweepSpec) -> Vec<PacketMeta> {
    let ppf = spec.pkts_per_flow.clamp(2, MAX_PKTS_PER_FLOW);
    let total_flows = spec.devices * spec.flows_per_device;
    let t0 = 1_000_000u64;
    let mut out = Vec::with_capacity(total_flows * ppf);
    for g in 0..total_flows {
        let d = g / spec.flows_per_device.max(1);
        let dev = device_addr(d);
        let srv = server_addr(g);
        let sport = 32_768 + (g % 16_384) as u16;
        // Three TCP flows for every UDP one — enough protocol diversity to
        // exercise proto-sensitive shard hashing.
        let tcp = g % 4 != 3;
        let dport = if tcp { 443 } else { 53 };
        let base = t0 + (g as u64) * FLOW_STRIDE;
        // Seed-derived payload scramble; addressing and timing stay fixed.
        let scramble = spec
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(g as u64);
        for i in 0..ppf {
            let ts = base + (i as u64) * PKT_STEP;
            let outbound = i % 2 == 0;
            let flags = match (tcp, i) {
                (true, 0) => TcpFlags::SYN,
                (true, 1) => TcpFlags::SYN_ACK,
                (true, _) => TcpFlags::PSH_ACK,
                (false, _) => TcpFlags(0),
            };
            let payload_len = if tcp && i < 2 {
                0
            } else {
                (scramble.wrapping_add(i as u64 * 7) % 400) as u16
            };
            let p = if outbound {
                packet(ts, dev, srv, sport, dport, tcp, flags, payload_len, g as u16)
            } else {
                packet(ts, srv, dev, dport, sport, tcp, flags, payload_len, g as u16)
            };
            out.push(p);
        }
    }
    // FLOW_STRIDE and PKT_STEP are coprime and ppf <= MAX_PKTS_PER_FLOW, so
    // ts collisions would need FLOW_STRIDE | (i - i'), impossible within a
    // flow's 0..53 range: all timestamps are distinct and this sort is a
    // total order.
    out.sort_by_key(|p| p.ts_us);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            devices: 40,
            flows_per_device: 3,
            pkts_per_flow: 4,
            seed: 7,
        }
    }

    #[test]
    fn timestamps_are_strictly_increasing() {
        let pkts = endpoint_sweep(&small_spec());
        assert_eq!(pkts.len(), small_spec().total_packets());
        assert!(
            pkts.windows(2).all(|w| w[0].ts_us < w[1].ts_us),
            "duplicate or unsorted timestamps break merge determinism"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = endpoint_sweep(&small_spec());
        let b = endpoint_sweep(&small_spec());
        assert_eq!(a, b);
        let mut other = small_spec();
        other.seed = 8;
        let c = endpoint_sweep(&other);
        assert_eq!(a.len(), c.len());
        assert_ne!(a, c, "seed must perturb the sweep");
    }

    #[test]
    fn covers_all_requested_devices() {
        let spec = small_spec();
        let pkts = endpoint_sweep(&spec);
        let devices: HashSet<Ipv4Addr> = pkts
            .iter()
            .filter_map(|p| p.ipv4.as_ref())
            .flat_map(|ip| [ip.src, ip.dst])
            .filter(|ip| ip.octets()[0] == 10)
            .collect();
        assert_eq!(devices.len(), spec.devices);
    }

    #[test]
    fn every_packet_has_a_five_tuple() {
        for p in endpoint_sweep(&small_spec()) {
            assert!(p.five_tuple().is_some());
        }
    }

    #[test]
    fn flows_have_distinct_canonical_keys() {
        let spec = small_spec();
        let pkts = endpoint_sweep(&spec);
        let keys: HashSet<_> = pkts
            .iter()
            .filter_map(|p| p.five_tuple())
            .map(|(src, dst, sp, dp, proto)| {
                let a = (src, sp);
                let b = (dst, dp);
                if a <= b { (a, b, proto) } else { (b, a, proto) }
            })
            .collect();
        assert_eq!(keys.len(), spec.total_flows());
    }

    #[test]
    fn large_device_counts_stay_distinct() {
        // Spot-check the address walk at million scale.
        let a = device_addr(1_000_000);
        let b = device_addr(1_000_001);
        assert_ne!(a, b);
        assert_eq!(device_addr(0), Ipv4Addr::new(10, 0, 0, 10));
        assert_eq!(a.octets()[0], 10);
    }
}
