//! Cooperative cancellation with optional deadlines.
//!
//! The benchmark runner supervises long matrix tasks with a per-attempt
//! budget; the trainers and the pipeline engine poll the thread's current
//! [`CancelToken`] at loop boundaries, so a hung or slow task unwinds into
//! an ordinary `Cancelled` error instead of wedging its worker thread.
//! Polling is a relaxed atomic load plus (at most) one `Instant` read —
//! cheap enough for per-iteration checks in EM/SGD loops.
//!
//! The token is *cooperative*: nothing is preempted. Work that never polls
//! (a single huge matmul call) runs to completion; everything structured as
//! an iteration loop stops within one iteration of the deadline.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The unit "work was cancelled" error; callers map it into their own
/// error enums (`MlError::Cancelled`, `CoreError::Cancelled`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cancelled")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Once the deadline has been observed as expired the flag above is
    /// set, so later polls skip the clock read.
    deadline: Option<Instant>,
    deadline_ms: u64,
}

/// A shareable cancellation token with an optional wall-clock deadline.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::unbounded()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn unbounded() -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
                deadline_ms: 0,
            }),
        }
    }

    /// A token that auto-cancels `ms` milliseconds from now. `ms == 0`
    /// means unbounded (the runner's "no deadline" configuration).
    pub fn with_deadline_ms(ms: u64) -> CancelToken {
        if ms == 0 {
            return CancelToken::unbounded();
        }
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + std::time::Duration::from_millis(ms)),
                deadline_ms: ms,
            }),
        }
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// The configured deadline in ms (0 when unbounded).
    pub fn deadline_ms(&self) -> u64 {
        self.inner.deadline_ms
    }

    /// True once cancelled — explicitly or because the deadline passed.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// True when this token had a deadline and it has passed — the signal
    /// the runner uses to classify an error as a timeout rather than an
    /// ordinary failure.
    pub fn deadline_expired(&self) -> bool {
        self.inner.deadline.is_some() && self.is_cancelled()
    }

    /// `Err(Cancelled)` once cancelled; the poll call for `?`-style use.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }

    /// Installs this token as the calling thread's current token and
    /// returns a guard that restores the previous one on drop. Work running
    /// on this thread (trainers, the pipeline engine) polls it via
    /// [`CancelToken::current`] without any plumbing through call
    /// signatures.
    pub fn set_current(&self) -> CurrentGuard {
        let prev = CURRENT.with(|c| c.replace(Some(self.clone())));
        CurrentGuard { prev }
    }

    /// The calling thread's current token; unbounded when none installed,
    /// so library code can poll unconditionally.
    pub fn current() -> CancelToken {
        CURRENT
            .with(|c| c.borrow().clone())
            .unwrap_or_else(CancelToken::unbounded)
    }

    /// Polls the calling thread's current token without cloning it.
    pub fn current_cancelled() -> bool {
        CURRENT.with(|c| c.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Restores the thread's previous current token when dropped.
#[derive(Debug)]
pub struct CurrentGuard {
    prev: Option<CancelToken>,
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        let t = CancelToken::unbounded();
        assert!(!t.is_cancelled());
        assert!(!t.deadline_expired());
        assert_eq!(t.deadline_ms(), 0);
        assert!(t.check().is_ok());
    }

    #[test]
    fn explicit_cancel_fires() {
        let t = CancelToken::unbounded();
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(Cancelled));
        // Explicit cancel on an unbounded token is not a deadline expiry.
        assert!(!t.deadline_expired());
    }

    #[test]
    fn zero_deadline_means_unbounded() {
        let t = CancelToken::with_deadline_ms(0);
        assert_eq!(t.deadline_ms(), 0);
        assert!(!t.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline_ms(1);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(t.is_cancelled());
        assert!(t.deadline_expired());
    }

    #[test]
    fn current_token_scoping_restores_previous() {
        assert!(!CancelToken::current_cancelled());
        let outer = CancelToken::unbounded();
        let _g1 = outer.set_current();
        {
            let inner = CancelToken::unbounded();
            let g2 = inner.set_current();
            inner.cancel();
            assert!(CancelToken::current_cancelled());
            drop(g2);
        }
        // Back to the (uncancelled) outer token.
        assert!(!CancelToken::current_cancelled());
        outer.cancel();
        assert!(CancelToken::current_cancelled());
    }

    #[test]
    fn current_is_per_thread() {
        let t = CancelToken::unbounded();
        let _g = t.set_current();
        t.cancel();
        let other = std::thread::spawn(CancelToken::current_cancelled)
            .join()
            .unwrap();
        assert!(!other, "tokens must not leak across threads");
    }
}
