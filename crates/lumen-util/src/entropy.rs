//! Entropy measures over discrete observations.
//!
//! Several published IDS feature sets (e.g. smartdet's "entropy of source
//! ports") use Shannon entropy of a categorical stream as a DoS/scan signal:
//! floods concentrate mass on one value (low entropy) while spoofed-source
//! attacks spread it (high entropy).

use std::collections::HashMap;
use std::hash::Hash;

/// Shannon entropy (bits) of the empirical distribution over `items`.
pub fn shannon<T: Eq + Hash>(items: impl IntoIterator<Item = T>) -> f64 {
    let mut counts: HashMap<T, u64> = HashMap::new();
    let mut total = 0u64;
    for it in items {
        *counts.entry(it).or_insert(0) += 1;
        total += 1;
    }
    entropy_of_counts(counts.values().copied(), total)
}

/// Shannon entropy from pre-aggregated counts.
pub fn entropy_of_counts(counts: impl IntoIterator<Item = u64>, total: u64) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    let mut h = 0.0;
    for c in counts {
        if c == 0 {
            continue;
        }
        let p = c as f64 / total;
        h -= p * p.log2();
    }
    h
}

/// Normalized entropy in `[0, 1]`: Shannon entropy divided by `log2(k)` where
/// `k` is the number of distinct values; 0 for degenerate streams.
pub fn normalized<T: Eq + Hash>(items: impl IntoIterator<Item = T>) -> f64 {
    let mut counts: HashMap<T, u64> = HashMap::new();
    let mut total = 0u64;
    for it in items {
        *counts.entry(it).or_insert(0) += 1;
        total += 1;
    }
    let k = counts.len();
    if k <= 1 {
        return 0.0;
    }
    entropy_of_counts(counts.values().copied(), total) / (k as f64).log2()
}

/// Byte entropy of a buffer (bits per byte); used by payload features to
/// distinguish encrypted/compressed C2 payloads from plaintext telemetry.
pub fn byte_entropy(bytes: &[u8]) -> f64 {
    let mut counts = [0u64; 256];
    for &b in bytes {
        counts[b as usize] += 1;
    }
    entropy_of_counts(counts.iter().copied(), bytes.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_two_values_is_one_bit() {
        let h = shannon([0u8, 1, 0, 1]);
        assert!((h - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_stream_is_zero() {
        assert_eq!(shannon([7u8; 100]), 0.0);
    }

    #[test]
    fn empty_stream_is_zero() {
        assert_eq!(shannon(Vec::<u8>::new()), 0.0);
    }

    #[test]
    fn uniform_256_bytes_is_eight_bits() {
        let buf: Vec<u8> = (0..=255).collect();
        assert!((byte_entropy(&buf) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_is_unit_for_uniform() {
        let h = normalized([1u8, 2, 3, 4, 1, 2, 3, 4]);
        assert!((h - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_single_value_is_zero() {
        assert_eq!(normalized([9u8; 5]), 0.0);
    }

    #[test]
    fn skew_reduces_entropy() {
        let skewed = shannon([0u8, 0, 0, 0, 0, 0, 0, 1]);
        let uniform = shannon([0u8, 1, 0, 1, 0, 1, 0, 1]);
        assert!(skewed < uniform);
    }
}
