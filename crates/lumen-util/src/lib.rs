//! Shared utilities for the Lumen workspace.
//!
//! This crate deliberately has no dependencies: every stochastic component in
//! Lumen (dataset synthesis, model initialization, sampling) draws from the
//! deterministic [`rng::Rng`] defined here so that experiments are
//! reproducible bit-for-bit from a single `u64` seed.

// `deny` instead of `forbid`: the one audited exception is the signal-handler
// FFI in `shutdown.rs` (glibc `signal(2)` for SIGTERM drain), which carries a
// file-level allow and is pinned by scripts/check_unsafe_audit.sh.
#![deny(unsafe_code)]

pub mod cancel;
pub mod entropy;
pub mod par;
pub mod ring;
pub mod rng;
pub mod shutdown;
pub mod stats;

pub use cancel::{CancelToken, Cancelled};
pub use ring::{ring, RingClosed, RingMonitor, RingReceiver, RingSender, TryRecvError, TrySendError};
pub use rng::Rng;
pub use stats::{OnlineStats, Summary};
