//! Shared utilities for the Lumen workspace.
//!
//! This crate deliberately has no dependencies: every stochastic component in
//! Lumen (dataset synthesis, model initialization, sampling) draws from the
//! deterministic [`rng::Rng`] defined here so that experiments are
//! reproducible bit-for-bit from a single `u64` seed.

#![forbid(unsafe_code)]

pub mod cancel;
pub mod entropy;
pub mod par;
pub mod ring;
pub mod rng;
pub mod stats;

pub use cancel::{CancelToken, Cancelled};
pub use ring::{ring, RingClosed, RingReceiver, RingSender};
pub use rng::Rng;
pub use stats::{OnlineStats, Summary};
