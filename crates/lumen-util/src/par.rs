//! Generic chunked parallelism on `std::thread::scope`.
//!
//! The paper's scalability fix for 100M-packet captures is chunked work
//! over a worker pool (§4.2). This module is the dependency-free core of
//! that design, shared by packet parsing (`lumen_core::par`) and the ML
//! compute kernels (`lumen_ml::kernels`): contiguous chunks, scoped
//! threads, order-preserving results, and panics contained per worker.
//!
//! Determinism contract: [`try_par_chunks`] splits by thread count, so it
//! is only bit-deterministic for element-wise independent maps. For
//! floating-point *reductions*, use [`try_par_blocks`]: the block size is
//! fixed by the caller (never derived from the thread count), and block
//! results are returned in block order, so the fold tree — and therefore
//! the rounded result — is identical at any thread count.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Renders a panic payload (from `catch_unwind` or a thread join) as a
/// human-readable message, so workers can turn panics into structured
/// failures instead of aborting a whole run.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The machine's available parallelism, defaulting to 1 when unknown.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `items` into at most `threads` contiguous chunks and maps each in
/// its own scoped thread, preserving chunk order in the result.
///
/// A panic inside `f` is caught in its worker: the remaining chunks still
/// complete, and the first panic is returned as `Err` with its message.
pub fn try_par_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, String>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let threads = threads.max(1);
    if items.is_empty() {
        return Ok(Vec::new());
    }
    if threads == 1 || items.len() < 2 {
        return catch_unwind(AssertUnwindSafe(|| f(items)))
            .map(|r| vec![r])
            .map_err(|p| panic_message(p.as_ref()));
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    let results: Vec<Result<R, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| {
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| f(c))).map_err(|p| panic_message(p.as_ref()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker catches its own panics"))
            .collect()
    });
    results.into_iter().collect()
}

/// Infallible wrapper over [`try_par_chunks`]: a worker panic is re-raised
/// on the calling thread — but only after every other chunk has finished,
/// and with the original message preserved.
pub fn par_chunks<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    match try_par_chunks(items, threads, f) {
        Ok(v) => v,
        Err(msg) => panic!("par_chunks worker panicked: {msg}"),
    }
}

/// Maps `f` over fixed-size index blocks `[start, end)` of `0..len` and
/// returns the per-block results **in block order**, computing blocks on up
/// to `threads` scoped workers.
///
/// Unlike [`try_par_chunks`], the partition depends only on `block`, never
/// on `threads`: a caller that folds the returned vector front to back gets
/// the same floating-point reduction tree at every thread count.
pub fn try_par_blocks<R, F>(
    len: usize,
    block: usize,
    threads: usize,
    f: F,
) -> Result<Vec<R>, String>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let block = block.max(1);
    let threads = threads.max(1);
    if len == 0 {
        return Ok(Vec::new());
    }
    let nblocks = len.div_ceil(block);
    let run = |b0: usize, b1: usize| -> Result<Vec<R>, String> {
        let mut out = Vec::with_capacity(b1 - b0);
        for bi in b0..b1 {
            let start = bi * block;
            let end = (start + block).min(len);
            match catch_unwind(AssertUnwindSafe(|| f(start, end))) {
                Ok(r) => out.push(r),
                Err(p) => return Err(panic_message(p.as_ref())),
            }
        }
        Ok(out)
    };
    if threads == 1 || nblocks == 1 {
        return run(0, nblocks);
    }
    // Contiguous block ranges per worker: joining in worker order yields
    // the results in block order.
    let per = nblocks.div_ceil(threads);
    let run = &run;
    let results: Vec<Result<Vec<R>, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nblocks.div_ceil(per))
            .map(|w| {
                let b0 = w * per;
                let b1 = (b0 + per).min(nblocks);
                scope.spawn(move || run(b0, b1))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker catches its own panics"))
            .collect()
    });
    let mut flat = Vec::with_capacity(nblocks);
    for r in results {
        flat.extend(r?);
    }
    Ok(flat)
}

/// Infallible wrapper over [`try_par_blocks`].
pub fn par_blocks<R, F>(len: usize, block: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    match try_par_blocks(len, block, threads, f) {
        Ok(v) => v,
        Err(msg) => panic!("par_blocks worker panicked: {msg}"),
    }
}

/// Splits `out` into rows of `row_len` and calls `f(row_index, row)` for
/// each, processing contiguous row ranges on up to `threads` scoped
/// workers. The writes are disjoint by construction, so no locking is
/// involved; because every row is computed independently, the result is
/// bit-identical at any thread count.
///
/// Panics in `f` are contained per worker and surfaced as `Err` after all
/// other workers finish.
pub fn try_par_rows_mut<F>(
    out: &mut [f64],
    row_len: usize,
    threads: usize,
    f: F,
) -> Result<(), String>
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let threads = threads.max(1);
    if out.is_empty() || row_len == 0 {
        return Ok(());
    }
    debug_assert_eq!(out.len() % row_len, 0, "out must be whole rows");
    let rows = out.len() / row_len;
    let run = |start_row: usize, chunk: &mut [f64]| -> Result<(), String> {
        for (j, row) in chunk.chunks_mut(row_len).enumerate() {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(start_row + j, row))) {
                return Err(panic_message(p.as_ref()));
            }
        }
        Ok(())
    };
    if threads == 1 || rows == 1 {
        return run(0, out);
    }
    let per = rows.div_ceil(threads);
    let run = &run;
    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = out
            .chunks_mut(per * row_len)
            .enumerate()
            .map(|(w, chunk)| scope.spawn(move || run(w * per, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker catches its own panics"))
            .collect()
    });
    results.into_iter().collect()
}

/// Like [`try_par_rows_mut`], but hands each call a *block* of up to
/// `block_rows` consecutive rows instead of a single row: `f(first_row,
/// block)` where `block` covers rows `first_row .. first_row +
/// block.len()/row_len` (the final block may be short). Work is split
/// across workers at block granularity, so cache-blocked kernels can reuse
/// data loaded for one row across the whole block while keeping the
/// disjoint-writes / bit-identical-at-any-thread-count contract of
/// [`try_par_rows_mut`].
pub fn try_par_row_blocks_mut<F>(
    out: &mut [f64],
    row_len: usize,
    block_rows: usize,
    threads: usize,
    f: F,
) -> Result<(), String>
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let threads = threads.max(1);
    let block_rows = block_rows.max(1);
    if out.is_empty() || row_len == 0 {
        return Ok(());
    }
    debug_assert_eq!(out.len() % row_len, 0, "out must be whole rows");
    let rows = out.len() / row_len;
    let blocks = rows.div_ceil(block_rows);
    let run = |start_block: usize, chunk: &mut [f64]| -> Result<(), String> {
        for (j, blk) in chunk.chunks_mut(block_rows * row_len).enumerate() {
            let first_row = (start_block + j) * block_rows;
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(first_row, blk))) {
                return Err(panic_message(p.as_ref()));
            }
        }
        Ok(())
    };
    if threads == 1 || blocks == 1 {
        return run(0, out);
    }
    let per = blocks.div_ceil(threads);
    let run = &run;
    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = out
            .chunks_mut(per * block_rows * row_len)
            .enumerate()
            .map(|(w, chunk)| scope.spawn(move || run(w * per, chunk)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker catches its own panics"))
            .collect()
    });
    results.into_iter().collect()
}

/// Infallible wrapper over [`try_par_row_blocks_mut`].
pub fn par_row_blocks_mut<F>(
    out: &mut [f64],
    row_len: usize,
    block_rows: usize,
    threads: usize,
    f: F,
) where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if let Err(msg) = try_par_row_blocks_mut(out, row_len, block_rows, threads, f) {
        panic!("par_row_blocks_mut worker panicked: {msg}");
    }
}

/// Infallible wrapper over [`try_par_rows_mut`].
pub fn par_rows_mut<F>(out: &mut [f64], row_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    if let Err(msg) = try_par_rows_mut(out, row_len, threads, f) {
        panic!("par_rows_mut worker panicked: {msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let sums = par_chunks(&items, 4, |c| c.iter().sum::<usize>());
        assert_eq!(sums.len(), 4);
        assert_eq!(sums.iter().sum::<usize>(), 499_500);
        assert!(sums[0] < sums[3]);
    }

    #[test]
    fn par_chunks_empty_and_single() {
        let items: [u8; 0] = [];
        let out: Vec<usize> = par_chunks(&items, 8, |c| c.len());
        assert!(out.is_empty());
        let out = par_chunks(&[1, 2, 3], 1, |c| c.len());
        assert_eq!(out, vec![3]);
    }

    #[test]
    fn try_par_chunks_catches_worker_panic() {
        let items: Vec<usize> = (0..100).collect();
        let err = try_par_chunks(&items, 4, |c| {
            if c.contains(&13) {
                panic!("chunk with 13 exploded");
            }
            c.len()
        })
        .unwrap_err();
        assert!(err.contains("exploded"), "{err}");
    }

    #[test]
    fn par_blocks_partition_is_thread_independent() {
        // The block partition (and hence a front-to-back fold) must not
        // change with the worker count.
        for threads in [1, 2, 3, 8] {
            let spans = par_blocks(103, 16, threads, |s, e| (s, e));
            assert_eq!(spans.len(), 7);
            assert_eq!(spans[0], (0, 16));
            assert_eq!(spans[6], (96, 103));
        }
    }

    #[test]
    fn par_blocks_float_fold_is_bit_identical() {
        let xs: Vec<f64> = (0..997).map(|i| (i as f64).sin() * 1e3).collect();
        let fold = |threads: usize| -> f64 {
            par_blocks(xs.len(), 64, threads, |s, e| {
                xs[s..e].iter().sum::<f64>()
            })
            .into_iter()
            .sum()
        };
        let s1 = fold(1);
        for threads in [2, 3, 8] {
            assert_eq!(s1.to_bits(), fold(threads).to_bits());
        }
    }

    #[test]
    fn try_par_blocks_catches_worker_panic() {
        let err = try_par_blocks(100, 10, 4, |s, _| {
            if s == 50 {
                panic!("block at 50 exploded");
            }
            s
        })
        .unwrap_err();
        assert!(err.contains("exploded"), "{err}");
    }

    #[test]
    fn par_rows_mut_writes_every_row() {
        for threads in [1, 2, 5] {
            let mut out = vec![0.0; 7 * 3];
            par_rows_mut(&mut out, 3, threads, |i, row| {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (i * 10 + j) as f64;
                }
            });
            assert_eq!(out[0], 0.0);
            assert_eq!(out[3], 10.0);
            assert_eq!(out[20], 62.0);
        }
    }

    #[test]
    fn par_rows_mut_empty_is_noop() {
        let mut out: Vec<f64> = Vec::new();
        par_rows_mut(&mut out, 4, 8, |_, _| panic!("never called"));
    }

    #[test]
    fn par_row_blocks_mut_covers_every_row_with_short_tail() {
        // 11 rows of 3 in blocks of 4 → blocks start at rows 0, 4, 8 and
        // the last block is short (3 rows). Every thread count must visit
        // the same (first_row, block length) pairs and touch every cell.
        for threads in [1, 2, 3, 8] {
            let mut out = vec![0.0; 11 * 3];
            par_row_blocks_mut(&mut out, 3, 4, threads, |first_row, blk| {
                assert_eq!(first_row % 4, 0, "blocks start on block boundaries");
                assert_eq!(blk.len() % 3, 0, "blocks are whole rows");
                for (j, row) in blk.chunks_mut(3).enumerate() {
                    for (k, v) in row.iter_mut().enumerate() {
                        *v = ((first_row + j) * 10 + k) as f64;
                    }
                }
            });
            for i in 0..11 {
                for k in 0..3 {
                    assert_eq!(out[i * 3 + k], (i * 10 + k) as f64, "threads {threads}");
                }
            }
        }
    }

    #[test]
    fn par_row_blocks_mut_empty_is_noop() {
        let mut out: Vec<f64> = Vec::new();
        par_row_blocks_mut(&mut out, 4, 8, 2, |_, _| panic!("never called"));
    }

    #[test]
    fn try_par_row_blocks_mut_catches_worker_panic() {
        let mut out = vec![0.0; 12 * 2];
        let err = try_par_row_blocks_mut(&mut out, 2, 4, 3, |first, _| {
            if first == 8 {
                panic!("block at 8 exploded");
            }
        })
        .unwrap_err();
        assert!(err.contains("exploded"), "{err}");
    }

    #[test]
    fn try_par_rows_mut_catches_worker_panic() {
        let mut out = vec![0.0; 100];
        let err = try_par_rows_mut(&mut out, 10, 4, |i, _| {
            if i == 7 {
                panic!("row 7 exploded");
            }
        })
        .unwrap_err();
        assert!(err.contains("exploded"), "{err}");
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}
