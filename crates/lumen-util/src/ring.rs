//! Bounded SPSC rings: the decode→shard hand-off primitive.
//!
//! The flow-shard router (`lumen_flow::shard`) feeds each worker shard
//! from the decode stage through one of these rings. The workspace forbids
//! `unsafe`, so this is not a lock-free ring buffer: it is a fixed-capacity
//! queue behind a mutex + condvars, used batch-at-a-time so the lock is
//! taken once per ~thousand packets, not once per packet. The discipline
//! mirrors [`crate::par`]: bounded buffering gives backpressure (a slow
//! shard stalls the producer instead of ballooning memory), FIFO order is
//! preserved, and dropping the sender closes the ring so consumers drain
//! and exit deterministically.
//!
//! Neither endpoint is `Clone`, so a ring is single-producer
//! single-consumer by construction.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Capacity in items (batches, for the shard router).
    capacity: usize,
    /// Signalled when the queue gains an item or closes.
    readable: Condvar,
    /// Signalled when the queue loses an item.
    writable: Condvar,
}

impl<T> Shared<T> {
    /// Locks the state, shrugging off poisoning: the queue holds plain
    /// data, so a panicked peer cannot leave it logically corrupt, and the
    /// survivor still needs to observe `closed`.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Producer half of a bounded ring.
pub struct RingSender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half of a bounded ring.
pub struct RingReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded FIFO ring with room for `capacity` items
/// (`capacity` is clamped to at least 1).
pub fn ring<T>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            closed: false,
        }),
        capacity: capacity.max(1),
        readable: Condvar::new(),
        writable: Condvar::new(),
    });
    (
        RingSender {
            shared: Arc::clone(&shared),
        },
        RingReceiver { shared },
    )
}

/// Error returned by [`RingSender::send`] when the receiver is gone; the
/// item comes back so the caller can account for it.
#[derive(Debug)]
pub struct RingClosed<T>(pub T);

impl<T> RingSender<T> {
    /// Enqueues one item, blocking while the ring is full (backpressure).
    /// Fails only when the receiver has been dropped.
    pub fn send(&self, item: T) -> Result<(), RingClosed<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.closed {
                return Err(RingClosed(item));
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(item);
                self.shared.readable.notify_one();
                return Ok(());
            }
            st = self
                .shared
                .writable
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        self.shared.lock().closed = true;
        self.shared.readable.notify_all();
    }
}

impl<T> RingReceiver<T> {
    /// Dequeues the next item, blocking while the ring is empty. Returns
    /// `None` once the sender is dropped **and** the queue has drained —
    /// every sent item is observed exactly once.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.lock();
        loop {
            if let Some(item) = st.queue.pop_front() {
                self.shared.writable.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .shared
                .readable
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.closed = true;
        st.queue.clear();
        self.shared.writable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = ring(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn recv_after_close_drains_then_ends() {
        let (tx, rx) = ring(8);
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some("a"));
        assert_eq!(rx.recv(), Some("b"));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "closed ring stays closed");
    }

    #[test]
    fn send_to_dropped_receiver_returns_item() {
        let (tx, rx) = ring(2);
        drop(rx);
        let Err(RingClosed(item)) = tx.send(42) else {
            panic!("send into a dropped receiver must fail");
        };
        assert_eq!(item, 42);
    }

    #[test]
    fn capacity_bounds_the_queue_under_load() {
        // A slow consumer never observes more than `capacity` items queued:
        // the producer blocks (backpressure) instead of buffering unboundedly.
        static MAX_SEEN: AtomicUsize = AtomicUsize::new(0);
        let (tx, rx) = ring::<usize>(3);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..200 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move || {
                let mut expect = 0;
                while let Some(i) = rx.recv() {
                    assert_eq!(i, expect, "cross-thread FIFO");
                    expect += 1;
                    let depth = rx.shared.lock().queue.len();
                    MAX_SEEN.fetch_max(depth, Ordering::Relaxed);
                }
                assert_eq!(expect, 200, "every sent item observed once");
            });
        });
        assert!(MAX_SEEN.load(Ordering::Relaxed) <= 3);
    }

    #[test]
    fn blocking_send_wakes_when_space_frees() {
        let (tx, rx) = ring(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                tx.send(2).unwrap(); // blocks until the recv below
                drop(tx);
            });
            assert_eq!(rx.recv(), Some(1));
            assert_eq!(rx.recv(), Some(2));
            assert_eq!(rx.recv(), None);
            h.join().unwrap();
        });
    }
}
