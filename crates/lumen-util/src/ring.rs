//! Bounded rings: the staged-pipeline hand-off primitive.
//!
//! The flow-shard router (`lumen_flow::shard`) feeds each worker shard
//! from the decode stage through one of these rings, and the streaming
//! daemon (`lumen-serve`) chains its stages with them. The workspace
//! confines `unsafe` to the SIMD kernels, so this is not a lock-free ring
//! buffer: it is a fixed-capacity queue behind a mutex + condvars, used
//! batch-at-a-time so the lock is taken once per ~thousand packets, not
//! once per packet. The discipline mirrors [`crate::par`]: bounded
//! buffering gives backpressure (a slow consumer stalls the producer
//! instead of ballooning memory), FIFO order is preserved, and dropping
//! the last sender closes the ring so consumers drain and exit
//! deterministically.
//!
//! Senders are [`Clone`] (multi-producer); the ring closes when the *last*
//! sender drops. The receiver is not `Clone`, so a ring is
//! multi-producer single-consumer by construction. For callers that must
//! never block — a load-shedding stage deciding whether to drop work —
//! [`RingSender::try_send`] reports a full ring instead of waiting, and
//! [`RingMonitor`] exposes the queue depth without holding the ring open.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Capacity in items (batches, for the shard router).
    capacity: usize,
    /// Live sender handles; the ring closes when this reaches zero.
    senders: AtomicUsize,
    /// High-water mark of the queue depth, for stage telemetry.
    peak_depth: AtomicUsize,
    /// Signalled when the queue gains an item or closes.
    readable: Condvar,
    /// Signalled when the queue loses an item.
    writable: Condvar,
}

impl<T> Shared<T> {
    /// Locks the state, shrugging off poisoning: the queue holds plain
    /// data, so a panicked peer cannot leave it logically corrupt, and the
    /// survivor still needs to observe `closed`.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn note_depth(&self, depth: usize) {
        self.peak_depth.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Producer half of a bounded ring. Cloning adds a producer; the ring
/// closes when the last clone drops.
pub struct RingSender<T> {
    shared: Arc<Shared<T>>,
}

/// Consumer half of a bounded ring.
pub struct RingReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// A passive depth probe on a ring: reports queue depth and capacity
/// without being a producer or consumer, so holding one never keeps the
/// ring open. Cheap to clone; the watchdog samples these for the
/// per-stage queue-depth telemetry.
#[derive(Clone)]
pub struct RingMonitor<T> {
    shared: Arc<Shared<T>>,
}

impl<T> RingMonitor<T> {
    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// High-water mark of the queue depth since the ring was created.
    pub fn peak_depth(&self) -> usize {
        self.shared.peak_depth.load(Ordering::Relaxed)
    }
}

/// Creates a bounded FIFO ring with room for `capacity` items
/// (`capacity` is clamped to at least 1).
pub fn ring<T>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            closed: false,
        }),
        capacity: capacity.max(1),
        senders: AtomicUsize::new(1),
        peak_depth: AtomicUsize::new(0),
        readable: Condvar::new(),
        writable: Condvar::new(),
    });
    (
        RingSender {
            shared: Arc::clone(&shared),
        },
        RingReceiver { shared },
    )
}

/// Error returned by [`RingSender::send`] when the receiver is gone; the
/// item comes back so the caller can account for it.
#[derive(Debug)]
pub struct RingClosed<T>(pub T);

/// Error returned by [`RingSender::try_send`]; the item comes back either
/// way so the caller can shed it *accountably* (journal the drop) or park
/// it for a retry.
#[derive(Debug)]
pub enum TrySendError<T> {
    /// The ring is at capacity right now; the caller decides whether to
    /// shed, retry, or fall back to a blocking [`RingSender::send`].
    Full(T),
    /// The receiver is gone; no send can ever succeed again.
    Closed(T),
}

impl<T> TrySendError<T> {
    /// The item that could not be enqueued.
    pub fn into_item(self) -> T {
        match self {
            TrySendError::Full(item) | TrySendError::Closed(item) => item,
        }
    }
}

impl<T> RingSender<T> {
    /// Enqueues one item, blocking while the ring is full (backpressure).
    /// Fails only when the receiver has been dropped.
    pub fn send(&self, item: T) -> Result<(), RingClosed<T>> {
        let mut st = self.shared.lock();
        loop {
            if st.closed {
                return Err(RingClosed(item));
            }
            if st.queue.len() < self.shared.capacity {
                st.queue.push_back(item);
                self.shared.note_depth(st.queue.len());
                self.shared.readable.notify_one();
                return Ok(());
            }
            st = self
                .shared
                .writable
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking enqueue: succeeds immediately or reports why it
    /// cannot. A full ring comes back as [`TrySendError::Full`] with the
    /// item, which is exactly the decision point a load-shedding stage
    /// needs — drop the item (and count the drop) instead of stalling.
    pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.lock();
        if st.closed {
            return Err(TrySendError::Closed(item));
        }
        if st.queue.len() >= self.shared.capacity {
            return Err(TrySendError::Full(item));
        }
        st.queue.push_back(item);
        self.shared.note_depth(st.queue.len());
        self.shared.readable.notify_one();
        Ok(())
    }

    /// A passive depth probe for this ring (see [`RingMonitor`]).
    pub fn monitor(&self) -> RingMonitor<T> {
        RingMonitor {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for RingSender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::Relaxed);
        RingSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for RingSender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.shared.lock().closed = true;
            self.shared.readable.notify_all();
        }
    }
}

impl<T> RingReceiver<T> {
    /// Dequeues the next item, blocking while the ring is empty. Returns
    /// `None` once every sender is dropped **and** the queue has drained —
    /// every sent item is observed exactly once.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.shared.lock();
        loop {
            if let Some(item) = st.queue.pop_front() {
                self.shared.writable.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self
                .shared
                .readable
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking dequeue: `Ok(item)` when one is ready,
    /// `Err(TryRecvError::Empty)` when the ring is open but idle, and
    /// `Err(TryRecvError::Closed)` once every sender dropped and the queue
    /// drained. A stage that must keep servicing its main input while also
    /// watching a side channel — the serve scorer polling for a finished
    /// background retrain — uses this instead of a blocking [`recv`].
    ///
    /// [`recv`]: RingReceiver::recv
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.lock();
        if let Some(item) = st.queue.pop_front() {
            self.shared.writable.notify_one();
            return Ok(item);
        }
        if st.closed {
            Err(TryRecvError::Closed)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// A passive depth probe for this ring (see [`RingMonitor`]).
    pub fn monitor(&self) -> RingMonitor<T> {
        RingMonitor {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// Error returned by [`RingReceiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The ring is open but has nothing queued right now.
    Empty,
    /// Every sender dropped and the queue has drained; no item will ever
    /// arrive again.
    Closed,
}

impl<T> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.closed = true;
        st.queue.clear();
        self.shared.writable.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = ring(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        drop(tx);
        assert_eq!(rx.recv(), Some(0));
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn recv_after_close_drains_then_ends() {
        let (tx, rx) = ring(8);
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some("a"));
        assert_eq!(rx.recv(), Some("b"));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "closed ring stays closed");
    }

    #[test]
    fn send_to_dropped_receiver_returns_item() {
        let (tx, rx) = ring(2);
        drop(rx);
        let Err(RingClosed(item)) = tx.send(42) else {
            panic!("send into a dropped receiver must fail");
        };
        assert_eq!(item, 42);
    }

    #[test]
    fn capacity_bounds_the_queue_under_load() {
        // A slow consumer never observes more than `capacity` items queued:
        // the producer blocks (backpressure) instead of buffering unboundedly.
        static MAX_SEEN: AtomicUsize = AtomicUsize::new(0);
        let (tx, rx) = ring::<usize>(3);
        let mon = rx.monitor();
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..200 {
                    tx.send(i).unwrap();
                }
            });
            s.spawn(move || {
                let mut expect = 0;
                while let Some(i) = rx.recv() {
                    assert_eq!(i, expect, "cross-thread FIFO");
                    expect += 1;
                    let depth = rx.shared.lock().queue.len();
                    MAX_SEEN.fetch_max(depth, Ordering::Relaxed);
                }
                assert_eq!(expect, 200, "every sent item observed once");
            });
        });
        assert!(MAX_SEEN.load(Ordering::Relaxed) <= 3);
        assert!(mon.peak_depth() <= 3, "peak telemetry respects the bound");
        assert!(mon.peak_depth() >= 1, "peak telemetry saw traffic");
    }

    #[test]
    fn blocking_send_wakes_when_space_frees() {
        let (tx, rx) = ring(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                tx.send(2).unwrap(); // blocks until the recv below
                drop(tx);
            });
            assert_eq!(rx.recv(), Some(1));
            assert_eq!(rx.recv(), Some(2));
            assert_eq!(rx.recv(), None);
            h.join().unwrap();
        });
    }

    #[test]
    fn try_send_reports_full_without_blocking_and_preserves_order() {
        let (tx, rx) = ring::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        // Ring is at capacity: try_send must return immediately with the
        // item, not block like `send` would.
        let Err(TrySendError::Full(item)) = tx.try_send(3) else {
            panic!("try_send into a full ring must report Full");
        };
        assert_eq!(item, 3, "the unsent item comes back for accounting");
        // Draining one slot makes the next try_send succeed; FIFO order
        // holds across the mixed send/try_send history.
        assert_eq!(rx.recv(), Some(1));
        tx.try_send(4).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(4));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn try_send_to_dropped_receiver_reports_closed() {
        let (tx, rx) = ring::<u32>(2);
        drop(rx);
        let Err(TrySendError::Closed(item)) = tx.try_send(7) else {
            panic!("try_send into a dropped receiver must report Closed");
        };
        assert_eq!(item, 7);
        assert_eq!(TrySendError::Full(9).into_item(), 9);
    }

    #[test]
    fn capacity_is_respected_for_any_constructor_value() {
        for cap in [1usize, 2, 3, 7, 64] {
            let (tx, rx) = ring::<usize>(cap);
            for i in 0..cap {
                tx.try_send(i).unwrap_or_else(|_| panic!("cap {cap}: slot {i} must fit"));
            }
            assert!(
                matches!(tx.try_send(cap), Err(TrySendError::Full(_))),
                "cap {cap}: item {cap} must not fit"
            );
            for i in 0..cap {
                assert_eq!(rx.recv(), Some(i), "cap {cap}: FIFO");
            }
        }
        // Zero clamps to one so a ring can never be unusable.
        let (tx, _rx) = ring::<u8>(0);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(_))));
    }

    #[test]
    fn try_recv_distinguishes_empty_from_closed() {
        let (tx, rx) = ring::<u32>(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(11).unwrap();
        tx.send(12).unwrap();
        assert_eq!(rx.try_recv(), Ok(11));
        drop(tx);
        // Queued items still drain after close; only then is it Closed.
        assert_eq!(rx.try_recv(), Ok(12));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Closed));
    }

    #[test]
    fn try_recv_frees_a_slot_for_blocked_senders() {
        let (tx, rx) = ring::<u32>(1);
        tx.send(1).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                tx.send(2).unwrap(); // blocks until try_recv below frees a slot
                drop(tx);
            });
            loop {
                match rx.try_recv() {
                    Ok(1) => continue,
                    Ok(2) => break,
                    Ok(other) => panic!("unexpected item {other}"),
                    Err(TryRecvError::Empty) => std::thread::yield_now(),
                    Err(TryRecvError::Closed) => panic!("closed before item 2"),
                }
            }
            h.join().unwrap();
        });
    }

    #[test]
    fn cloned_senders_feed_one_receiver_and_close_on_last_drop() {
        let (tx, rx) = ring::<usize>(8);
        let n_producers = 4;
        let per_producer = 50;
        std::thread::scope(|s| {
            for p in 0..n_producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_producer {
                        tx.send(p * per_producer + i).unwrap();
                    }
                });
            }
            drop(tx); // the clones keep the ring open until they all finish
            let mut seen: Vec<usize> = Vec::new();
            while let Some(i) = rx.recv() {
                seen.push(i);
            }
            // recv returned None only after every clone dropped; nothing lost.
            assert_eq!(seen.len(), n_producers * per_producer);
            seen.sort_unstable();
            assert!(seen.windows(2).all(|w| w[0] + 1 == w[1]));
        });
    }

    #[test]
    fn one_dropped_clone_does_not_close_the_ring() {
        let (tx, rx) = ring::<u8>(4);
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(5).unwrap();
        assert_eq!(rx.recv(), Some(5));
        drop(tx2);
        assert_eq!(rx.recv(), None, "last clone closes the ring");
    }

    #[test]
    fn monitor_reports_depth_without_holding_the_ring_open() {
        let (tx, rx) = ring::<u8>(4);
        let mon = tx.monitor();
        assert_eq!(mon.capacity(), 4);
        assert_eq!(mon.depth(), 0);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(mon.depth(), 2);
        assert_eq!(mon.peak_depth(), 2);
        drop(tx);
        // The monitor outlives the sender without keeping the ring open.
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(mon.peak_depth(), 2, "peak survives the drain");
    }
}
