//! Deterministic pseudo-random number generation.
//!
//! Lumen needs reproducible randomness in three places: synthetic traffic
//! generation, train/test splitting, and model initialization (forests,
//! autoencoders, Nystroem landmark sampling). All of them use this
//! xoshiro256** generator seeded through SplitMix64, the construction
//! recommended by the xoshiro authors for expanding a 64-bit seed.

/// A seeded xoshiro256** pseudo-random number generator.
///
/// Not cryptographically secure; statistically strong and extremely fast,
/// which is what traffic synthesis and ML initialization need.
///
/// ```
/// use lumen_util::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // A state of all zeros is the one forbidden state for xoshiro.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        Rng { s }
    }

    /// Derives an independent child generator; used to give each synthetic
    /// device / attack / model its own stream without coupling.
    pub fn fork(&mut self, tag: u64) -> Rng {
        Rng::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection method: unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`; `lo` when the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal draw (Box–Muller, one value per call).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by offsetting into (0, 1].
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Exponential draw with the given rate (events per unit time).
    ///
    /// Used for Poisson-process packet inter-arrival times.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        debug_assert!(rate > 0.0);
        -(1.0 - self.f64()).ln() / rate
    }

    /// Pareto draw (heavy-tailed sizes/durations) with scale `xm` and shape `alpha`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        xm / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Log-normal draw parameterized by the mean/sd of the underlying normal.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range(0, items.len())]
    }

    /// Picks an index according to non-negative weights. Panics if all
    /// weights are zero or the slice is empty.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "choose_weighted needs positive total weight");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Reservoir-samples `k` indices from `0..n` without replacement.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.range(0, i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_bounded_and_covers() {
        let mut r = Rng::new(4);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_zero_bound() {
        let mut r = Rng::new(5);
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng::new(6);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = Rng::new(8);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_unique_and_in_range() {
        let mut r = Rng::new(10);
        let s = r.sample_indices(1000, 50);
        assert_eq!(s.len(), 50);
        let mut u = s.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 50);
        assert!(s.iter().all(|&i| i < 1000));
    }

    #[test]
    fn sample_more_than_population() {
        let mut r = Rng::new(11);
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn weighted_choice_respects_weights() {
        let mut r = Rng::new(12);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.choose_weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let p2 = counts[2] as f64 / 30_000.0;
        assert!((p2 - 0.7).abs() < 0.03);
    }

    #[test]
    fn fork_streams_independent() {
        let mut root = Rng::new(13);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
