//! Cooperative termination for long-running binaries.
//!
//! `lumen-serve` is a daemon: operators stop it with SIGTERM (systemd,
//! `kill`, CI), and a clean stop must *drain* — finish in-flight slices,
//! flush the run journal — rather than abort mid-write. The workspace has
//! no `libc` dependency, so the handler is installed through a minimal,
//! audited FFI declaration of glibc's `signal(2)`. This file is one of the
//! two unsafe carve-outs enforced by `scripts/check_unsafe_audit.sh`
//! (the other is the SIMD kernel backend in `lumen-ml`).
//!
//! The handler itself does the only thing that is async-signal-safe here:
//! it stores a relaxed flag. Pipeline stages poll
//! [`termination_requested`] at their loop heads; nothing is torn down
//! from signal context.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};

/// Set from signal context; polled by pipeline sources.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod ffi {
    extern "C" {
        /// glibc `signal(2)`. Handler is passed as a plain function
        /// address; `usize` keeps the declaration dependency-free.
        pub fn signal(signum: i32, handler: usize) -> usize;
        /// glibc `raise(3)` — used by the unit test to deliver a real
        /// SIGTERM to this process.
        pub fn raise(signum: i32) -> i32;
    }
}

/// `SIGTERM` on every Unix Lumen targets.
pub const SIGTERM: i32 = 15;
/// `SIGINT` (Ctrl-C) on every Unix Lumen targets.
pub const SIGINT: i32 = 2;

/// The installed handler: async-signal-safe by construction — a single
/// relaxed atomic store, no allocation, no locks, no I/O.
#[cfg(unix)]
extern "C" fn on_terminate(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::Relaxed);
}

/// Installs the drain-request handler for SIGTERM and SIGINT. Idempotent;
/// call once at daemon startup. On non-Unix targets this is a no-op and
/// only [`request_termination`] can set the flag.
pub fn install_term_handler() {
    #[cfg(unix)]
    {
        let handler = on_terminate as extern "C" fn(i32) as usize;
        // safety: `signal` is the C standard library's handler
        // registration; the arguments are a valid signal number and the
        // address of an `extern "C" fn(i32)` with the exact ABI signal
        // delivery expects. The handler body is async-signal-safe (one
        // atomic store). The return value (previous handler) is ignored,
        // which leaks no resource.
        unsafe {
            ffi::signal(SIGTERM, handler);
            ffi::signal(SIGINT, handler);
        }
    }
}

/// True once SIGTERM/SIGINT has been delivered (or
/// [`request_termination`] called). Stages treat this as "stop pulling
/// new work, drain what you hold, flush the journal".
pub fn termination_requested() -> bool {
    TERM_REQUESTED.load(Ordering::Relaxed)
}

/// Cooperative path to the same flag — used by tests and by in-process
/// supervisors that want a drain without involving the kernel.
pub fn request_termination() {
    TERM_REQUESTED.store(true, Ordering::Relaxed);
}

/// Clears the flag. Test-support only: real daemons terminate after a
/// drain, they do not resume.
pub fn reset_termination_flag() {
    TERM_REQUESTED.store(false, Ordering::Relaxed);
}

/// Delivers a real `SIGTERM` to the current process. Test-support: lets
/// the signal path be exercised end-to-end without a second process.
#[cfg(unix)]
pub fn raise_sigterm_for_test() {
    // safety: `raise` is the C standard library call delivering a signal
    // to the calling process; SIGTERM is a valid signal number and the
    // handler installed above is async-signal-safe.
    unsafe {
        ffi::raise(SIGTERM);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole lifecycle because the flag is global
    // process state: parallel test threads must not observe each other's
    // resets.
    #[test]
    fn sigterm_sets_the_flag_and_cooperative_path_matches() {
        reset_termination_flag();
        assert!(!termination_requested());

        // Cooperative path.
        request_termination();
        assert!(termination_requested());
        reset_termination_flag();
        assert!(!termination_requested());

        // Kernel path: install the handler, deliver a real SIGTERM.
        #[cfg(unix)]
        {
            install_term_handler();
            install_term_handler(); // idempotent
            raise_sigterm_for_test();
            assert!(
                termination_requested(),
                "a delivered SIGTERM must set the drain flag"
            );
            reset_termination_flag();
        }
    }
}
