//! Streaming and batch statistics used across feature-engineering operations.

/// Welford online accumulator for mean/variance plus min/max/sum.
///
/// This is the workhorse behind Lumen's `ApplyAggregates` operation: a single
/// pass over a group of packets yields count, mean, variance, standard
/// deviation, min, max, and sum.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator (parallel reduction; Chan et al. formula).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance; 0 when fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// Batch summary of a slice: adds order statistics to [`OnlineStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
    pub median: f64,
    pub sum: f64,
}

impl Summary {
    /// Computes a full summary of `xs`; all-zero when `xs` is empty.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                sum: 0.0,
            };
        }
        let mut acc = OnlineStats::new();
        for &x in xs {
            acc.push(x);
        }
        Summary {
            count: xs.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: acc.min(),
            max: acc.max(),
            median: quantile(xs, 0.5),
            sum: acc.sum(),
        }
    }
}

/// Quantile `q` in `[0, 1]` of `xs` using linear interpolation between order
/// statistics; 0 for an empty slice. Does not require `xs` to be sorted.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    quantile_sorted(&sorted, q)
}

/// Quantile of an already-sorted slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median absolute deviation (robust spread).
pub fn mad(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let med = quantile(xs, 0.5);
    let devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    quantile(&devs, 0.5)
}

/// Median of a slice.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Pearson correlation of two equal-length slices; 0 when degenerate.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        0.0
    } else {
        sxy / (sxx.sqrt() * syy.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.sum(), 40.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let acc = OnlineStats::new();
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
        assert_eq!(acc.min(), 0.0);
        assert_eq!(acc.max(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert!((left.min() - whole.min()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn median_even_count() {
        assert!((median(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mad_of_constant_is_zero() {
        assert_eq!(mad(&[5.0; 10]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }
}
