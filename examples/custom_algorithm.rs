//! Prototyping a *new* anomaly-detection algorithm with the framework
//! (the paper's first use case, §3.1 step 1): describe the idea as a
//! template, get type checking, profiling, and evaluation for free, and
//! compare head-to-head against a published algorithm on the same dataset.
//!
//! The "new" idea here: score connections with a mix of Zeek-state one-hots,
//! per-connection entropy-ish volumetrics, and a gradient of time features,
//! fed to a gaussian NB with a correlation filter.
//!
//! Run with: `cargo run --release --example custom_algorithm`

use std::collections::HashMap;
use std::sync::Arc;

use lumen::prelude::*;

fn main() {
    let capture = build_dataset(DatasetId::F7, SynthScale::default(), 5);
    let (metas, _) = parse_capture(capture.link, &capture.packets, 4);
    let labels: Vec<u8> = capture
        .labels
        .iter()
        .map(|l| u8::from(l.malicious))
        .collect();
    let n = labels.len();
    let source = Data::Packets(Arc::new(PacketData {
        link: capture.link,
        metas,
        labels,
        tags: vec![0; n],
    }));

    // --- The operator's new algorithm, as a template -------------------------
    let my_algorithm = serde_json::json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
        {"func": "ConnExtract", "input": ["conns"], "output": "t_state",
         "fields": ["state", "history_len", "resp_port_wellknown"]},
        {"func": "ConnExtract", "input": ["conns"], "output": "t_vol",
         "fields": ["duration", "bandwidth", "symmetry", "orig_pkts", "resp_pkts",
                     "iat_mean", "iat_std", "orig_len_mean", "resp_len_std"]},
        {"func": "Concat", "input": ["t_state", "t_vol"], "output": "features"},
        {"func": "TrainTestSplit", "input": ["features"], "output": "split",
         "train_frac": 0.7, "seed": 9},
        {"func": "TakeTrain", "input": ["split"], "output": "train"},
        {"func": "TakeTest", "input": ["split"], "output": "test"},
        {"func": "Model", "input": [], "output": "clf",
         "model_type": "GaussianNB", "normalize": "zscore", "corr_filter": 0.97},
        {"func": "Train", "input": ["clf", "train"], "output": "trained"},
        {"func": "Predict", "input": ["trained", "test"], "output": "preds"},
        {"func": "Evaluate", "input": ["preds"], "output": "report"}
    ]);

    let pipeline = Pipeline::parse(&my_algorithm, &[("source", DataKind::Packets)])
        .expect("the template type-checks before anything runs");
    let mut bindings = HashMap::new();
    bindings.insert("source".to_string(), source.clone());
    let mut out = pipeline.run(bindings).expect("runs");
    let Data::Report(mine) = out.take("report").unwrap() else {
        unreachable!()
    };

    // --- The published baseline (A14, Zeek-features + RF) on the same data --
    let a14 = algorithm(AlgorithmId::A14);
    let features = a14.extract_features(&source).expect("features");
    // Same split discipline.
    let split = serde_json::json!([
        {"func": "TrainTestSplit", "input": ["features"], "output": "split",
         "train_frac": 0.7, "seed": 9},
        {"func": "TakeTrain", "input": ["split"], "output": "train"},
        {"func": "TakeTest", "input": ["split"], "output": "test"}
    ]);
    let p = Pipeline::parse(&split, &[("features", DataKind::Table)]).unwrap();
    let mut b = HashMap::new();
    b.insert("features".to_string(), Data::Table(Arc::clone(&features)));
    let mut halves = p.run(b).unwrap();
    let Data::Table(train) = halves.take("train").unwrap() else {
        unreachable!()
    };
    let Data::Table(test) = halves.take("test").unwrap() else {
        unreachable!()
    };
    let trained = a14.train(&train, 9).expect("train baseline");
    let (baseline, _) = a14.evaluate(&trained, &test).expect("evaluate baseline");

    println!("head-to-head on F7 (CTU-like Mirai + telnet brute force):\n");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9}",
        "algorithm", "precision", "recall", "f1", "auc"
    );
    println!(
        "{:<22} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        "my-new-algorithm", mine.precision, mine.recall, mine.f1, mine.auc
    );
    println!(
        "{:<22} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
        "A14 (Zeek + RF)", baseline.precision, baseline.recall, baseline.f1, baseline.auc
    );
    println!(
        "\nthe prototype took one JSON template; evaluation, type checking,\n\
         profiling, and the baseline comparison came from the framework."
    );
}
