//! The paper's §6 generality claim, demonstrated: "if we were to extend our
//! framework to do ML-based device classification, we would only need to add
//! a new dataset ... the rest of the functions/modules would be used
//! directly."
//!
//! Here the *same* operations that power anomaly detection — GroupBy,
//! TimeSlice, ApplyAggregates, Model, Train — classify which traffic comes
//! from cameras (vs. other IoT devices). Only the labels changed.
//!
//! Run with: `cargo run --release --example device_classification`

use std::collections::HashMap;
use std::sync::Arc;

use lumen::prelude::*;

fn main() {
    // Purely benign traffic: a Kitsune-style camera LAN (P-family recipe
    // before any attack window) is closest, but any dataset works — we use
    // F0 and relabel by device behaviour instead of maliciousness.
    let capture = build_dataset(DatasetId::F0, SynthScale::default(), 77);
    let (metas, _) = parse_capture(capture.link, &capture.packets, 4);

    // New task = new labels: 1 if the packet belongs to a camera stream
    // (long-lived RTSP-style sessions to port 8554), else 0. Everything
    // downstream is the unmodified framework.
    let labels: Vec<u8> = metas
        .iter()
        .map(|m| {
            let is_cam =
                m.transport.dst_port() == Some(8554) || m.transport.src_port() == Some(8554);
            u8::from(is_cam)
        })
        .collect();
    let cam_pkts = labels.iter().filter(|&&l| l == 1).count();
    println!(
        "{} packets, {} from cameras ({:.1}%)",
        metas.len(),
        cam_pkts,
        100.0 * cam_pkts as f64 / metas.len() as f64
    );
    let n = labels.len();
    let source = Data::Packets(Arc::new(PacketData {
        link: capture.link,
        metas,
        labels,
        tags: vec![0; n],
    }));

    // Classify per source device over 5-second windows, using only
    // *behavioural* features (sizes, timing, volume) — no ports, so the
    // model has to learn the traffic shape, not the label definition.
    let template = serde_json::json!([
        {"func": "GroupBy", "input": ["source"], "output": "by_src", "key": "srcIp"},
        {"func": "TimeSlice", "input": ["by_src"], "output": "windows", "window_s": 5.0},
        {"func": "ApplyAggregates", "input": ["windows"], "output": "features",
         "aggs": [
            {"fn": "count"},
            {"fn": "rate"},
            {"fn": "bandwidth"},
            {"fn": "mean", "field": "wire_len"},
            {"fn": "std", "field": "wire_len"},
            {"fn": "median", "field": "wire_len"},
            {"fn": "mean", "field": "payload_len"},
            {"fn": "distinct", "field": "dst_ip_u32"}
         ]},
        {"func": "TrainTestSplit", "input": ["features"], "output": "split",
         "train_frac": 0.7, "seed": 4},
        {"func": "TakeTrain", "input": ["split"], "output": "train"},
        {"func": "TakeTest", "input": ["split"], "output": "test"},
        {"func": "Model", "input": [], "output": "clf",
         "model_type": "RandomForest", "n_trees": 25},
        {"func": "Train", "input": ["clf", "train"], "output": "trained"},
        {"func": "Predict", "input": ["trained", "test"], "output": "preds"},
        {"func": "Evaluate", "input": ["preds"], "output": "report"}
    ]);

    let pipeline =
        Pipeline::parse(&template, &[("source", DataKind::Packets)]).expect("type-checks");
    let mut bindings = HashMap::new();
    bindings.insert("source".to_string(), source);
    let mut out = pipeline.run(bindings).expect("runs");
    let Data::Report(report) = out.take("report").unwrap() else {
        unreachable!()
    };
    println!(
        "\ndevice classification (is-it-a-camera?) on held-out windows:\n\
         precision {:.3}, recall {:.3}, F1 {:.3}, AUC {:.3}",
        report.precision, report.recall, report.f1, report.auc
    );
    println!(
        "\nzero framework changes were needed — the task swap is exactly the\n\
         paper's §6 argument for Lumen's generality."
    );
}
