//! The paper's Figure 3: Kitsune's logical pipeline expressed in Lumen's
//! template language — grouping by source MAC / channel / socket, damped
//! incremental statistics over multiple λ windows, 2D correlation features,
//! and the KitNET ensemble of autoencoders — plus the engine's per-operation
//! time/memory profile.
//!
//! Run with: `cargo run --release --example kitsune_pipeline`

use std::collections::HashMap;
use std::sync::Arc;

use lumen::prelude::*;

fn main() {
    // A Kitsune-style camera network with a SYN-flood segment (P2).
    let capture = build_dataset(DatasetId::P2, SynthScale::small(), 3);
    let stride = (capture.len() / 2500).max(1);
    let packets: Vec<CapturedPacket> = capture.packets.iter().step_by(stride).cloned().collect();
    let labels_raw: Vec<u8> = capture
        .labels
        .iter()
        .step_by(stride)
        .map(|l| u8::from(l.malicious))
        .collect();
    let (metas, _) = parse_capture(capture.link, &packets, 4);
    let n = metas.len();
    println!(
        "{n} packets ({} malicious)",
        labels_raw.iter().filter(|&&l| l == 1).count()
    );
    let source = Data::Packets(Arc::new(PacketData {
        link: capture.link,
        metas,
        labels: labels_raw,
        tags: vec![0; n],
    }));

    // Kitsune's pipeline, verbatim from the algorithm catalog (A06).
    let a06 = algorithm(AlgorithmId::A06);
    println!("\nKitsune feature template (Figure 3 as a Lumen template):");
    println!(
        "{}",
        serde_json::to_string_pretty(&a06.feature_template).unwrap()
    );

    let pipeline = a06.feature_pipeline().expect("compiles");
    let mut bindings = HashMap::new();
    bindings.insert("source".to_string(), source.clone());
    let out = pipeline.run(bindings).expect("runs");
    println!("\nengine profile:");
    print!("{}", out.profile_table());

    // Train KitNET on the benign prefix and score everything.
    let features = a06.extract_features(&source).expect("features");
    println!(
        "\nfeature table: {} rows x {} columns",
        features.rows(),
        features.cols()
    );
    let trained = a06.train(&features, 1).expect("train");
    let (report, preds) = a06.evaluate(&trained, &features).expect("evaluate");
    println!(
        "training-set evaluation: precision {:.3}, recall {:.3}, AUC {:.3}",
        report.precision, report.recall, report.auc
    );

    // Anomaly-score timeline: mean score per decile of the capture.
    println!("\nmean anomaly score per capture decile (attack starts ~1/3 in):");
    let chunk = preds.scores.len().div_ceil(10);
    for (i, window) in preds.scores.chunks(chunk).enumerate() {
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        let bar = "#".repeat((mean * 400.0).clamp(0.0, 60.0) as usize);
        println!("  decile {i}: {mean:.4} {bar}");
    }
}
