//! The paper's §2.2 operator scenario, resolved with Lumen: a small-business
//! operator wants to detect brute-force and DoS attacks on IoT devices and
//! needs to know *which published algorithm to deploy*. Instead of an
//! inconclusive literature search (Figure 1), the benchmarking suite answers
//! directly with a per-attack comparison over faithful runs.
//!
//! Run with: `cargo run --release --example operator_scenario`

use std::sync::Arc;

use lumen::bench::exp::conn_algos;
use lumen::bench::render::heatmap;
use lumen::prelude::*;

fn main() {
    // The operator cares about brute force and DoS: the CICIDS-like F0
    // (brute force) and F1 (DoS) datasets contain exactly those attacks.
    let registry = Arc::new(DatasetRegistry::new(SynthScale::default(), 7));
    let runner = Runner::new(
        registry,
        RunConfig {
            per_attack: true,
            threads: 4,
            ..RunConfig::default()
        },
    );

    println!("operator question: which algorithm best detects brute force and DoS?\n");
    let run = runner.run_matrix(&conn_algos(), &[DatasetId::F0, DatasetId::F1], false);
    let store = &run.store;

    let attacks = [
        AttackKind::BruteForceFtp,
        AttackKind::BruteForceSsh,
        AttackKind::DosHulk,
        AttackKind::DosSlowloris,
        AttackKind::DosGoldenEye,
    ];
    let rows: Vec<String> = conn_algos().iter().map(|a| a.code().to_string()).collect();
    let cols: Vec<String> = attacks.iter().map(|a| a.name().to_string()).collect();
    let cells: Vec<Vec<Option<f64>>> = conn_algos()
        .iter()
        .map(|id| {
            attacks
                .iter()
                .map(|a| store.attack_precision(id.code(), a.name()))
                .collect()
        })
        .collect();
    print!(
        "{}",
        heatmap(
            "per-attack precision on the operator's attack classes",
            &rows,
            &cols,
            &cells
        )
    );

    // Recommend: the algorithm with the best mean precision over the
    // attacks of interest.
    let mut best: Option<(String, f64)> = None;
    for (r, id) in conn_algos().iter().enumerate() {
        let vals: Vec<f64> = cells[r].iter().flatten().copied().collect();
        if vals.is_empty() {
            continue;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if best.as_ref().is_none_or(|(_, b)| mean > *b) {
            best = Some((id.code().to_string(), mean));
        }
    }
    if let Some((algo, mean)) = best {
        println!("\nrecommendation: deploy {algo} (mean precision {mean:.2} on these attacks)");
    }
    println!(
        "\n(The same comparison from the literature alone was impossible: the\n\
         relevant papers share almost no evaluation datasets — Figure 1a.)"
    );
}
