//! Quickstart: generate a labeled IoT capture, store it as a real pcap,
//! read it back, describe a detection pipeline in the Lumen template
//! language, train it, and evaluate — the full life cycle in one file.
//!
//! Run with: `cargo run --release --example quickstart`

use std::collections::HashMap;
use std::sync::Arc;

use lumen::prelude::*;

fn main() {
    // --- 1. A labeled capture ------------------------------------------------
    // F4 mirrors a CTU IoT scenario: benign camera/sensor traffic plus a
    // Mirai infection (telnet scanning + C2 heartbeats).
    let capture = build_dataset(DatasetId::F4, SynthScale::default(), 42);
    println!(
        "generated {} packets, {:.1}% malicious, attacks: {:?}",
        capture.len(),
        capture.malicious_fraction() * 100.0,
        capture.attacks_present()
    );

    // --- 2. Round-trip through a real pcap file ------------------------------
    let pcap_path = std::env::temp_dir().join("lumen_quickstart.pcap");
    std::fs::write(&pcap_path, capture.to_pcap_bytes()).expect("write pcap");
    let bytes = std::fs::read(&pcap_path).expect("read pcap");
    let (link, packets) = lumen::net::pcap::from_bytes(&bytes).expect("parse pcap");
    println!(
        "round-tripped {} packets through {}",
        packets.len(),
        pcap_path.display()
    );

    // --- 3. Parse into the framework's packet source -------------------------
    let (metas, stats) = parse_capture(link, &packets, 4);
    assert!(stats.is_clean(), "clean capture should decode fully");
    let labels: Vec<u8> = capture
        .labels
        .iter()
        .map(|l| u8::from(l.malicious))
        .collect();
    let tags: Vec<u32> = vec![0; labels.len()];
    let source = Data::Packets(Arc::new(PacketData {
        link,
        metas,
        labels,
        tags,
    }));

    // --- 4. Describe an algorithm as a template (the paper's Figure 4) -------
    let template = serde_json::json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
        {"func": "ConnExtract", "input": ["conns"], "output": "features",
         "fields": ["duration", "orig_pkts", "resp_pkts", "orig_bytes", "resp_bytes",
                     "bandwidth", "iat_mean", "iat_std", "resp_port", "state"]},
        {"func": "TrainTestSplit", "input": ["features"], "output": "split",
         "train_frac": 0.7, "seed": 1},
        {"func": "TakeTrain", "input": ["split"], "output": "train"},
        {"func": "TakeTest", "input": ["split"], "output": "test"},
        {"func": "Model", "input": [], "output": "clf",
         "model_type": "RandomForest", "n_trees": 30},
        {"func": "Train", "input": ["clf", "train"], "output": "trained"},
        {"func": "Predict", "input": ["trained", "test"], "output": "preds"},
        {"func": "Evaluate", "input": ["preds"], "output": "report"}
    ]);
    let pipeline =
        Pipeline::parse(&template, &[("source", DataKind::Packets)]).expect("template type-checks");

    // --- 5. Run and inspect ---------------------------------------------------
    let mut bindings = HashMap::new();
    bindings.insert("source".to_string(), source);
    let mut out = pipeline.run(bindings).expect("pipeline runs");

    println!("\nper-operation profile (time + memory, §3.2):");
    print!("{}", out.profile_table());

    let Data::Report(report) = out.take("report").expect("report produced") else {
        unreachable!()
    };
    println!(
        "\nheld-out results: precision {:.3}, recall {:.3}, F1 {:.3}, AUC {:.3}",
        report.precision, report.recall, report.f1, report.auc
    );
    std::fs::remove_file(&pcap_path).ok();
}
