//! The paper's §5.4 algorithm-synthesis experiment, interactively: a greedy
//! brute-force search over feature blocks × models (with normalization and
//! correlated-feature removal in the grid) that discovers a connection-level
//! detector with better precision than the published pipelines it borrows
//! from.
//!
//! Run with: `cargo run --release --example synthesize_algorithm`

use std::sync::Arc;

use lumen::ml::search::{cv_f1, ModelSpec};
use lumen::prelude::*;

/// Feature blocks borrowed from the published algorithms' pipelines.
fn feature_blocks() -> Vec<(&'static str, serde_json::Value)> {
    vec![
        (
            "zeek-conn (A14)",
            serde_json::json!([
                {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
                {"func": "ConnExtract", "input": ["conns"], "output": "features",
                 "fields": ["duration", "orig_bytes", "resp_bytes", "orig_pkts",
                             "resp_pkts", "history_len", "resp_port", "proto", "state"]}
            ]),
        ),
        (
            "first-n (A07)",
            serde_json::json!([
                {"func": "FlowAssemble", "input": ["source"], "output": "conns", "first_n": 32},
                {"func": "FirstNStats", "input": ["conns"], "output": "features",
                 "n": 32, "include_raw": false}
            ]),
        ),
        (
            "discriminators (A13)",
            serde_json::json!([
                {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
                {"func": "ConnExtract", "input": ["conns"], "output": "features",
                 "fields": ["duration", "bandwidth", "symmetry", "iat_mean", "iat_std",
                             "orig_len_mean", "orig_len_std", "resp_len_mean",
                             "orig_syn", "orig_rst", "resp_rst", "orig_ttl_mean",
                             "resp_port_wellknown", "state"]}
            ]),
        ),
        (
            "mixed (A13 + A07)",
            serde_json::json!([
                {"func": "FlowAssemble", "input": ["source"], "output": "conns", "first_n": 32},
                {"func": "ConnExtract", "input": ["conns"], "output": "t1",
                 "fields": ["duration", "bandwidth", "symmetry", "iat_mean", "iat_std",
                             "orig_len_mean", "resp_len_mean", "orig_rst", "resp_rst",
                             "resp_port_wellknown", "state"]},
                {"func": "FirstNStats", "input": ["conns"], "output": "t2",
                 "n": 32, "include_raw": false},
                {"func": "Concat", "input": ["t1", "t2"], "output": "features"}
            ]),
        ),
    ]
}

fn main() {
    // Search data: a mix of two CTU-like scenarios (the search must not see
    // the final test day).
    let registry = DatasetRegistry::new(SynthScale::default(), 13);
    let train_ds = registry.get(DatasetId::F6);
    let held_out = registry.get(DatasetId::F7);

    let models = [
        ModelSpec::GaussianNb,
        ModelSpec::DecisionTree { max_depth: 12 },
        ModelSpec::RandomForest {
            n_trees: 30,
            max_depth: 12,
        },
        ModelSpec::Knn { k: 5 },
        ModelSpec::LogisticRegression { epochs: 30 },
    ];

    println!(
        "greedy search over {} feature blocks x {} models (3-fold CV F1):\n",
        feature_blocks().len(),
        models.len()
    );
    let mut leaderboard: Vec<(String, f64)> = Vec::new();
    let mut best: Option<(serde_json::Value, ModelSpec, f64)> = None;

    for (block_name, template) in feature_blocks() {
        let pipeline = Pipeline::parse(&template, &[("source", DataKind::Packets)]).unwrap();
        let mut bindings = std::collections::HashMap::new();
        bindings.insert("source".to_string(), train_ds.source.clone());
        let mut out = pipeline.run(bindings).unwrap();
        let Data::Table(features) = out.take("features").unwrap() else {
            unreachable!()
        };
        let data = features.to_dataset().unwrap();
        for spec in &models {
            let score = cv_f1(spec, &data, 3, 17).unwrap_or(0.0);
            leaderboard.push((format!("{block_name} + {}", spec.label()), score));
            if best.as_ref().is_none_or(|(_, _, b)| score > *b) {
                best = Some((template.clone(), spec.clone(), score));
            }
        }
    }

    leaderboard.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, score) in &leaderboard {
        println!("  {score:.3}  {name}");
    }

    let (template, spec, score) = best.expect("non-empty search");
    println!(
        "\nwinner: {} (CV F1 {score:.3}); validating on a held-out day (F7)...",
        spec.label()
    );

    // Retrain the winner on all of F6, test on F7.
    let pipeline = Pipeline::parse(&template, &[("source", DataKind::Packets)]).unwrap();
    let extract = |src: &Data| {
        let mut b = std::collections::HashMap::new();
        b.insert("source".to_string(), src.clone());
        let mut o = pipeline.run(b).unwrap();
        let Data::Table(t) = o.take("features").unwrap() else {
            unreachable!()
        };
        t
    };
    let train = extract(&train_ds.source);
    let test = extract(&held_out.source);
    let mut model = spec.build(17);
    model.fit(&train.to_dataset().unwrap()).unwrap();
    let preds = model.predict(&test.x);
    let c = lumen::ml::metrics::confusion(&preds, &test.labels);
    println!(
        "held-out F7: precision {:.3}, recall {:.3}, F1 {:.3}",
        c.precision(),
        c.recall(),
        c.f1()
    );
    let _ = Arc::strong_count(&test);
}
