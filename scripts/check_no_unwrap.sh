#!/usr/bin/env bash
# Panic-audit gate: no new `.unwrap()` / `.expect(` in the packet-decode and
# flow-assembly hot paths (crates/lumen-net, crates/lumen-flow).
#
# These crates ingest hostile bytes; a reachable panic there is a
# denial-of-service primitive (see the no-panic decode work in the ingest
# hardening PR). Test code is exempt (`#[cfg(test)]` modules and `tests/`
# trees), and a line may opt out with an explicit justification marker:
#
#     .expect("..."); // panic-audit: allowed (<why this cannot fire>)
#
# Exit 0 = clean, 1 = violations listed on stdout.

set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
for src in crates/lumen-net/src crates/lumen-flow/src; do
    while IFS= read -r file; do
        # Strip everything from the first `#[cfg(test)]` to EOF (test modules
        # sit at the bottom of each file, repo convention), drop comment-only
        # lines, then look for panicking calls without the allow marker.
        hits=$(awk '
            /#\[cfg\(test\)\]/ { exit }
            { print NR": "$0 }
        ' "$file" \
            | grep -vE '^[0-9]+: *//' \
            | grep -E '\.unwrap\(\)|\.expect\(' \
            | grep -v 'panic-audit: allowed' || true)
        if [ -n "$hits" ]; then
            fail=1
            echo "panic-audit: $file has unreviewed unwrap/expect in a hot path:"
            echo "$hits" | sed 's/^/    /'
        fi
    done < <(find "$src" -name '*.rs' | sort)
done

if [ "$fail" -ne 0 ]; then
    echo "panic-audit: use error returns, or justify with '// panic-audit: allowed (...)'" >&2
    exit 1
fi
echo "panic-audit: lumen-net and lumen-flow hot paths are unwrap/expect-free"
