#!/usr/bin/env bash
# Unsafe-audit gate: `unsafe` is allowed in exactly one file — the SIMD
# kernel module — and every unsafe site there must discharge its obligation
# with a `// safety:` comment.
#
# The workspace is `#![forbid(unsafe_code)]` everywhere except
# `lumen-ml`, which is `#![deny(unsafe_code)]` with a single file-level
# `#![allow(unsafe_code)]` carve-out in `crates/lumen-ml/src/kernels/simd.rs`
# (runtime-dispatched AVX2/NEON intrinsics; see DESIGN.md §4j). This gate
# enforces the policy structurally:
#
#   1. no `unsafe` token outside the carve-out file (strings/comments
#      excluded by a best-effort code-token match);
#   2. no `#![allow(unsafe_code)]` outside the carve-out file;
#   3. inside the carve-out file, every `unsafe fn` / `unsafe {` line is
#      preceded (within 8 lines) by a `// safety:` comment;
#   4. the lumen-ml crate root still carries `#![deny(unsafe_code)]`.
#
# Exit 0 = clean, 1 = violations listed on stdout.

set -euo pipefail

cd "$(dirname "$0")/.."

CARVEOUT="crates/lumen-ml/src/kernels/simd.rs"
fail=0

# 1+2: unsafe tokens and allow attributes outside the carve-out.
while IFS= read -r file; do
    [ "$file" = "$CARVEOUT" ] && continue
    hits=$(grep -nE '(^|[^a-zA-Z0-9_"])unsafe([^a-zA-Z0-9_]|$)' "$file" \
        | grep -vE '^[0-9]+: *//' \
        | grep -vE 'forbid\(unsafe_code\)|deny\(unsafe_code\)' \
        | grep -vE '"[^"]*unsafe[^"]*"' || true)
    if [ -n "$hits" ]; then
        fail=1
        echo "unsafe-audit: $file uses unsafe outside the SIMD carve-out:"
        echo "$hits" | sed 's/^/    /'
    fi
done < <(git ls-files 'crates/*/src/*.rs' 'crates/*/src/**/*.rs' 'src/*.rs' 'src/**/*.rs' | sort)

# 3: every unsafe site in the carve-out has a nearby `// safety:` comment.
if [ -f "$CARVEOUT" ]; then
    hits=$(awk '
        /\/\/ *safety:/ { last_safety = NR }
        /^ *\/\// { next }
        /(^|[^a-zA-Z0-9_"])unsafe( fn | \{)/ {
            if (last_safety == 0 || NR - last_safety > 8) {
                print NR": "$0
            }
        }
    ' "$CARVEOUT")
    if [ -n "$hits" ]; then
        fail=1
        echo "unsafe-audit: $CARVEOUT has unsafe sites without a // safety: comment:"
        echo "$hits" | sed 's/^/    /'
    fi
else
    fail=1
    echo "unsafe-audit: carve-out file $CARVEOUT is missing"
fi

# 4: the crate root must keep deny(unsafe_code) (the carve-out is the only
# allow), and every other crate root must keep forbid(unsafe_code).
if ! grep -q '#!\[deny(unsafe_code)\]' crates/lumen-ml/src/lib.rs; then
    fail=1
    echo "unsafe-audit: crates/lumen-ml/src/lib.rs lost #![deny(unsafe_code)]"
fi
while IFS= read -r libfile; do
    [ "$libfile" = "crates/lumen-ml/src/lib.rs" ] && continue
    if ! grep -q 'forbid(unsafe_code)' "$libfile"; then
        fail=1
        echo "unsafe-audit: $libfile lost #![forbid(unsafe_code)]"
    fi
done < <(git ls-files 'crates/*/src/lib.rs' | sort)

if [ "$fail" -ne 0 ]; then
    echo "unsafe-audit: keep unsafe inside $CARVEOUT and annotate every site with '// safety: ...'" >&2
    exit 1
fi
echo "unsafe-audit: unsafe confined to $CARVEOUT, all sites carry safety comments"
