#!/usr/bin/env bash
# Unsafe-audit gate: `unsafe` is allowed in exactly two files — the SIMD
# kernel module and the signal-handler FFI shim — and every unsafe site
# there must discharge its obligation with a `// safety:` comment.
#
# The workspace is `#![forbid(unsafe_code)]` everywhere except `lumen-ml`
# and `lumen-util`, which are `#![deny(unsafe_code)]` with one file-level
# `#![allow(unsafe_code)]` carve-out each:
#
#   crates/lumen-ml/src/kernels/simd.rs   runtime-dispatched AVX2/NEON
#                                         intrinsics (DESIGN.md §4j)
#   crates/lumen-util/src/shutdown.rs     glibc signal(2)/raise(3) FFI for
#                                         the SIGTERM drain (DESIGN.md §4k)
#
# This gate enforces the policy structurally:
#
#   1. no `unsafe` token outside the carve-out files (strings/comments
#      excluded by a best-effort code-token match);
#   2. no `#![allow(unsafe_code)]` outside the carve-out files;
#   3. inside each carve-out file, every `unsafe fn` / `unsafe {` line is
#      preceded (within 8 lines) by a `// safety:` comment;
#   4. the lumen-ml and lumen-util crate roots still carry
#      `#![deny(unsafe_code)]`, and every other crate root keeps
#      `#![forbid(unsafe_code)]`.
#
# Exit 0 = clean, 1 = violations listed on stdout.

set -euo pipefail

cd "$(dirname "$0")/.."

CARVEOUTS=(
    "crates/lumen-ml/src/kernels/simd.rs"
    "crates/lumen-util/src/shutdown.rs"
)
DENY_ROOTS=(
    "crates/lumen-ml/src/lib.rs"
    "crates/lumen-util/src/lib.rs"
)
fail=0

in_list() {
    local needle="$1"
    shift
    local x
    for x in "$@"; do
        [ "$x" = "$needle" ] && return 0
    done
    return 1
}

# 1+2: unsafe tokens and allow attributes outside the carve-outs.
while IFS= read -r file; do
    in_list "$file" "${CARVEOUTS[@]}" && continue
    hits=$(grep -nE '(^|[^a-zA-Z0-9_"])unsafe([^a-zA-Z0-9_]|$)' "$file" \
        | grep -vE '^[0-9]+: *//' \
        | grep -vE 'forbid\(unsafe_code\)|deny\(unsafe_code\)' \
        | grep -vE '"[^"]*unsafe[^"]*"' || true)
    if [ -n "$hits" ]; then
        fail=1
        echo "unsafe-audit: $file uses unsafe outside the carve-outs:"
        echo "$hits" | sed 's/^/    /'
    fi
done < <(git ls-files 'crates/*/src/*.rs' 'crates/*/src/**/*.rs' 'src/*.rs' 'src/**/*.rs' | sort)

# 3: every unsafe site in each carve-out has a nearby `// safety:` comment.
for carveout in "${CARVEOUTS[@]}"; do
    if [ -f "$carveout" ]; then
        hits=$(awk '
            /\/\/ *safety:/ { last_safety = NR }
            /^ *\/\// { next }
            /(^|[^a-zA-Z0-9_"])unsafe( fn | \{)/ {
                if (last_safety == 0 || NR - last_safety > 8) {
                    print NR": "$0
                }
            }
        ' "$carveout")
        if [ -n "$hits" ]; then
            fail=1
            echo "unsafe-audit: $carveout has unsafe sites without a // safety: comment:"
            echo "$hits" | sed 's/^/    /'
        fi
    else
        fail=1
        echo "unsafe-audit: carve-out file $carveout is missing"
    fi
done

# 4: carve-out crate roots must keep deny(unsafe_code) (the carve-outs are
# the only allows), and every other crate root must keep forbid(unsafe_code).
for denyroot in "${DENY_ROOTS[@]}"; do
    if ! grep -q '#!\[deny(unsafe_code)\]' "$denyroot"; then
        fail=1
        echo "unsafe-audit: $denyroot lost #![deny(unsafe_code)]"
    fi
done
while IFS= read -r libfile; do
    in_list "$libfile" "${DENY_ROOTS[@]}" && continue
    if ! grep -q 'forbid(unsafe_code)' "$libfile"; then
        fail=1
        echo "unsafe-audit: $libfile lost #![forbid(unsafe_code)]"
    fi
done < <(git ls-files 'crates/*/src/lib.rs' | sort)

if [ "$fail" -ne 0 ]; then
    echo "unsafe-audit: keep unsafe inside the carve-outs and annotate every site with '// safety: ...'" >&2
    exit 1
fi
echo "unsafe-audit: unsafe confined to ${CARVEOUTS[*]}, all sites carry safety comments"
