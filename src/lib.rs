//! # Lumen
//!
//! A Rust implementation of **Lumen: A Framework for Developing and
//! Evaluating ML-Based IoT Network Anomaly Detection** (CoNEXT 2022) —
//! a modular development framework plus a benchmarking suite for ML-based
//! IoT network-layer intrusion detection.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`net`] — wire formats, pcap I/O, packet summaries;
//! * [`flow`] — Zeek-style connection tracking;
//! * [`synth`] — synthetic IoT traffic, attacks, and the 15 dataset recipes;
//! * [`ml`] — from-scratch ML (trees, forests, SVMs, GMMs, autoencoders,
//!   KitNET, metrics);
//! * [`core`] — the framework itself: data model, ~30 configurable
//!   operations, the JSON template language, and the type-checking,
//!   profiling execution engine;
//! * [`algorithms`] — the 16 published algorithms (A00–A15) + synthesized
//!   variants as Lumen pipelines;
//! * `bench` (re-export of `lumen_bench_suite`) — the benchmarking suite: registries, faithful runner,
//!   result store, figure renderers.
//!
//! ## Quickstart
//!
//! ```
//! use lumen::prelude::*;
//! use std::collections::HashMap;
//! use std::sync::Arc;
//!
//! // 1. A labeled capture (here: synthetic CTU-like Mirai traffic).
//! let capture = build_dataset(DatasetId::F4, SynthScale::small(), 42);
//!
//! // 2. Parse it into the framework's packet source.
//! let (metas, _stats) = parse_capture(capture.link, &capture.packets, 4);
//! let labels: Vec<u8> = capture.labels.iter().map(|l| u8::from(l.malicious)).collect();
//! let tags = vec![0u32; labels.len()];
//! let source = Data::Packets(Arc::new(PacketData {
//!     link: capture.link, metas, labels, tags,
//! }));
//!
//! // 3. Describe an anomaly detector as a template pipeline (Figure 4).
//! let template = serde_json::json!([
//!     {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
//!     {"func": "ConnExtract", "input": ["conns"], "output": "features",
//!      "fields": ["duration", "orig_pkts", "resp_pkts", "bandwidth", "state"]},
//!     {"func": "Model", "input": [], "output": "clf", "model_type": "RandomForest"},
//!     {"func": "Train", "input": ["clf", "features"], "output": "trained"}
//! ]);
//! let pipeline = Pipeline::parse(&template, &[("source", DataKind::Packets)]).unwrap();
//!
//! // 4. Run it.
//! let mut bindings = HashMap::new();
//! bindings.insert("source".to_string(), source);
//! let mut out = pipeline.run(bindings).unwrap();
//! let trained = out.take("trained").unwrap();
//! assert_eq!(trained.kind(), DataKind::Trained);
//! ```

#![forbid(unsafe_code)]

pub use lumen_algorithms as algorithms;
pub use lumen_bench_suite as bench;
pub use lumen_core as core;
pub use lumen_flow as flow;
pub use lumen_ml as ml;
pub use lumen_net as net;
pub use lumen_synth as synth;
pub use lumen_util as util;

/// Common imports for applications built on Lumen.
pub mod prelude {
    pub use lumen_algorithms::{algorithm, all_algorithms, Algorithm, AlgorithmId, Granularity};
    pub use lumen_bench_suite::{DatasetRegistry, ResultStore, RunConfig, Runner};
    pub use lumen_core::data::{Data, DataKind, PacketData};
    pub use lumen_core::par::parse_capture;
    pub use lumen_core::{Pipeline, Table};
    pub use lumen_net::{CapturedPacket, LinkType, PacketMeta};
    pub use lumen_synth::{build_dataset, AttackKind, DatasetId, LabeledCapture, SynthScale};
}
