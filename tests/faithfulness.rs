//! The benchmark's faithfulness rules (§3.3), checked as invariants over
//! the real runner.

use std::sync::Arc;

use lumen::bench::{DatasetRegistry, RunConfig, Runner};
use lumen::prelude::*;

fn runner() -> Runner {
    let registry = Arc::new(DatasetRegistry::new(SynthScale::small(), 5).with_max_packets(1000));
    Runner::new(
        registry,
        RunConfig {
            threads: 2,
            ..RunConfig::default()
        },
    )
}

#[test]
fn matrix_never_pairs_across_granularities() {
    let r = runner();
    let run = r.run_matrix(
        &[AlgorithmId::A06, AlgorithmId::A14],
        &[DatasetId::F4, DatasetId::P2],
        true,
    );
    let store = &run.store;
    // Every cross-granularity pair must be accounted for as a skip, not
    // silently absent.
    assert!(run.journal.skipped_count() > 0);
    assert_eq!(run.journal.failed_count(), 0);
    for row in store.rows() {
        match row.algo.as_str() {
            "A06" => {
                assert!(row.train.starts_with('P'), "A06 trained on {}", row.train);
                assert!(row.test.starts_with('P'));
            }
            "A14" => {
                assert!(row.train.starts_with('F'), "A14 trained on {}", row.train);
                assert!(row.test.starts_with('F'));
            }
            other => panic!("unexpected algo {other}"),
        }
    }
}

#[test]
fn restricted_algorithm_only_runs_on_its_dataset() {
    let r = runner();
    let store = r
        .run_matrix(&[AlgorithmId::A05], &DatasetId::ALL, false)
        .store;
    for row in store.rows() {
        assert_eq!(row.train, "P0");
    }
}

#[test]
fn wifi_dataset_only_hosts_kitsune() {
    let r = runner();
    let store = r
        .run_matrix(&AlgorithmId::PUBLISHED, &[DatasetId::P3], false)
        .store;
    let algos: std::collections::HashSet<&str> =
        store.rows().iter().map(|r| r.algo.as_str()).collect();
    assert_eq!(algos, std::collections::HashSet::from(["A06"]));
}

#[test]
fn metrics_are_bounded_and_consistent() {
    let r = runner();
    let store = r
        .run_matrix(
            &[AlgorithmId::A13, AlgorithmId::A15],
            &[DatasetId::F4, DatasetId::F9],
            true,
        )
        .store;
    assert!(!store.is_empty());
    for row in store.rows() {
        for v in [row.precision, row.recall, row.f1, row.accuracy, row.auc] {
            assert!((0.0..=1.0).contains(&v), "metric out of range: {row:?}");
        }
        assert!(row.n_test > 0);
        if row.attack.is_none() {
            assert!(row.n_train > 0);
            assert_eq!(
                row.wall_ms,
                row.extract_ms + row.train_ms + row.test_ms,
                "wall_ms must equal the stage sum: {row:?}"
            );
        }
    }
}

#[test]
fn per_attack_rows_only_name_attacks_in_the_dataset() {
    let r = runner();
    let mut cfg = r.config;
    cfg.per_attack = true;
    let r = Runner::new(Arc::clone(&r.registry), cfg);
    let rows = r.run_same(AlgorithmId::A14, DatasetId::F4).unwrap();
    let spec_attacks: Vec<&str> = DatasetId::F4
        .spec()
        .attacks
        .iter()
        .map(|a| a.name())
        .collect();
    for row in rows.iter().filter(|r| r.attack.is_some()) {
        let name = row.attack.as_deref().unwrap();
        assert!(
            spec_attacks.contains(&name),
            "unexpected attack {name} in F4 rows"
        );
    }
}

#[test]
fn same_dataset_split_is_seed_stable() {
    let r1 = runner();
    let r2 = runner();
    let a = r1.run_same(AlgorithmId::A14, DatasetId::F4).unwrap();
    let b = r2.run_same(AlgorithmId::A14, DatasetId::F4).unwrap();
    assert_eq!(a[0].precision, b[0].precision);
    assert_eq!(a[0].n_train, b[0].n_train);
}
