//! Cross-crate integration: the paper's Figure 4 template, end to end.

use std::collections::HashMap;
use std::sync::Arc;

use lumen::prelude::*;

fn source(id: DatasetId, seed: u64) -> (Data, LabeledCapture) {
    let capture = build_dataset(id, SynthScale::small(), seed);
    let (metas, stats) = parse_capture(capture.link, &capture.packets, 2);
    assert!(stats.is_clean(), "clean capture should decode fully");
    let labels: Vec<u8> = capture
        .labels
        .iter()
        .map(|l| u8::from(l.malicious))
        .collect();
    let n = labels.len();
    let data = Data::Packets(Arc::new(PacketData {
        link: capture.link,
        metas,
        labels,
        tags: vec![0; n],
    }));
    (data, capture)
}

#[test]
fn figure4_template_end_to_end() {
    let (src, _) = source(DatasetId::F1, 1);
    // The paper's Figure 4: Field Extract -> Groupby -> TimeSlice ->
    // ApplyAggregates -> model -> train (adapted to named params).
    let template = serde_json::json!([
        {"func": "FieldExtract", "input": ["source"], "output": "packets_t",
         "fields": ["src_ip_u32", "dst_ip_u32", "tcp_flags_bits", "wire_len"]},
        {"func": "GroupBy", "input": ["source"], "output": "grouped_packets", "key": "srcIp"},
        {"func": "TimeSlice", "input": ["grouped_packets"], "output": "sliced_packets",
         "window_s": 10.0},
        {"func": "ApplyAggregates", "input": ["sliced_packets"], "output": "features",
         "aggs": [
            {"fn": "count"},
            {"fn": "mean", "field": "wire_len"},
            {"fn": "bandwidth"},
            {"fn": "entropy", "field": "dst_port"}
         ]},
        {"func": "Model", "input": [], "output": "clf1",
         "model_type": "RandomForest", "n_trees": 10},
        {"func": "Train", "input": ["clf1", "features"], "output": "trained"}
    ]);
    let pipeline = Pipeline::parse(&template, &[("source", DataKind::Packets)]).unwrap();
    let mut bindings = HashMap::new();
    bindings.insert("source".to_string(), src);
    let mut out = pipeline.run(bindings).unwrap();
    assert_eq!(out.take("trained").unwrap().kind(), DataKind::Trained);
    // The unused per-packet table is still live (never consumed).
    assert!(out.outputs.contains_key("packets_t"));
    // Consumed intermediates are freed.
    assert!(!out.outputs.contains_key("grouped_packets"));
}

#[test]
fn profile_accounts_for_every_operation() {
    let (src, _) = source(DatasetId::F4, 2);
    let template = serde_json::json!([
        {"func": "FlowAssemble", "input": ["source"], "output": "conns"},
        {"func": "ConnExtract", "input": ["conns"], "output": "features",
         "fields": ["duration", "bandwidth"]}
    ]);
    let p = Pipeline::parse(&template, &[("source", DataKind::Packets)]).unwrap();
    let mut b = HashMap::new();
    b.insert("source".to_string(), src);
    let out = p.run(b).unwrap();
    assert_eq!(out.profile.len(), 2);
    assert_eq!(out.profile[0].op, "FlowAssemble");
    assert!(out.profile[0].output_bytes > 0);
}

#[test]
fn algorithms_compose_with_template_splits() {
    let (src, _) = source(DatasetId::F6, 3);
    let a15 = algorithm(AlgorithmId::A15);
    let features = a15.extract_features(&src).unwrap();
    let trained = a15.train(&features, 1).unwrap();
    let (report, preds) = a15.evaluate(&trained, &features).unwrap();
    assert_eq!(preds.preds.len(), features.rows());
    assert!(report.precision > 0.5);
}

#[test]
fn wifi_capture_only_supports_kitsune() {
    let (src, capture) = source(DatasetId::P3, 4);
    assert_eq!(capture.link, LinkType::Ieee80211);
    // Kitsune extracts fine.
    let a06 = algorithm(AlgorithmId::A06);
    let f = a06.extract_features(&src).unwrap();
    assert!(f.rows() > 100);
    // nPrint on dot11 frames produces all-missing IP sections.
    let a02 = algorithm(AlgorithmId::A02);
    assert!(!a02.supports_link(LinkType::Ieee80211));
}

#[test]
fn merged_dataset_tables_align_across_datasets() {
    // The §5.4 merged-training heuristic requires identical schemas across
    // datasets for the same algorithm.
    let (a, _) = source(DatasetId::F4, 5);
    let (b, _) = source(DatasetId::F8, 6);
    let a14 = algorithm(AlgorithmId::A14);
    let fa = a14.extract_features(&a).unwrap();
    let fb = a14.extract_features(&b).unwrap();
    assert_eq!(fa.names, fb.names);
    let merged = fa.vcat(&fb).unwrap();
    assert_eq!(merged.rows(), fa.rows() + fb.rows());
}
