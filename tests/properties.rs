//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::Arc;

use lumen::core::data::{Data, DataKind, PacketData};
use lumen::core::Pipeline;
use lumen::flow::{assemble, FlowConfig};
use lumen::ml::metrics::{confusion, roc_auc};
use lumen::net::builder::{tcp_packet, udp_packet, TcpParams, UdpParams};
use lumen::net::wire::tcp::TcpFlags;
use lumen::net::{LinkType, MacAddr, PacketMeta};

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    (1u8..=250, 0u8..=255, 0u8..=255, 1u8..=254).prop_map(|(a, b, c, d)| Ipv4Addr::new(a, b, c, d))
}

proptest! {
    /// Any TCP frame the builder produces parses back to the same fields
    /// with valid checksums.
    #[test]
    fn tcp_build_parse_roundtrip(
        src in arb_ip(),
        dst in arb_ip(),
        sport in 1u16..65535,
        dport in 1u16..65535,
        seq in any::<u32>(),
        flags_bits in 0u8..0x40,
        ttl in 1u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let frame = tcp_packet(TcpParams {
            src_mac: MacAddr::from_id(1),
            dst_mac: MacAddr::from_id(2),
            src_ip: src,
            dst_ip: dst,
            src_port: sport,
            dst_port: dport,
            seq,
            ack: 0,
            flags: TcpFlags(flags_bits),
            window: 1024,
            ttl,
            payload: &payload,
        });
        let meta = PacketMeta::parse(LinkType::Ethernet, 0, &frame).unwrap();
        let ip = meta.ipv4.as_ref().unwrap();
        prop_assert_eq!(ip.src, src);
        prop_assert_eq!(ip.dst, dst);
        prop_assert_eq!(ip.ttl, ttl);
        prop_assert_eq!(meta.transport.src_port(), Some(sport));
        prop_assert_eq!(meta.transport.dst_port(), Some(dport));
        prop_assert_eq!(meta.payload_len as usize, payload.len());
        prop_assert_eq!(meta.transport.tcp_flags().unwrap().0, flags_bits);
        // Checksums embedded by the builder verify.
        let eth = lumen::net::wire::EthernetFrame::new_checked(&frame[..]).unwrap();
        let ipp = lumen::net::wire::Ipv4Packet::new_checked(eth.payload()).unwrap();
        prop_assert!(ipp.verify_checksum());
    }

    /// Flow assembly partitions IP packets: every parsed packet index shows
    /// up in exactly one connection.
    #[test]
    fn flow_assembly_partitions_packets(
        n_flows in 1usize..6,
        pkts_per_flow in 1usize..8,
    ) {
        let mut metas = Vec::new();
        let mut ts = 0u64;
        for f in 0..n_flows {
            for _ in 0..pkts_per_flow {
                let frame = udp_packet(UdpParams {
                    src_mac: MacAddr::from_id(1),
                    dst_mac: MacAddr::from_id(2),
                    src_ip: Ipv4Addr::new(10, 0, 0, 1 + f as u8),
                    dst_ip: Ipv4Addr::new(10, 0, 1, 1),
                    src_port: 10_000 + f as u16,
                    dst_port: 53,
                    ttl: 64,
                    payload: b"q",
                });
                metas.push(PacketMeta::parse(LinkType::Ethernet, ts, &frame).unwrap());
                ts += 1000;
            }
        }
        let conns = assemble(&metas, FlowConfig::default());
        prop_assert_eq!(conns.len(), n_flows);
        let mut all: Vec<u32> = conns.iter().flat_map(|c| c.packet_indices.clone()).collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..(n_flows * pkts_per_flow) as u32).collect();
        prop_assert_eq!(all, expected);
    }

    /// Precision/recall/F1/accuracy stay in [0, 1] and AUC in [0, 1] for
    /// arbitrary prediction vectors.
    #[test]
    fn metric_bounds(
        preds in proptest::collection::vec(0u8..=1, 1..100),
        scores in proptest::collection::vec(0.0f64..1.0, 1..100),
    ) {
        let n = preds.len().min(scores.len());
        let truth: Vec<u8> = (0..n).map(|i| (i % 3 == 0) as u8).collect();
        let c = confusion(&preds[..n], &truth);
        for v in [c.precision(), c.recall(), c.f1(), c.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        let auc = roc_auc(&scores[..n], &truth);
        prop_assert!((0.0..=1.0).contains(&auc));
    }

    /// Damped-statistics invariants: weights positive and bounded by the
    /// packet count; sigma never negative; per-packet tables always align
    /// with the source length.
    #[test]
    fn damped_stats_invariants(
        lens in proptest::collection::vec(0usize..800, 2..40),
        gap_ms in 1u64..5_000,
    ) {
        let metas: Vec<PacketMeta> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                let frame = udp_packet(UdpParams {
                    src_mac: MacAddr::from_id(3),
                    dst_mac: MacAddr::from_id(4),
                    src_ip: Ipv4Addr::new(10, 1, 0, 1),
                    dst_ip: Ipv4Addr::new(10, 1, 0, 2),
                    src_port: 1111,
                    dst_port: 2222,
                    ttl: 64,
                    payload: &vec![0u8; l],
                });
                PacketMeta::parse(LinkType::Ethernet, i as u64 * gap_ms * 1000, &frame).unwrap()
            })
            .collect();
        let n = metas.len();
        let source = Data::Packets(Arc::new(PacketData {
            link: LinkType::Ethernet,
            metas,
            labels: vec![0; n],
            tags: vec![0; n],
        }));
        let template = serde_json::json!([
            {"func": "GroupBy", "input": ["source"], "output": "g", "key": "srcIp"},
            {"func": "DampedStats", "input": ["g"], "output": "features",
             "field": "wire_len", "lambdas": [1.0, 0.01]}
        ]);
        let p = Pipeline::parse(&template, &[("source", DataKind::Packets)]).unwrap();
        let mut b = std::collections::HashMap::new();
        b.insert("source".to_string(), source);
        let mut out = p.run(b).unwrap();
        let Data::Table(t) = out.take("features").unwrap() else { unreachable!() };
        prop_assert_eq!(t.rows(), n);
        for r in 0..t.rows() {
            for li in 0..2 {
                let w = t.x.get(r, li * 3);
                let sigma = t.x.get(r, li * 3 + 2);
                prop_assert!(w > 0.0 && w <= n as f64 + 1e-9, "weight {w}");
                prop_assert!(sigma >= 0.0);
            }
        }
    }

    /// The stratified splitter preserves instance counts and class totals.
    #[test]
    fn split_preserves_class_totals(
        n_pos in 1usize..40,
        n_neg in 1usize..40,
        seed in any::<u64>(),
    ) {
        use lumen::ml::dataset::{train_test_split, Dataset};
        use lumen::ml::matrix::Matrix;
        use lumen::util::Rng;
        let rows: Vec<Vec<f64>> = (0..n_pos + n_neg).map(|i| vec![i as f64]).collect();
        let y: Vec<u8> = (0..n_pos).map(|_| 1).chain((0..n_neg).map(|_| 0)).collect();
        let data = Dataset::new(Matrix::from_rows(rows).unwrap(), y).unwrap();
        let (train, test) = train_test_split(&data, 0.7, &mut Rng::new(seed));
        prop_assert_eq!(train.len() + test.len(), n_pos + n_neg);
        prop_assert_eq!(train.positives() + test.positives(), n_pos);
    }
}
