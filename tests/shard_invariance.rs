//! Shard invariance: flow sharding is an execution detail, never a
//! semantic one. For any shard count the merged connection records — and
//! therefore every downstream feature table, prediction, and metric —
//! must be bit-identical to the single-tracker baseline.

use std::sync::Arc;

use lumen::bench::{DatasetRegistry, RunConfig, Runner};
use lumen::flow::{assemble_sharded, FlowConfig};
use lumen::prelude::*;

/// The merged records of a sharded assembly are bit-identical to the
/// single-tracker output for every shard count, and the per-shard stats
/// always reconcile with the totals.
#[test]
fn sharded_assembly_is_bit_identical_across_shard_counts() {
    let capture = build_dataset(DatasetId::F4, SynthScale::small(), 42);
    let (metas, _stats) = parse_capture(capture.link, &capture.packets, 2);
    let cfg = FlowConfig::default();

    let base = assemble_sharded(&metas, cfg, 1);
    assert!(!base.records.is_empty(), "baseline produced no flows");
    for shards in [2usize, 3, 8] {
        let asm = assemble_sharded(&metas, cfg, shards);
        assert_eq!(
            asm.records, base.records,
            "shards={shards} changed the merged records"
        );
        assert_eq!(asm.per_shard.len(), shards);
        let records: u64 = asm.per_shard.iter().map(|s| s.records).sum();
        assert_eq!(records, asm.total.records, "per-shard records reconcile");
        let evictions: u64 = asm.per_shard.iter().map(|s| s.evictions).sum();
        assert_eq!(evictions, asm.total.evictions);
    }
}

/// Under memory pressure each shard gets `max_active / shards`, so the
/// sharded path keeps the same *total* budget while evicting per shard.
#[test]
fn eviction_budget_is_split_across_shards() {
    let capture = build_dataset(DatasetId::F4, SynthScale::small(), 7);
    let (metas, _stats) = parse_capture(capture.link, &capture.packets, 2);
    let cfg = FlowConfig {
        max_active: 8,
        ..FlowConfig::default()
    };

    let asm = assemble_sharded(&metas, cfg, 4);
    assert!(asm.total.evictions > 0, "tiny budget must force evictions");
    for (i, s) in asm.per_shard.iter().enumerate() {
        assert!(
            s.peak_active <= 8,
            "shard {i} peak_active {} exceeded the whole budget",
            s.peak_active
        );
    }
}

/// End-to-end invariance through the real benchmark runner: the same
/// algorithm/dataset matrix produces identical *metrics* (precision,
/// recall, f1, accuracy, auc, instance counts) for 1, 2, and 8 flow
/// shards. Timing fields are excluded — they legitimately vary.
///
/// All shard counts run serially inside one test because the default
/// shard count is process-global (`lumen_flow::set_default_shards`).
#[test]
fn run_matrix_metrics_are_invariant_under_flow_sharding() {
    let key = |rows: &ResultStore| -> Vec<(String, String, String, String, Option<String>)> {
        rows.rows()
            .iter()
            .map(|r| {
                (
                    r.algo.clone(),
                    r.train.clone(),
                    r.test.clone(),
                    r.mode.clone(),
                    r.attack.clone(),
                )
            })
            .collect()
    };
    let metrics = |rows: &ResultStore| -> Vec<(f64, f64, f64, f64, f64, usize, usize)> {
        rows.rows()
            .iter()
            .map(|r| {
                (
                    r.precision, r.recall, r.f1, r.accuracy, r.auc, r.n_train, r.n_test,
                )
            })
            .collect()
    };

    let mut baseline: Option<(
        Vec<(String, String, String, String, Option<String>)>,
        Vec<(f64, f64, f64, f64, f64, usize, usize)>,
    )> = None;
    for flow_shards in [1usize, 2, 8] {
        let registry = Arc::new(DatasetRegistry::new(SynthScale::small(), 5).with_max_packets(800));
        let runner = Runner::new(
            registry,
            RunConfig {
                threads: 1,
                flow_shards,
                ..RunConfig::default()
            },
        );
        let run = runner.run_matrix(&[AlgorithmId::A14], &[DatasetId::F4], false);
        assert_eq!(run.journal.failed_count(), 0);
        if flow_shards > 1 {
            let per_shard = run.journal.flow_shards();
            assert_eq!(
                per_shard.len(),
                flow_shards,
                "journal should carry one accounting entry per shard"
            );
            let finalized: u64 = per_shard.iter().map(|e| e.records).sum();
            assert!(finalized > 0, "shards finalized no flows");
        }
        match &baseline {
            None => baseline = Some((key(&run.store), metrics(&run.store))),
            Some((base_key, base_metrics)) => {
                assert_eq!(&key(&run.store), base_key, "flow_shards={flow_shards}");
                assert_eq!(
                    &metrics(&run.store),
                    base_metrics,
                    "flow_shards={flow_shards} changed the evaluation metrics"
                );
            }
        }
    }
}
